//! The threaded runtime: real OS threads, the paper's JSON southbound
//! protocol, a live loss-free move.
//!
//! The other examples run in the deterministic simulator; this one runs
//! the same `EventedNf` harness and southbound protocol (§7: "The
//! controller and NFs exchange JSON messages") under genuine concurrency —
//! a generator thread keeps pushing packets through the shared router
//! while the controller moves all per-flow state between worker threads.
//!
//! ```sh
//! cargo run --example threaded_runtime
//! ```

use opennf::nfs::AssetMonitor;
use opennf::prelude::*;
use opennf::rt::{RtController, WireMsg};

fn main() {
    let mut ctrl = RtController::new(vec![
        Box::new(AssetMonitor::new()),
        Box::new(AssetMonitor::new()),
    ]);

    const PACKETS: u64 = 5_000;
    const FLOWS: u64 = 100;

    // Generator thread: 5 000 packets over 100 flows, ~40 µs apart,
    // consulting the shared router for every packet.
    let router = ctrl.router.clone();
    let txs = [ctrl.worker_tx(0), ctrl.worker_tx(1)];
    let gen = std::thread::spawn(move || {
        for uid in 1..=PACKETS {
            let flow = uid % FLOWS;
            let key = FlowKey::tcp(
                format!("10.0.0.{}", flow % 250 + 1).parse().unwrap(),
                2_000 + flow as u16,
                "93.184.216.34".parse().unwrap(),
                80,
            );
            let flags = if uid <= FLOWS { TcpFlags::SYN } else { TcpFlags::ACK };
            let pkt = Packet::builder(uid, key).flags(flags).build();
            if let Some(w) = router.route(&pkt) {
                let _ = txs[w].send(WireMsg::Packet { packet: pkt }.to_json());
            }
            std::thread::sleep(std::time::Duration::from_micros(40));
        }
    });

    // Let state accumulate, then move everything, live.
    std::thread::sleep(std::time::Duration::from_millis(40));
    let stats = ctrl.move_flows_lossfree(0, 1, Filter::any()).expect("loss-free move");
    println!("moved     : {} flows, {} bytes of state", stats.chunks, stats.bytes);
    println!("replayed  : {} event packets to the destination", stats.events_replayed);
    println!("wall time : {:?}", stats.duration);

    gen.join().expect("generator");
    std::thread::sleep(std::time::Duration::from_millis(50));
    let harnesses = ctrl.shutdown();

    let processed: Vec<usize> = harnesses.iter().map(|h| h.processed_log().len()).collect();
    let mut all: Vec<u64> = harnesses
        .iter()
        .flat_map(|h| h.processed_log().iter().copied())
        .collect();
    all.sort_unstable();
    let before = all.len();
    all.dedup();
    println!("processed : {} at worker-0, {} at worker-1", processed[0], processed[1]);
    println!(
        "loss-free : {} of {PACKETS} packets processed exactly once (duplicates: {})",
        all.len(),
        before - all.len()
    );
    assert_eq!(all.len() as u64, PACKETS, "every packet processed");
    assert_eq!(before, all.len(), "no packet processed twice");
    let any: &dyn std::any::Any = harnesses[1].nf();
    let m = any.downcast_ref::<AssetMonitor>().unwrap();
    assert_eq!(m.conn_count() as u64, FLOWS, "destination holds all flow state");
    println!("verdict   : loss-free under real thread concurrency");
}
