//! Always up-to-date NFs (§2.1): the rolling-upgrade scenario.
//!
//! "An SLA may require that traffic is never processed by outdated NF
//! instances for more than 10 minutes per year … The only way to both
//! satisfy the SLA and maintain NF accuracy is for the control plane to
//! offer the ability to move NF state alongside updates to network
//! forwarding state … the operation must complete in bounded time."
//!
//! We launch an "upgraded" IDS instance mid-run and move *everything* —
//! per-flow, multi-flow, and all-flows state — with a loss-free move. The
//! outdated instance is drained in a quarter of a second instead of the
//! tens of minutes that waiting for flows to die would take (~9 % of
//! flows outlive 25 minutes per the paper's cited tail).
//!
//! ```sh
//! cargo run --example rolling_upgrade
//! ```

use opennf::baselines::scale_in_wait_secs;
use opennf::nfs::ids::Ids;
use opennf::prelude::*;
use opennf::trace::{heavy_tail_durations, univ_cloud, UnivCloudConfig};

fn main() {
    let cfg = UnivCloudConfig {
        flows: 300,
        pps: 2_500,
        duration: Dur::secs(2),
        malware_fraction: 0.05,
        scanners: 1,
        scan_ports: 15,
        ..UnivCloudConfig::default()
    };
    let trace = univ_cloud(&cfg);
    let sigs = trace.signatures.clone();
    let mut s = ScenarioBuilder::new()
        .nf("ids-v1 (outdated)", Box::new(Ids::with_signatures(sigs.clone())))
        .nf("ids-v2 (upgraded)", Box::new(Ids::with_signatures(sigs)))
        .host(trace.packets)
        .route(0, Filter::any(), 0)
        .build();
    let (old, new) = (s.instances[0], s.instances[1]);

    // The upgrade: one loss-free move of every state class.
    s.issue_at(
        Dur::millis(800),
        Command::Move {
            src: old,
            dst: new,
            filter: Filter::any(),
            scope: ScopeSet::all(),
            props: MoveProps::lf_pl(),
        },
    );
    s.run_to_completion();

    let report = &s.controller().reports[0];
    let v1 = s.nf(0);
    let v2 = s.nf(1);
    println!(
        "upgrade   : {} in {:.0} ms ({} chunks, {} bytes)",
        report.kind,
        report.duration_ms(),
        report.chunks,
        report.bytes
    );
    println!(
        "ids-v1    : {} pkts processed, {} flows left",
        v1.processed_log().len(),
        v1.nf_as::<Ids>().conn_count()
    );
    println!(
        "ids-v2    : {} pkts processed, {} flows, {} host counters, malware={}",
        v2.processed_log().len(),
        v2.nf_as::<Ids>().conn_count(),
        v2.nf_as::<Ids>().host_counter_count(),
        v2.logs_of("alert.malware").len() + v1.logs_of("alert.malware").len(),
    );
    let oracle = s.oracle().check();
    println!("loss-free : {}", oracle.is_loss_free());

    // The alternative the paper rules out: wait for flows to terminate.
    let durs = heavy_tail_durations(10_000, 1);
    let starts = vec![0.0; durs.len()];
    let wait = scale_in_wait_secs(&starts, &durs, 1.0);
    println!(
        "vs waiting: draining by attrition would pin ids-v1 for ≈{:.0} minutes",
        wait / 60.0
    );

    assert!(oracle.is_loss_free());
    assert_eq!(v1.nf_as::<Ids>().conn_count(), 0, "outdated instance fully drained");
    assert!(report.duration_ms() < 10_000.0, "upgrade bounded in time (seconds, not minutes)");
    let total_malware: usize =
        (0..2).map(|i| s.nf(i).logs_of("alert.malware").len()).sum();
    assert_eq!(total_malware as u32, trace.malware_flows, "no detection lost");
    println!(
        "verdict   : upgraded in {:.1} s with zero missed detections (vs {:.0} min by attrition)",
        report.duration_ms() / 1e3,
        wait / 60.0
    );
}
