//! Elastic IDS scaling (§1, Figure 1): the motivating scenario.
//!
//! An IDS monitors a copy of traffic for port scans, outdated browsers,
//! and malware. Load grows; we scale out to a second instance using the
//! Figure 8 load-balancer application: copy scan counters (multi-flow),
//! loss-free move the rebalanced prefix's per-flow state, then keep the
//! counters eventually consistent. A scan split across both instances is
//! still detected — the whole point of merging counters.
//!
//! ```sh
//! cargo run --example elastic_scaling
//! ```

use opennf::apps::LoadBalancerApp;
use opennf::nfs::ids::Ids;
use opennf::prelude::*;
use opennf::sim::NodeId;
use opennf::trace::{univ_cloud, UnivCloudConfig};

fn main() {
    let cfg = UnivCloudConfig {
        flows: 200,
        pps: 2_500,
        duration: Dur::secs(2),
        subnets: 2,
        scanners: 1,
        scan_ports: 24, // spread across both subnets; threshold is 10
        malware_fraction: 0.05,
        https_fraction: 0.0,
        outdated_ua_fraction: 0.05,
        seed: 7,
    };
    let trace = univ_cloud(&cfg);
    println!(
        "trace     : {} packets, {} flows ({} malware, {} outdated UA), 1 scanner",
        trace.packets.len(),
        trace.flows,
        trace.malware_flows,
        trace.outdated_flows
    );

    // IDS instances with the malware corpus (Figure 7's cloud-style config).
    let ids = |sigs: &[String]| Ids::with_signatures(sigs.iter().cloned());

    // The Figure 8 application: rebalance subnet 10.0.1.0/24 to ids-2 at
    // t = 500 ms, then bidirectional multi-flow copies every 400 ms.
    let app = LoadBalancerApp::new(
        "10.0.1.0/24".parse().unwrap(),
        NodeId(2),
        NodeId(3),
        Dur::millis(500),
        Dur::millis(400),
    );

    let mut s = ScenarioBuilder::new()
        .app(Box::new(app))
        .nf("ids-1", Box::new(ids(&trace.signatures)))
        .nf("ids-2", Box::new(ids(&trace.signatures)))
        .host(trace.packets)
        .route(0, Filter::any(), 0)
        .build();
    s.run_until(Time::ZERO + Dur::secs(3));

    for (i, name) in ["ids-1", "ids-2"].iter().enumerate() {
        let n = s.nf(i);
        println!(
            "{name}    : {} pkts, scans={}, malware={}, outdated={}",
            n.processed_log().len(),
            n.logs_of("alert.scan").len(),
            n.logs_of("alert.malware").len(),
            n.logs_of("alert.outdated_browser").len(),
        );
    }
    for r in &s.controller().reports {
        println!("op        : {:<22} {:>8.1} ms  {} chunks", r.kind, r.duration_ms(), r.chunks);
    }

    let scans: usize = (0..2).map(|i| s.nf(i).logs_of("alert.scan").len()).sum();
    let malware: usize = (0..2).map(|i| s.nf(i).logs_of("alert.malware").len()).sum();
    let oracle = s.oracle().check();
    println!(
        "verdict   : scan detected = {}, malware detected = {}, loss-free = {}",
        scans > 0,
        malware > 0,
        oracle.is_loss_free()
    );
    assert!(scans > 0, "scan split across instances must still be detected");
    assert!(oracle.is_loss_free(), "rebalancing must not lose packets");
}
