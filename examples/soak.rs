//! Differential fault soak: iterate random `(seed, mask)` specs through
//! both runtimes (simulator + threaded) and stop at the first oracle or
//! conformance violation, shrinking it to a minimal failing mask and
//! printing a one-command reproduction.
//!
//! ```text
//! cargo run --release --example soak                      # 100 seeds, default mask
//! cargo run --release --example soak -- --seeds 500       # longer pass
//! cargo run --release --example soak -- --start 1000      # different seed range
//! cargo run --release --example soak -- --seed 7          # one specific case
//! cargo run --release --example soak -- --seed 7 --mask 0x21   # exact repro
//! ```
//!
//! Exit status: 0 when every case passed, 1 on the first failure (after
//! printing `REPRO: cargo run --release --example soak -- --seed S --mask M`).

use conformance::{differential, shrink_mask, spec_excuses, DiffReport, Spec, M_DEFAULT};
use opennf_prof::{check, profile, render, Trace};

struct Args {
    seeds: u64,
    start: u64,
    single: Option<u64>,
    mask: u32,
}

fn parse_args() -> Args {
    let mut args = Args { seeds: 100, start: 1, single: None, mask: M_DEFAULT };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--seeds" => args.seeds = val("--seeds").parse().expect("--seeds: u64"),
            "--start" => args.start = val("--start").parse().expect("--start: u64"),
            "--seed" => args.single = Some(val("--seed").parse().expect("--seed: u64")),
            "--mask" => {
                let v = val("--mask");
                args.mask = if let Some(hex) = v.strip_prefix("0x") {
                    u32::from_str_radix(hex, 16).expect("--mask: hex u32")
                } else {
                    v.parse().expect("--mask: u32")
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: soak [--seeds N] [--start S0] [--seed S] [--mask M]\n\
                     default: seeds 1..=100, mask 0x{M_DEFAULT:x} (all faults + full load)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn run_case(seed: u64, mask: u32) -> Result<(), Box<DiffReport>> {
    let spec = Spec::from_seed(seed, mask);
    let r = differential(&spec);
    if r.ok {
        Ok(())
    } else {
        Err(Box::new(r))
    }
}

/// Writes the failing run's flight recorders next to the repro line:
/// JSONL dumps for both runtimes, a Chrome/Perfetto trace of the
/// threaded side, and the simulator controller's op journal (the phase
/// ledger a recovered run replayed). CI uploads these as artifacts when
/// the soak fails.
fn dump_flight(report: &DiffReport) {
    for (path, content) in [
        ("soak-flight.jsonl", &report.rt.flight_jsonl),
        ("soak-flight-sim.jsonl", &report.sim.flight_jsonl),
        ("soak-trace.json", &report.rt.flight_chrome),
        ("soak-journal.json", &report.sim.journal_json),
    ] {
        match std::fs::write(path, content) {
            Ok(()) => println!("flight recorder: wrote {path}"),
            Err(e) => println!("flight recorder: could not write {path}: {e}"),
        }
    }
    // Sharded (multi-switch) specs capture one journal per shard,
    // newline-joined; split them out so a cross-shard handoff failure
    // shows each controller's phase ledger side by side.
    let journals: Vec<&str> =
        report.sim.journal_json.lines().filter(|l| !l.is_empty()).collect();
    if journals.len() > 1 {
        for (k, j) in journals.iter().enumerate() {
            let path = format!("soak-journal-shard{k}.json");
            match std::fs::write(&path, j) {
                Ok(()) => println!("flight recorder: wrote {path}"),
                Err(e) => println!("flight recorder: could not write {path}: {e}"),
            }
        }
    }
}

/// Runs the causal trace analyzer over the failing run's flight
/// recorders and writes `soak-profile.txt`: the critical-path profile
/// and the happens-before verdict for both runtimes, with the spec's
/// own fault plan as the excuse ledger. CI uploads it alongside the
/// flight dumps.
fn dump_profile(spec: &Spec, report: &DiffReport) {
    let excuses = spec_excuses(spec);
    let mut out = String::new();
    for (side, flight, journal) in [
        ("rt", &report.rt.flight_jsonl, &report.rt.journal_json),
        ("sim", &report.sim.flight_jsonl, &report.sim.journal_json),
    ] {
        out.push_str(&format!("==== {side} ====\n"));
        match Trace::from_jsonl(flight) {
            Ok(trace) => {
                out.push_str(&render(&profile(&trace)));
                out.push_str(&check(&trace, Some(journal), &excuses).detail());
                out.push('\n');
            }
            Err(e) => out.push_str(&format!("(unparseable flight dump: {e})\n")),
        }
    }
    match std::fs::write("soak-profile.txt", &out) {
        Ok(()) => println!("flight recorder: wrote soak-profile.txt"),
        Err(e) => println!("flight recorder: could not write soak-profile.txt: {e}"),
    }
}

fn main() {
    let args = parse_args();
    let seeds: Vec<u64> = match args.single {
        Some(s) => vec![s],
        None => (args.start..args.start + args.seeds).collect(),
    };
    let total = seeds.len();
    let mut passed = 0usize;
    for (i, seed) in seeds.into_iter().enumerate() {
        match run_case(seed, args.mask) {
            Ok(()) => {
                passed += 1;
                if (i + 1) % 10 == 0 || i + 1 == total {
                    println!("[{}/{}] ok through seed {}", i + 1, total, seed);
                }
            }
            Err(report) => {
                println!("FAIL seed={} mask=0x{:x}: {}", seed, args.mask, report.detail);
                // Always summarize the *original* failing run's injected
                // faults — shrinking re-derives narrower specs, so this is
                // the only place the ledger that actually failed is
                // reported (previously it was skipped whenever shrinking
                // succeeded immediately).
                println!("rt fault ledger:  {}", report.rt.fault_canonical);
                println!("sim fault record: {}", report.sim.fault_canonical);
                dump_flight(&report);
                dump_profile(&Spec::from_seed(seed, args.mask), &report);
                // Shrink: greedily clear mask bits while the failure holds,
                // then try the reduced-load variant of the survivor.
                println!("shrinking...");
                let minimal = shrink_mask(args.mask, |m| run_case(seed, m).is_err());
                let spec = Spec::from_seed(seed, minimal);
                println!(
                    "minimal failing mask: 0x{:x} ({} link rules, {} crashes, {} stalls)",
                    minimal,
                    spec.plan.links.len(),
                    spec.plan.crashes.len(),
                    spec.plan.stalls.len()
                );
                println!("REPRO: {}", spec.repro());
                std::process::exit(1);
            }
        }
    }
    println!("soak clean: {passed}/{total} specs passed (mask 0x{:x})", args.mask);
}
