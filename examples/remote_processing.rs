//! Selectively invoking advanced remote processing (§2.1, §6).
//!
//! The local IDS only identifies browsers; the cloud IDS holds the full
//! malware corpus. When the local instance flags an outdated browser, the
//! offload application loss-free-moves that flow — including its partially
//! reassembled HTTP state — to the cloud, which completes the reassembly
//! and catches the malware. A lossy move would corrupt the MD5 and miss it.
//!
//! ```sh
//! cargo run --example remote_processing
//! ```

use opennf::apps::OffloadApp;
use opennf::nfs::ids::{Ids, IdsConfig};
use opennf::prelude::*;
use opennf::sim::NodeId;
use opennf::trace::http::{malware_body, malware_signatures, HttpFlowSpec};
use opennf::trace::merge_schedules;

fn main() {
    // Workload: one slow HTTP flow from an outdated browser fetching a
    // malware payload, plus benign background flows.
    let mut parts = vec![HttpFlowSpec {
        client: "10.0.0.5".parse().unwrap(),
        client_port: 4000,
        server: "93.184.216.34".parse().unwrap(),
                server_port: 80,
        url: "/download/installer.exe".into(),
        user_agent: "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)".into(),
        body: malware_body(3, 4_096),
        segment: 256,
        start_ns: 1_000_000,
        gap_ns: 15_000_000,
    }
    .render()];
    for i in 0..8u32 {
        parts.push(
            HttpFlowSpec {
                client: format!("10.0.0.{}", 20 + i).parse().unwrap(),
                client_port: 5000 + i as u16,
                server: "93.184.216.34".parse().unwrap(),
                server_port: 80,
                url: format!("/page{i}"),
                user_agent: "Mozilla/5.0 Firefox/115".into(),
                body: vec![0x22; 900],
                segment: 300,
                start_ns: 3_000_000 + i as u64 * 2_000_000,
                gap_ns: 4_000_000,
            }
            .render(),
        );
    }

    let local = Ids::new(IdsConfig::default()); // no signatures: browser checks only
    let cloud = Ids::with_signatures(malware_signatures(8, 4_096)); // full corpus

    let mut s = ScenarioBuilder::new()
        .app(Box::new(OffloadApp::new(NodeId(2), NodeId(3))))
        .nf("local-ids", Box::new(local))
        .nf("cloud-ids", Box::new(cloud))
        .host(merge_schedules(parts))
        .route(0, Filter::any(), 0)
        .build();
    s.run_to_completion();

    let browser_alerts = s.nf(0).logs_of("alert.outdated_browser").len();
    let moves = s.controller().reports_of("move[LF").len();
    let cloud_malware = s.nf(1).logs_of("alert.malware").len();
    println!("local-ids : {browser_alerts} outdated-browser alert(s)");
    println!("offloads  : {moves} loss-free move(s) to the cloud instance");
    println!("cloud-ids : {cloud_malware} malware detection(s)");
    for r in &s.controller().reports {
        println!("op        : {:<16} {:>7.1} ms", r.kind, r.duration_ms());
    }
    let oracle = s.oracle().check();
    println!("loss-free : {}", oracle.is_loss_free());

    assert_eq!(browser_alerts, 1);
    assert_eq!(moves, 1);
    assert_eq!(cloud_malware, 1, "the mid-flow move must preserve the reassembly state");
    assert!(oracle.is_loss_free());
    println!("verdict   : malware caught in the cloud after a mid-flow, loss-free offload");
}
