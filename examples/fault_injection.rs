//! Fault injection demo: loss-free moves under injected failures.
//!
//! Three runs of the standard two-monitor scenario:
//!
//! 1. a clean loss-free move (baseline);
//! 2. the same move with the controller→source link severed over the
//!    first southbound call — the per-phase watchdog retries and the move
//!    still completes;
//! 3. the same move with the source NF crashing mid-export — the move
//!    aborts, rolls back, blames the instance, and every packet the crash
//!    drowned is accounted for by the exactly-once-or-accounted oracle.
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use opennf::nfs::AssetMonitor;
use opennf::prelude::*;
use opennf::trace::steady_flows;

fn run(label: &str, plan: Option<FaultPlan>) {
    let mut cfg = NetConfig::default();
    cfg.op.phase_timeout = Dur::millis(50);
    cfg.op.sb_retry_backoff = Dur::millis(5);
    let mut b = ScenarioBuilder::new()
        .config(cfg)
        .seed(7)
        .nf("src", Box::new(AssetMonitor::new()))
        .nf("dst", Box::new(AssetMonitor::new()))
        .host(steady_flows(30, 2_000, Dur::millis(800), 7))
        .route(0, Filter::any(), 0);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut s = b.build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(300),
        Command::Move {
            src,
            dst,
            filter: Filter::any(),
            scope: ScopeSet::per_flow(),
            props: MoveProps::lf_pl(),
        },
    );
    s.run_to_completion();

    let reports = s.controller().reports_of("move");
    let report = reports[0];
    println!("=== {label} ===");
    match &report.outcome {
        OpOutcome::Completed => println!("outcome   : completed in {:.1} ms ({} retries)",
            (report.end_ns - report.start_ns) as f64 / 1e6, report.retries),
        OpOutcome::Aborted { reason } => {
            println!("outcome   : ABORTED — {reason}");
            println!("blamed    : {:?}", report.failed_inst);
            println!("abort_lost: {} packets listed by the op", report.abort_lost.len());
        }
    }
    if let Some(f) = s.engine.fault() {
        println!("faults    : {} injected, {} messages lost, {} duplicated",
            f.log.len(), f.lost.len(), f.duplicated.len());
    }
    println!("accounted : {} packet uids excused by fault record + abort reports",
        s.accounted_uids().len());
    let check = s.oracle_with_faults().check();
    println!(
        "oracle    : exactly-once-or-accounted = {} (forwarded {}, unaccounted lost {}, dup {})",
        check.is_exactly_once_or_accounted(),
        check.forwarded,
        check.lost.len(),
        check.duplicated.len()
    );
    assert!(check.is_exactly_once_or_accounted());
    println!();
}

fn main() {
    run("clean loss-free move", None);
    run(
        "southbound call dropped: watchdog retries, move completes",
        Some(FaultPlan::new(5).sever(
            NodeId(0),
            NodeId(2),
            Time(300_000_000),
            Time(310_000_000),
        )),
    );
    run(
        "source NF crashes mid-export: clean abort, every packet accounted",
        Some(FaultPlan::new(11).crash(NodeId(2), Time(303_000_000))),
    );
    println!("verdict   : operations complete or abort with a full account — never wedge");
}
