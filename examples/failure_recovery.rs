//! Fast failure recovery (§2.1, Figure 9).
//!
//! A hot standby is kept eventually consistent through `notify`-driven
//! per-flow copies (triggered by TCP SYN/RST and local HTTP requests).
//! When the primary fails, traffic is re-routed to the standby, which
//! already holds the critical state — flows continue without appearing
//! brand new.
//!
//! ```sh
//! cargo run --example failure_recovery
//! ```

use opennf::apps::FailoverApp;
use opennf::nfs::AssetMonitor;
use opennf::prelude::*;
use opennf::sim::NodeId;
use opennf::trace::steady_flows;

fn main() {
    let app = FailoverApp::new(
        NodeId(2),                       // primary (instance 0)
        NodeId(3),                       // standby (instance 1)
        "10.0.0.0/8".parse().unwrap(),   // the protected network
        Some(Dur::millis(500)),          // the primary fails at t = 500 ms
    );
    let mut s = ScenarioBuilder::new()
        .app(Box::new(app))
        .nf("primary", Box::new(AssetMonitor::new()))
        .nf("standby", Box::new(AssetMonitor::new()))
        .host(steady_flows(100, 2_500, Dur::secs(1), 5))
        .route(0, Filter::any(), 0)
        .build();
    s.run_to_completion();

    let copies = s.controller().reports_of("copy").len();
    let primary = s.nf(0);
    let standby = s.nf(1);
    let p_state = primary.nf_as::<AssetMonitor>().conn_count();
    let s_state = standby.nf_as::<AssetMonitor>().conn_count();
    println!("notify-driven copies : {copies}");
    println!("primary  : {} pkts processed, {} flows tracked", primary.processed_log().len(), p_state);
    println!("standby  : {} pkts processed, {} flows tracked", standby.processed_log().len(), s_state);

    // The standby took over mid-run…
    assert!(!standby.processed_log().is_empty(), "standby processed traffic after failover");
    // …and, because state was already there, its flow table shows the real
    // flow count rather than a cold start.
    assert_eq!(s_state, 100, "standby holds state for every flow");
    println!("failover : OK — standby continued with {s_state} pre-copied flows");
}
