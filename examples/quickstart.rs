//! Quickstart: the headline OpenNF capability in ~60 lines.
//!
//! An IDS-like asset monitor is overloaded; we scale out by launching a
//! second instance and *loss-free moving* half the flows — state and
//! traffic together — while packets keep arriving. The guarantee oracle
//! verifies nothing was lost.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use opennf::nfs::AssetMonitor;
use opennf::prelude::*;
use opennf::trace::steady_flows;

fn main() {
    // 500 flows at 2 500 packets/second for one second of virtual time —
    // the paper's §8.1.1 workload shape.
    let mut s = ScenarioBuilder::new()
        .nf("monitor-1", Box::new(AssetMonitor::new()))
        .nf("monitor-2", Box::new(AssetMonitor::new()))
        .host(steady_flows(500, 2_500, Dur::secs(1), 42))
        .route(0, Filter::any(), 0)
        .build();
    let (src, dst) = (s.instances[0], s.instances[1]);

    // At t = 300 ms, move the lower half of the client space: loss-free,
    // parallelized, with early release (§5.1.3's fastest safe variant).
    let filter = Filter::from_src("10.0.0.0/25".parse().unwrap()).bidi();
    s.issue_at(
        Dur::millis(300),
        Command::Move { src, dst, filter, scope: ScopeSet::per_flow(), props: MoveProps::lf_pl_er() },
    );
    s.run_to_completion();

    let report = &s.controller().reports[0];
    println!("operation : {}", report.kind);
    println!("duration  : {:.1} ms", report.duration_ms());
    println!("chunks    : {} ({} bytes)", report.chunks, report.bytes);
    println!("events    : {} buffered during the move", report.events_buffered);

    let m1 = s.nf(0).nf_as::<AssetMonitor>();
    let m2 = s.nf(1).nf_as::<AssetMonitor>();
    println!("flows     : {} at monitor-1, {} at monitor-2", m1.conn_count(), m2.conn_count());

    let (avg, max, n) = s.added_latency();
    println!("latency   : +{avg:.2} ms avg / +{max:.2} ms max over {n} affected packets");

    let oracle = s.oracle().check();
    println!(
        "guarantee : loss-free = {}, {} forwarded / {} processed",
        oracle.is_loss_free(),
        oracle.forwarded,
        oracle.processed
    );
    assert!(oracle.is_loss_free(), "the loss-free move must not lose packets");
    assert!(m2.conn_count() > 0, "destination took over flows");
}
