//! Split/Merge vs. OpenNF, head to head (§2.2, §5.1, Figure 5).
//!
//! Runs the same migration workload twice: once with a Split/Merge-style
//! `migrate` (halt + buffer at the controller, drop at the source, racy
//! route update) and once with OpenNF's loss-free + order-preserving move.
//! The guarantee oracle shows the difference directly.
//!
//! ```sh
//! cargo run --example splitmerge_vs_opennf
//! ```

use std::collections::BTreeMap;

use opennf::baselines::SplitMergeController;
use opennf::control::guarantees::Oracle;
use opennf::control::msg::Msg;
use opennf::control::{HostNode, NfNode, SwitchNode};
use opennf::nfs::AssetMonitor;
use opennf::prelude::*;
use opennf::sim::{Engine, NodeId};
use opennf::trace::steady_flows;

const FLOWS: u32 = 100;
const PPS: u64 = 5_000;

fn splitmerge_run() -> (usize, bool, bool) {
    let cfg = NetConfig::default();
    let mut eng: Engine<Msg> = Engine::new(2);
    let ctrl = NodeId(0);
    let swid = NodeId(1);
    let (m1, m2) = (NodeId(2), NodeId(3));
    let smc = SplitMergeController::new(cfg, swid, m1, m2, Filter::any(), Dur::millis(200));
    assert_eq!(eng.add_node(Box::new(smc)), ctrl);
    let mut ports = BTreeMap::new();
    ports.insert(1u16, m1);
    ports.insert(2u16, m2);
    let mut sw = SwitchNode::new(cfg, ctrl, ports);
    sw.preinstall(0, Filter::any(), &[m1]);
    assert_eq!(eng.add_node(Box::new(sw)), swid);
    eng.add_node(Box::new(NfNode::new("m1", Box::new(AssetMonitor::new()), cfg, ctrl)));
    eng.add_node(Box::new(NfNode::new("m2", Box::new(AssetMonitor::new()), cfg, ctrl)));
    eng.add_node(Box::new(HostNode::new(swid, cfg, steady_flows(FLOWS, PPS, Dur::millis(600), 2))));
    eng.run_to_completion(10_000_000);

    let sw: &SwitchNode = eng.node(swid);
    let n1: &NfNode = eng.node(m1);
    let n2: &NfNode = eng.node(m2);
    let mut oracle = Oracle::new(&sw.forward_log);
    oracle.add_instance(n1.records.iter().map(|r| (r.uid, r.done_ns)));
    oracle.add_instance(n2.records.iter().map(|r| (r.uid, r.done_ns)));
    let rep = oracle.check();
    (rep.lost.len(), rep.is_loss_free(), rep.is_order_preserving())
}

fn opennf_run() -> (usize, bool, bool) {
    let mut s = ScenarioBuilder::new()
        .seed(2)
        .nf("m1", Box::new(AssetMonitor::new()))
        .nf("m2", Box::new(AssetMonitor::new()))
        .host(steady_flows(FLOWS, PPS, Dur::millis(600), 2))
        .route(0, Filter::any(), 0)
        .build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(200),
        Command::Move {
            src,
            dst,
            filter: Filter::any(),
            scope: ScopeSet::per_flow(),
            props: MoveProps {
                variant: MoveVariant::LossFreeOrderPreserving,
                parallel: true,
                early_release: false,
                ..Default::default()
            },
        },
    );
    s.run_to_completion();
    let rep = s.oracle().check();
    (rep.lost.len(), rep.is_loss_free(), rep.is_order_preserving())
}

fn main() {
    let (sm_drops, sm_lf, sm_op) = splitmerge_run();
    let (on_drops, on_lf, on_op) = opennf_run();
    println!("migrating {FLOWS} flows at {PPS} pps:\n");
    println!("{:<24}{:>8}{:>12}{:>18}", "control plane", "lost", "loss-free", "order-preserving");
    println!("{:<24}{:>8}{:>12}{:>18}", "Split/Merge migrate", sm_drops, sm_lf, sm_op);
    println!("{:<24}{:>8}{:>12}{:>18}", "OpenNF move [LF+OP]", on_drops, on_lf, on_op);
    assert!(sm_drops > 0 && !sm_lf, "Split/Merge must lose packets");
    assert!(on_lf && on_op, "OpenNF must hold both guarantees");
    println!("\nOpenNF's event + two-phase-update protocol wins on both axes.");
}
