//! Property-based checks of the §5.1 guarantees: across randomized flow
//! counts, packet rates, move times, and optimization combinations, the
//! loss-free move never loses a packet and the order-preserving move never
//! reorders within a flow. (The paper proves these properties; here
//! proptest searches for counterexamples on every run.)

use opennf::nfs::AssetMonitor;
use opennf::prelude::*;
use opennf::trace::steady_flows;
use proptest::prelude::*;

fn run_move(
    flows: u32,
    pps: u64,
    move_at_ms: u64,
    props: MoveProps,
    seed: u64,
) -> (opennf::control::GuaranteeReport, usize, usize) {
    let mut s = ScenarioBuilder::new()
        .seed(seed)
        .nf("m1", Box::new(AssetMonitor::new()))
        .nf("m2", Box::new(AssetMonitor::new()))
        .host(steady_flows(flows, pps, Dur::millis(400), seed))
        .route(0, Filter::any(), 0)
        .build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(move_at_ms),
        Command::Move { src, dst, filter: Filter::any(), scope: ScopeSet::per_flow(), props },
    );
    s.run_to_completion();
    let oracle = s.oracle().check();
    let c1 = s.nf(0).nf_as::<AssetMonitor>().conn_count();
    let c2 = s.nf(1).nf_as::<AssetMonitor>().conn_count();
    (oracle, c1, c2)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn lossfree_move_never_loses(
        flows in 5u32..60,
        pps in 500u64..6_000,
        move_at in 20u64..250,
        er in any::<bool>(),
        seed in 1u64..1_000,
    ) {
        let props = MoveProps {
            variant: MoveVariant::LossFree,
            parallel: true,
            early_release: er,
            ..Default::default()
        };
        let (oracle, c1, c2) = run_move(flows, pps, move_at, props, seed);
        prop_assert!(oracle.is_loss_free(),
            "lost={:?} dup={:?} (flows={flows} pps={pps} at={move_at} er={er} seed={seed})",
            oracle.lost, oracle.duplicated);
        prop_assert_eq!(c1, 0, "source must end empty");
        prop_assert_eq!(c2, flows as usize, "destination must hold all flows");
    }

    #[test]
    fn op_move_never_reorders_within_flows(
        flows in 5u32..40,
        pps in 500u64..6_000,
        move_at in 20u64..250,
        er in any::<bool>(),
        seed in 1u64..1_000,
    ) {
        let props = MoveProps {
            variant: MoveVariant::LossFreeOrderPreserving,
            parallel: true,
            early_release: er,
            ..Default::default()
        };
        let (oracle, _, c2) = run_move(flows, pps, move_at, props, seed);
        prop_assert!(oracle.is_loss_free(),
            "lost={:?} (flows={flows} pps={pps} at={move_at} er={er} seed={seed})",
            oracle.lost);
        prop_assert!(oracle.is_order_preserving(),
            "per-flow reorder={:?} (flows={flows} pps={pps} at={move_at} er={er} seed={seed})",
            oracle.reordered_per_flow);
        if !er {
            prop_assert!(oracle.is_globally_order_preserving(),
                "global reorder={:?} without ER (flows={flows} pps={pps} at={move_at} seed={seed})",
                oracle.reordered_global);
        }
        prop_assert_eq!(c2, flows as usize);
    }

    #[test]
    fn every_packet_processed_exactly_once_under_any_variant(
        variant_idx in 0usize..3,
        flows in 5u32..40,
        pps in 500u64..4_000,
        seed in 1u64..1_000,
    ) {
        let props = [MoveProps::lf_pl(), MoveProps::lf_pl_er(), MoveProps::lfop_pl_er()][variant_idx];
        let (oracle, _, _) = run_move(flows, pps, 100, props, seed);
        prop_assert!(oracle.duplicated.is_empty(), "dup={:?}", oracle.duplicated);
        prop_assert_eq!(oracle.processed, oracle.forwarded);
    }
}
