//! Property-based fault injection: across randomized fault plans — drops,
//! duplicates, and a mid-move source crash — a move either completes or
//! aborts, and the exactly-once-or-accounted oracle always holds: no
//! packet is ever lost or duplicated without an explicit explanation in
//! the fault record or an abort report.

use opennf::nfs::AssetMonitor;
use opennf::prelude::*;
use opennf::trace::steady_flows;
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn run_faulted_move(
    flows: u32,
    pps: u64,
    move_at_ms: u64,
    props: MoveProps,
    seed: u64,
    drop_data: u16,
    dup_data: u16,
    drop_events: u16,
    drop_ctrl: u16,
    crash_src_off_ms: Option<u64>,
) -> Scenario {
    let mut cfg = NetConfig::default();
    // Aborts must land while the run is still short.
    cfg.op.phase_timeout = Dur::millis(50);
    cfg.op.sb_retry_backoff = Dur::millis(10);

    let sw = NodeId(1);
    let src = NodeId(2);
    let ctrl = NodeId(0);
    let always = (Time(0), Time(u64::MAX));
    let mut plan = FaultPlan::new(seed ^ 0x00F0_0D5E)
        // Data path toward the source: drops and duplicates.
        .link(Some(sw), Some(src), always.0, always.1, drop_data, FaultKind::Drop)
        .link(Some(sw), Some(src), always.0, always.1, dup_data, FaultKind::Duplicate(Dur::micros(80)))
        // Events / southbound replies from the source.
        .link(Some(src), Some(ctrl), always.0, always.1, drop_events, FaultKind::Drop)
        // Southbound calls and packet-out replays toward the source.
        .link(Some(ctrl), Some(src), always.0, always.1, drop_ctrl, FaultKind::Drop);
    if let Some(off) = crash_src_off_ms {
        plan = plan.crash(src, Time((move_at_ms + 1 + off) * 1_000_000));
    }

    let mut s = ScenarioBuilder::new()
        .config(cfg)
        .seed(seed)
        .nf("src", Box::new(AssetMonitor::new()))
        .nf("dst", Box::new(AssetMonitor::new()))
        .host(steady_flows(flows, pps, Dur::millis(400), seed))
        .route(0, Filter::any(), 0)
        .fault_plan(plan)
        .build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(move_at_ms),
        Command::Move { src, dst, filter: Filter::any(), scope: ScopeSet::per_flow(), props },
    );
    s.run_to_completion();
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn random_fault_plans_never_violate_exactly_once_or_accounted(
        flows in 5u32..25,
        pps in 500u64..2_500,
        move_at in 50u64..250,
        variant_idx in 0usize..2,
        seed in 1u64..1_000,
        drop_data in 0u16..300,
        dup_data in 0u16..150,
        drop_events in 0u16..200,
        drop_ctrl in 0u16..150,
        crash_roll in 0u64..60,
    ) {
        // Half the cases crash the source 1–31 ms into the move.
        let crash = if crash_roll < 30 { Some(crash_roll) } else { None };
        let props = [MoveProps::lf_pl(), MoveProps::lfop_pl_er()][variant_idx];
        let s = run_faulted_move(
            flows, pps, move_at, props, seed,
            drop_data, dup_data, drop_events, drop_ctrl, crash,
        );
        // The op never silently wedges: exactly one report exists and it
        // is either completed or aborted with a reason.
        let reports = s.controller().reports_of("move");
        prop_assert_eq!(reports.len(), 1, "the op must finish one way or the other");
        let check = s.oracle_with_faults().check();
        prop_assert!(
            check.is_exactly_once_or_accounted(),
            "unaccounted lost={:?} dup={:?} (outcome={:?} flows={} pps={} at={} v={} seed={} faults=({},{},{},{}) crash={:?})",
            check.lost, check.duplicated, reports[0].outcome,
            flows, pps, move_at, variant_idx, seed,
            drop_data, dup_data, drop_events, drop_ctrl, crash
        );
    }
}
