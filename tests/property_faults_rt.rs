//! Property-based fault injection for the threaded runtime: random seeded
//! `FaultPlan`s through the `FaultyChannel` shim must (a) keep the
//! end-to-end exactly-once-or-accounted oracle intact, and (b) reconcile
//! exactly at the channel level — every message is delivered once,
//! twice-with-a-duplicate-record, or zero-times-with-a-loss-record — with
//! the delay pump shutting down cleanly afterwards.

use crossbeam::channel::unbounded;
use opennf::prelude::*;
use opennf::rt::{FaultyChannel, RtFaults, WireMsg};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// End-to-end: a random `(seed, mask)` spec — the same generator the
    /// soak binary iterates — run through the threaded runtime alone.
    /// Whatever the plan injects, every packet must be processed exactly
    /// once or excused by the fault ledger / abort accounting, and the
    /// run must shut down cleanly (worker joins hand back their state).
    #[test]
    fn random_fault_specs_hold_the_rt_oracle(
        seed in 1u64..10_000,
        mask in 0u32..256,
    ) {
        let spec = conformance::Spec::from_seed(seed, mask);
        let r = conformance::run_rt(&spec);
        prop_assert!(r.ok, "{} (repro: {})", r.detail, spec.repro());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Channel-level: K packets through one shimmed link reconcile
    /// exactly against the ledger — received count is 0 for a recorded
    /// loss, 2 for a recorded duplicate, 1 otherwise — and `join_pump`
    /// returns once every channel clone is dropped (no leaked delay
    /// threads).
    #[test]
    fn shimmed_link_reconciles_exactly_against_its_ledger(
        plan_seed in 1u64..100_000,
        n_msgs in 20u64..120,
        drop_pm in 0u16..300,
        dup_pm in 0u16..200,
        delay_pm in 0u16..200,
        reorder_pm in 0u16..200,
    ) {
        let src = NodeId(10);
        let dst = NodeId(11);
        let always = (Time(0), Time(u64::MAX));
        let plan = FaultPlan::new(plan_seed)
            .link(Some(src), Some(dst), always.0, always.1, drop_pm, FaultKind::Drop)
            .link(Some(src), Some(dst), always.0, always.1, dup_pm,
                  FaultKind::Duplicate(Dur::micros(200)))
            .link(Some(src), Some(dst), always.0, always.1, delay_pm,
                  FaultKind::Delay(Dur::millis(5)))
            .link(Some(src), Some(dst), always.0, always.1, reorder_pm,
                  FaultKind::Reorder(Dur::millis(3)));
        let (faults, pump) = RtFaults::arm(plan);
        let (tx, rx) = unbounded();
        let ch = FaultyChannel::shimmed(tx, src, dst, faults.clone(), pump);

        for uid in 1..=n_msgs {
            let key = FlowKey::tcp(
                "10.0.0.1".parse().unwrap(),
                4_000 + (uid % 50) as u16,
                "1.1.1.1".parse().unwrap(),
                80,
            );
            let pkt = Packet::builder(uid, key).flags(TcpFlags::SYN).build();
            ch.send(&WireMsg::Packet { packet: pkt }).unwrap();
        }

        // Dropping every channel clone lets the pump drain its queued
        // delays and exit; join_pump returning IS the clean-shutdown
        // assertion (a leaked delivery thread would hang the test here).
        drop(ch);
        faults.join_pump();

        let mut counts = vec![0u32; n_msgs as usize + 1];
        while let Ok(raw) = rx.try_recv() {
            match WireMsg::from_json(&raw).unwrap() {
                WireMsg::Packet { packet } => counts[packet.uid as usize] += 1,
                other => prop_assert!(false, "unexpected message: {other:?}"),
            }
        }
        let ledger = faults.ledger();
        let lost = ledger.lost_sorted();
        let dup = ledger.duplicated_sorted();
        for uid in 1..=n_msgs {
            let expect = if lost.binary_search(&uid).is_ok() {
                0
            } else if dup.binary_search(&uid).is_ok() {
                2
            } else {
                1
            };
            prop_assert_eq!(
                counts[uid as usize], expect,
                "uid {} (lost={:?} dup={:?} seed={})", uid, lost, dup, plan_seed
            );
        }
    }
}
