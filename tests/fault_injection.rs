//! Fault-injection acceptance tests: operations under injected failures
//! either run to completion (absorbing message loss with retries) or abort
//! cleanly with every packet accounted for — never silently wedging.
//!
//! The exactly-once-or-accounted oracle: every packet the switch forwarded
//! is processed exactly once, or its loss/duplication is explained by the
//! fault record (dropped/duplicated on a link, lost at a crashed node) or
//! by an abort report's explicit `abort_lost` list.

use opennf::nfs::AssetMonitor;
use opennf::prelude::*;
use opennf::trace::steady_flows;

fn two_monitor_scenario(
    cfg: NetConfig,
    flows: u32,
    pps: u64,
    dur: Dur,
    seed: u64,
    plan: Option<FaultPlan>,
) -> Scenario {
    let mut b = ScenarioBuilder::new()
        .config(cfg)
        .seed(seed)
        .nf("src", Box::new(AssetMonitor::new()))
        .nf("dst", Box::new(AssetMonitor::new()))
        .host(steady_flows(flows, pps, dur, seed))
        .route(0, Filter::any(), 0);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    b.build()
}

fn move_cmd(s: &Scenario, props: MoveProps) -> Command {
    Command::Move {
        src: s.instances[0],
        dst: s.instances[1],
        filter: Filter::any(),
        scope: ScopeSet::per_flow(),
        props,
    }
}

/// An order-preserving move of idle flows: no packet ever arrives for the
/// moved filter after the route flip, so the first-packet wait can only
/// end via its timeout — the operation must still complete.
#[test]
fn op_move_of_idle_flows_completes_via_first_packet_timeout() {
    let cfg = NetConfig::default();
    // Traffic ends at 200 ms; the move starts at 300 ms on a quiet network.
    let mut s = two_monitor_scenario(cfg, 10, 2_000, Dur::millis(200), 3, None);
    let cmd = move_cmd(&s, MoveProps::lfop_pl_er());
    s.issue_at(Dur::millis(300), cmd);
    s.run_to_completion();

    let reports = s.controller().reports_of("move");
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].outcome, OpOutcome::Completed, "idle-flow OP move completes");
    // Completion had to ride the first-packet timeout, so the op cannot
    // have ended before it elapsed.
    let issued_ns = Dur::millis(300).0;
    assert!(
        reports[0].end_ns >= issued_ns + cfg.op_first_packet_timeout.0,
        "end {} ns is before the first-packet timeout could fire",
        reports[0].end_ns
    );
    // All state still arrived at the destination.
    assert_eq!(s.nf(1).nf_as::<AssetMonitor>().conn_count(), 10);
    assert!(s.oracle().check().is_loss_free());
}

/// Acceptance demo: the source NF crashes mid-export. The move must abort
/// with a precise account — blamed instance, explicit `abort_lost` — and
/// the exactly-once-or-accounted oracle must hold.
#[test]
fn move_aborted_by_source_crash_mid_export_accounts_for_every_packet() {
    let mut cfg = NetConfig::default();
    cfg.op.phase_timeout = Dur::millis(50);
    // The source dies 3 ms into the move — while per-flow chunks are
    // streaming out (30 flows take ~15 ms of southbound round trips).
    let plan = FaultPlan::new(11).crash(NodeId(2), Time(303_000_000));
    let mut s = two_monitor_scenario(cfg, 30, 2_000, Dur::millis(800), 7, Some(plan));
    let cmd = move_cmd(&s, MoveProps::lf_pl());
    s.issue_at(Dur::millis(300), cmd);
    s.run_to_completion();

    let reports = s.controller().reports_of("move");
    assert_eq!(reports.len(), 1);
    let report = reports[0];
    assert!(report.outcome.is_aborted(), "outcome: {:?}", report.outcome);
    assert_eq!(report.failed_inst, Some(NodeId(2)), "abort blames the crashed source");

    // The crash drowned real traffic: the fault record is non-empty and
    // every single loss is accounted for.
    assert!(!s.accounted_uids().is_empty(), "crash losses appear in the account");
    let check = s.oracle_with_faults().check();
    assert!(
        check.is_exactly_once_or_accounted(),
        "unaccounted lost={:?} dup={:?}",
        check.lost,
        check.duplicated
    );
    // Without the excusals the same run must show losses — the oracle is
    // not vacuous.
    assert!(!s.oracle().check().is_loss_free(), "the crash really lost packets");
}

/// A southbound call whose delivery is dropped by the fault layer is
/// retried by the per-phase watchdog and the operation still completes.
#[test]
fn dropped_southbound_call_is_retried_then_op_completes() {
    let mut cfg = NetConfig::default();
    cfg.op.phase_timeout = Dur::millis(20);
    cfg.op.sb_retry_backoff = Dur::millis(5);
    // Sever controller → source exactly over the window where the move's
    // first southbound call (enableEvents) is sent; the retry at
    // ~125 ms falls outside it and gets through.
    let plan = FaultPlan::new(5).sever(NodeId(0), NodeId(2), Time(100_000_000), Time(110_000_000));
    let mut s = two_monitor_scenario(cfg, 20, 2_000, Dur::millis(400), 9, Some(plan));
    let cmd = move_cmd(&s, MoveProps::lf_pl());
    s.issue_at(Dur::millis(100), cmd);
    s.run_to_completion();

    let reports = s.controller().reports_of("move");
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].outcome, OpOutcome::Completed, "retry recovered the op");
    assert!(reports[0].retries >= 1, "the drop forced at least one retry");
    assert_eq!(s.nf(1).nf_as::<AssetMonitor>().conn_count(), 20);
    assert!(s.oracle().check().is_loss_free(), "loss-freedom held across the retry");
}

/// Determinism: the same seed and the same fault plan replay to
/// byte-identical reports, fault logs, and accounting.
#[test]
fn identical_seed_and_fault_plan_replay_identically() {
    let run = || {
        let mut cfg = NetConfig::default();
        cfg.op.phase_timeout = Dur::millis(50);
        let plan = FaultPlan::new(42)
            .link(
                Some(NodeId(1)),
                Some(NodeId(2)),
                Time(0),
                Time(u64::MAX),
                150,
                FaultKind::Drop,
            )
            .crash(NodeId(2), Time(250_000_000));
        let mut s = two_monitor_scenario(cfg, 15, 2_000, Dur::millis(500), 21, Some(plan));
        let cmd = move_cmd(&s, MoveProps::lf_pl());
        s.issue_at(Dur::millis(200), cmd);
        s.run_to_completion();
        let fault_log = format!("{:?}", s.engine.fault().expect("fault state").log);
        let reports = format!("{:?}", s.controller().reports);
        (fault_log, reports, s.accounted_uids())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "fault logs identical");
    assert_eq!(a.1, b.1, "operation reports identical");
    assert_eq!(a.2, b.2, "accounted uids identical");
}

/// `strict_share` teardown: when a share's southbound traffic to one
/// instance is severed past retry exhaustion, strict mode must not limp
/// along half-synchronized — it tears the whole share down, disables
/// every redirect filter, and reports exactly which instances are
/// out of sync.
#[test]
fn strict_share_tears_down_on_retry_exhaustion_and_names_out_of_sync_instances() {
    let mut cfg = NetConfig::default();
    cfg.op.phase_timeout = Dur::millis(20);
    cfg.op.sb_retries = 1;
    cfg.op.sb_retry_backoff = Dur::millis(5);
    cfg.op.strict_share = true;
    // Controller → second instance is dead for the whole setup window, so
    // the arming call and its one retry are both swallowed.
    let plan = FaultPlan::new(7).sever(NodeId(0), NodeId(3), Time(0), Time(200_000_000));
    let mut s = two_monitor_scenario(cfg, 12, 1_500, Dur::millis(300), 11, Some(plan));
    let insts = s.instances.clone();
    s.issue_at(
        Dur::millis(10),
        Command::Share {
            insts,
            filter: Filter::any(),
            scope: ScopeSet::multi_flow(),
            consistency: ConsistencyLevel::Strong,
        },
    );
    s.run_to_completion();

    // The share was dropped, not left in-flight.
    assert_eq!(s.controller().inflight_ops(), 0, "share must be torn down");
    let reports = s.controller().reports_of("share");
    assert_eq!(reports.len(), 1, "teardown produces exactly one report");
    assert!(reports[0].outcome.is_aborted(), "outcome: {:?}", reports[0].outcome);
    let reason = format!("{:?}", reports[0].outcome);
    assert!(reason.contains("out-of-sync"), "report names stragglers: {reason}");
    assert_eq!(reports[0].failed_inst, Some(s.instances[1]));
    assert_eq!(reports[0].out_of_sync, vec![s.instances[1]], "structured straggler list");

    // Teardown disabled the reachable instance's redirect filter too.
    assert!(
        !s.nf(0).harness().has_event_filters(),
        "reachable instance still has the share's event filter armed"
    );
}

/// Regression: the out-of-sync list must ride on the report *as data*
/// even when the teardown caught zero queued packets. A share torn down
/// before any traffic arrived used to surface the stragglers only inside
/// the abort-reason string, so harnesses reading `OpReport` saw an empty
/// account.
#[test]
fn strict_share_teardown_reports_out_of_sync_even_with_zero_queued_packets() {
    let mut cfg = NetConfig::default();
    cfg.op.phase_timeout = Dur::millis(20);
    cfg.op.sb_retries = 1;
    cfg.op.sb_retry_backoff = Dur::millis(5);
    cfg.op.strict_share = true;
    let plan = FaultPlan::new(7).sever(NodeId(0), NodeId(3), Time(0), Time(200_000_000));
    // No traffic at all: the teardown fires with every group queue empty.
    let mut s = two_monitor_scenario(cfg, 1, 1_000, Dur::ZERO, 11, Some(plan));
    let insts = s.instances.clone();
    s.issue_at(
        Dur::millis(10),
        Command::Share {
            insts,
            filter: Filter::any(),
            scope: ScopeSet::multi_flow(),
            consistency: ConsistencyLevel::Strong,
        },
    );
    s.run_to_completion();

    let reports = s.controller().reports_of("share");
    assert_eq!(reports.len(), 1, "teardown produces exactly one report");
    assert!(reports[0].outcome.is_aborted());
    assert!(
        reports[0].abort_lost.is_empty(),
        "no packets were queued, so none can be lost: {:?}",
        reports[0].abort_lost
    );
    assert_eq!(
        reports[0].out_of_sync,
        vec![s.instances[1]],
        "the structured out-of-sync list survives a zero-packet teardown"
    );
}

/// Default (non-strict) shares degrade instead: the same severed link
/// leaves the share in flight serving the instances it can reach, and no
/// abort report is filed.
#[test]
fn default_share_degrades_instead_of_tearing_down() {
    let mut cfg = NetConfig::default();
    cfg.op.phase_timeout = Dur::millis(20);
    cfg.op.sb_retries = 1;
    cfg.op.sb_retry_backoff = Dur::millis(5);
    assert!(!cfg.op.strict_share, "degrade is the default");
    let plan = FaultPlan::new(7).sever(NodeId(0), NodeId(3), Time(0), Time(200_000_000));
    let mut s = two_monitor_scenario(cfg, 12, 1_500, Dur::millis(300), 11, Some(plan));
    let insts = s.instances.clone();
    s.issue_at(
        Dur::millis(10),
        Command::Share {
            insts,
            filter: Filter::any(),
            scope: ScopeSet::multi_flow(),
            consistency: ConsistencyLevel::Strong,
        },
    );
    s.run_to_completion();

    assert_eq!(s.controller().inflight_ops(), 1, "share keeps running degraded");
    assert!(s.controller().reports_of("share").is_empty(), "no abort filed");
}
