//! The §5.1.2 redundancy-elimination motivation, end to end: "an encoded
//! packet arriving before the data packet w.r.t. which it was encoded will
//! be silently dropped; this can cause the decoder's data store to rapidly
//! become out of synch with the encoders."
//!
//! An RE decoder's fingerprint store is all-flows state. We move it
//! between decoder instances mid-stream with (a) a loss-free move and
//! (b) a loss-free *and order-preserving* move, and count decoder drops.
//! Reordering across flows is what matters here (every packet updates the
//! shared store), so only the globally-order-preserving variant is safe.

use opennf::nfs::{ReDecoder, ReEncoder};
use opennf::prelude::*;

/// Builds an encoded packet schedule where packet k's content references
/// content taught by packet k-1 — possibly on a *different* flow — so the
/// decoder depends on global processing order.
fn encoded_schedule(packets: u64, flows: u16, pps: u64) -> Vec<(u64, Packet)> {
    let mut enc = ReEncoder::new();
    let gap = 1_000_000_000 / pps;
    let chunk = |i: u64| -> Vec<u8> {
        // Globally unique 32-byte content per index (xorshift stream
        // seeded by a splitmix of i), so a reference can only resolve if
        // the teaching packet was actually processed first.
        let mut x = i.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..32)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect()
    };
    let mut out = Vec::new();
    for k in 0..packets {
        // Content: the previous packet's chunk (a back-reference once the
        // encoder has taught it) plus this packet's new chunk.
        let mut content = if k > 0 { chunk(k - 1) } else { Vec::new() };
        content.extend(chunk(k));
        let payload = enc.encode(&content);
        let key = FlowKey::tcp(
            format!("10.0.0.{}", (k % flows as u64) + 1).parse().unwrap(),
            5_000 + (k % flows as u64) as u16,
            "93.184.216.34".parse().unwrap(),
            80,
        );
        out.push((k * gap, Packet::builder(k + 1, key).payload(payload).build()));
    }
    out
}

fn run(props: MoveProps) -> (u64, u64, bool) {
    let mut s = ScenarioBuilder::new()
        .nf("dec1", Box::new(ReDecoder::new()))
        .nf("dec2", Box::new(ReDecoder::new()))
        .host(encoded_schedule(4_000, 40, 8_000))
        .route(0, Filter::any(), 0)
        .build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(150),
        Command::Move {
            src,
            dst,
            filter: Filter::any(),
            scope: ScopeSet { per_flow: false, multi_flow: false, all_flows: true },
            props,
        },
    );
    s.run_to_completion();
    let d1 = s.nf(0).nf_as::<ReDecoder>();
    let d2 = s.nf(1).nf_as::<ReDecoder>();
    let oracle = s.oracle().check();
    (d1.desync_drops + d2.desync_drops, d1.decoded + d2.decoded, oracle.is_loss_free())
}

#[test]
fn order_preserving_move_keeps_decoder_in_sync() {
    let props = MoveProps {
        variant: MoveVariant::LossFreeOrderPreserving,
        parallel: true,
        early_release: false, // global ordering needed: all-flows state
        ..Default::default()
    };
    let (drops, decoded, loss_free) = run(props);
    assert!(loss_free);
    assert_eq!(drops, 0, "an order-preserving move must not desynchronize the decoder");
    assert_eq!(decoded, 4_000, "every packet decoded");
}

#[test]
fn lossfree_only_move_desynchronizes_decoder() {
    let (drops, decoded, loss_free) = run(MoveProps::lf_pl());
    assert!(loss_free, "LF still loses nothing…");
    assert!(
        drops > 0,
        "…but reordering must desynchronize the RE decoder (decoded {decoded})"
    );
}

#[test]
fn no_move_baseline_decodes_everything() {
    let mut s = ScenarioBuilder::new()
        .nf("dec1", Box::new(ReDecoder::new()))
        .host(encoded_schedule(2_000, 40, 8_000))
        .route(0, Filter::any(), 0)
        .build();
    s.run_to_completion();
    let d = s.nf(0).nf_as::<ReDecoder>();
    assert_eq!(d.desync_drops, 0);
    assert_eq!(d.decoded, 2_000);
}
