//! Southbound API conformance: every NF in the workspace must obey the
//! §4.2 contract. The same suite runs over all of them:
//!
//! * `get_perflow(filter)` returns exactly the state whose flow ids match;
//! * `get → del → put` relocates state losslessly (move semantics);
//! * `put_multiflow` merges rather than replaces;
//! * exports are deserializable by a fresh instance of the same NF;
//! * `list_*` agrees with `get_*`.

use opennf::nf::NetworkFunction;
use opennf::nfs::ids::{Ids, IdsConfig};
use opennf::nfs::{AssetMonitor, Nat, Proxy, ReDecoder};
use opennf::prelude::*;

/// Each entry: a factory plus a packet feeder that installs state for
/// flows from the given client IP.
type Factory = fn() -> Box<dyn NetworkFunction>;

fn factories() -> Vec<(&'static str, Factory)> {
    vec![
        ("ids", || Box::new(Ids::new(IdsConfig::default()))),
        ("monitor", || Box::new(AssetMonitor::new())),
        ("nat", || Box::new(Nat::new("200.0.0.1".parse().unwrap()))),
        ("proxy", || Box::new(Proxy::new())),
        ("re_decoder", || Box::new(ReDecoder::new())),
    ]
}

/// Feeds `n` flows from `client_octet` (10.0.0.x) into the NF. Uses a
/// packet shape every NF accepts (TCP SYN + data toward port 80/3128).
fn feed_flows(nf: &mut dyn NetworkFunction, client_octet: u8, n: u16) {
    for i in 0..n {
        let dst_port = if nf.nf_type() == "proxy" { 3128 } else { 80 };
        let key = FlowKey::tcp(
            format!("10.0.0.{client_octet}").parse().unwrap(),
            3_000 + i,
            "93.184.216.34".parse().unwrap(),
            dst_port,
        );
        let syn = Packet::builder(1 + i as u64 * 3, key)
            .flags(TcpFlags::SYN)
            .seq(i as u32)
            .ingress_ns(1000)
            .build();
        nf.process_packet(&syn).unwrap();
        let payload = if nf.nf_type() == "proxy" {
            format!("GET /c{client_octet}obj{i}?size=1000 HTTP/1.1\r\n\r\n").into_bytes()
        } else {
            b"data-data-data".to_vec()
        };
        let data = Packet::builder(2 + i as u64 * 3, key)
            .flags(TcpFlags::PSH.union(TcpFlags::ACK))
            .seq(i as u32 + 1)
            .payload(payload)
            .ingress_ns(2000)
            .build();
        nf.process_packet(&data).unwrap();
    }
    let _ = nf.drain_logs();
}

fn client_filter(octet: u8) -> Filter {
    Filter::from_src(Ipv4Prefix::host(format!("10.0.0.{octet}").parse().unwrap())).bidi()
}

#[test]
fn get_perflow_respects_filter() {
    for (name, mk) in factories() {
        let mut nf = mk();
        feed_flows(nf.as_mut(), 1, 4);
        feed_flows(nf.as_mut(), 2, 3);
        let total = nf.get_perflow(&Filter::any()).len();
        let c1 = nf.get_perflow(&client_filter(1)).len();
        let c2 = nf.get_perflow(&client_filter(2)).len();
        if name == "re_decoder" {
            assert_eq!(total, 0, "{name}: RE has no per-flow state");
            continue;
        }
        assert_eq!(c1 + c2, total, "{name}: filters partition the state");
        assert!(c1 >= 4 - 1, "{name}: client 1 flows found ({c1})");
        assert!(c1 > c2, "{name}: 4 vs 3 flows ({c1} vs {c2})");
        // Every exported chunk's flow id matches the filter it was
        // selected by.
        for chunk in nf.get_perflow(&client_filter(1)) {
            assert!(
                client_filter(1).matches_flow_id(&chunk.flow_id),
                "{name}: chunk {} escapes its filter",
                chunk.flow_id
            );
        }
    }
}

#[test]
fn list_agrees_with_get() {
    for (name, mk) in factories() {
        let mut nf = mk();
        feed_flows(nf.as_mut(), 1, 5);
        let listed = nf.list_perflow(&Filter::any());
        let got = nf.get_perflow(&Filter::any());
        assert_eq!(listed.len(), got.len(), "{name}");
        let got_ids: Vec<FlowId> = got.iter().map(|c| c.flow_id).collect();
        for id in &listed {
            assert!(got_ids.contains(id), "{name}: listed {id} but not exported");
        }
    }
}

#[test]
fn move_semantics_get_del_put() {
    for (name, mk) in factories() {
        let mut src = mk();
        let mut dst = mk();
        feed_flows(src.as_mut(), 1, 5);
        let before = src.list_perflow(&Filter::any()).len();
        let chunks = src.get_perflow(&Filter::any());
        let ids: Vec<FlowId> = chunks.iter().map(|c| c.flow_id).collect();
        src.del_perflow(&ids);
        assert_eq!(src.list_perflow(&Filter::any()).len(), 0, "{name}: deleted at src");
        dst.put_perflow(chunks).unwrap_or_else(|e| panic!("{name}: put failed: {e}"));
        assert_eq!(
            dst.list_perflow(&Filter::any()).len(),
            before,
            "{name}: state relocated losslessly"
        );
    }
}

#[test]
fn multiflow_put_merges() {
    // The NFs with multi-flow state must merge, not replace.
    for (name, mk) in factories() {
        let mut a = mk();
        let mut b = mk();
        feed_flows(a.as_mut(), 1, 3);
        feed_flows(b.as_mut(), 1, 3);
        let a_before = a.get_multiflow(&Filter::any());
        if a_before.is_empty() {
            continue; // nat / re: no multi-flow state
        }
        let from_b = b.get_multiflow(&Filter::any());
        a.put_multiflow(from_b).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Merging must not shrink the table.
        let after = a.get_multiflow(&Filter::any()).len();
        assert!(after >= a_before.len(), "{name}: merge shrank state");
    }
}

#[test]
fn exports_decode_on_fresh_instances() {
    for (name, mk) in factories() {
        let mut src = mk();
        feed_flows(src.as_mut(), 1, 2);
        let per = src.get_perflow(&Filter::any());
        let multi = src.get_multiflow(&Filter::any());
        let all = src.get_allflows();
        let mut fresh = mk();
        fresh.put_perflow(per).unwrap_or_else(|e| panic!("{name} per: {e}"));
        fresh.put_multiflow(multi).unwrap_or_else(|e| panic!("{name} multi: {e}"));
        fresh.put_allflows(all).unwrap_or_else(|e| panic!("{name} all: {e}"));
    }
}

#[test]
fn unknown_chunk_kinds_are_rejected_not_panicking() {
    for (name, mk) in factories() {
        let mut nf = mk();
        let bogus = Chunk {
            flow_id: FlowId::default(),
            scope: Scope::PerFlow,
            kind: "definitely-unknown".into(),
            data: vec![0xFF; 8],
        };
        assert!(nf.put_perflow(vec![bogus]).is_err(), "{name} must reject unknown kinds");
    }
}
