//! Southbound API conformance: every NF in the workspace must obey the
//! §4.2 contract. The same suite runs over all of them:
//!
//! * `get_perflow(filter)` returns exactly the state whose flow ids match;
//! * `get → del → put` relocates state losslessly (move semantics);
//! * `put_multiflow` merges rather than replaces;
//! * exports are deserializable by a fresh instance of the same NF;
//! * `list_*` agrees with `get_*`.

use opennf::nf::NetworkFunction;
use opennf::nfs::ids::{Ids, IdsConfig};
use opennf::nfs::{AssetMonitor, Nat, Proxy, ReDecoder};
use opennf::prelude::*;

/// Each entry: a factory plus a packet feeder that installs state for
/// flows from the given client IP.
type Factory = fn() -> Box<dyn NetworkFunction>;

fn factories() -> Vec<(&'static str, Factory)> {
    vec![
        ("ids", || Box::new(Ids::new(IdsConfig::default()))),
        ("monitor", || Box::new(AssetMonitor::new())),
        ("nat", || Box::new(Nat::new("200.0.0.1".parse().unwrap()))),
        ("proxy", || Box::new(Proxy::new())),
        ("re_decoder", || Box::new(ReDecoder::new())),
    ]
}

/// Feeds `n` flows from `client_octet` (10.0.0.x) into the NF. Uses a
/// packet shape every NF accepts (TCP SYN + data toward port 80/3128).
fn feed_flows(nf: &mut dyn NetworkFunction, client_octet: u8, n: u16) {
    for i in 0..n {
        let dst_port = if nf.nf_type() == "proxy" { 3128 } else { 80 };
        let key = FlowKey::tcp(
            format!("10.0.0.{client_octet}").parse().unwrap(),
            3_000 + i,
            "93.184.216.34".parse().unwrap(),
            dst_port,
        );
        let syn = Packet::builder(1 + i as u64 * 3, key)
            .flags(TcpFlags::SYN)
            .seq(i as u32)
            .ingress_ns(1000)
            .build();
        nf.process_packet(&syn).unwrap();
        let payload = if nf.nf_type() == "proxy" {
            format!("GET /c{client_octet}obj{i}?size=1000 HTTP/1.1\r\n\r\n").into_bytes()
        } else {
            b"data-data-data".to_vec()
        };
        let data = Packet::builder(2 + i as u64 * 3, key)
            .flags(TcpFlags::PSH.union(TcpFlags::ACK))
            .seq(i as u32 + 1)
            .payload(payload)
            .ingress_ns(2000)
            .build();
        nf.process_packet(&data).unwrap();
    }
    let _ = nf.drain_logs();
}

fn client_filter(octet: u8) -> Filter {
    Filter::from_src(Ipv4Prefix::host(format!("10.0.0.{octet}").parse().unwrap())).bidi()
}

#[test]
fn get_perflow_respects_filter() {
    for (name, mk) in factories() {
        let mut nf = mk();
        feed_flows(nf.as_mut(), 1, 4);
        feed_flows(nf.as_mut(), 2, 3);
        let total = nf.get_perflow(&Filter::any()).len();
        let c1 = nf.get_perflow(&client_filter(1)).len();
        let c2 = nf.get_perflow(&client_filter(2)).len();
        if name == "re_decoder" {
            assert_eq!(total, 0, "{name}: RE has no per-flow state");
            continue;
        }
        assert_eq!(c1 + c2, total, "{name}: filters partition the state");
        assert!(c1 >= 4 - 1, "{name}: client 1 flows found ({c1})");
        assert!(c1 > c2, "{name}: 4 vs 3 flows ({c1} vs {c2})");
        // Every exported chunk's flow id matches the filter it was
        // selected by.
        for chunk in nf.get_perflow(&client_filter(1)) {
            assert!(
                client_filter(1).matches_flow_id(&chunk.flow_id),
                "{name}: chunk {} escapes its filter",
                chunk.flow_id
            );
        }
    }
}

#[test]
fn list_agrees_with_get() {
    for (name, mk) in factories() {
        let mut nf = mk();
        feed_flows(nf.as_mut(), 1, 5);
        let listed = nf.list_perflow(&Filter::any());
        let got = nf.get_perflow(&Filter::any());
        assert_eq!(listed.len(), got.len(), "{name}");
        let got_ids: Vec<FlowId> = got.iter().map(|c| c.flow_id).collect();
        for id in &listed {
            assert!(got_ids.contains(id), "{name}: listed {id} but not exported");
        }
    }
}

#[test]
fn move_semantics_get_del_put() {
    for (name, mk) in factories() {
        let mut src = mk();
        let mut dst = mk();
        feed_flows(src.as_mut(), 1, 5);
        let before = src.list_perflow(&Filter::any()).len();
        let chunks = src.get_perflow(&Filter::any());
        let ids: Vec<FlowId> = chunks.iter().map(|c| c.flow_id).collect();
        src.del_perflow(&ids);
        assert_eq!(src.list_perflow(&Filter::any()).len(), 0, "{name}: deleted at src");
        dst.put_perflow(chunks).unwrap_or_else(|e| panic!("{name}: put failed: {e}"));
        assert_eq!(
            dst.list_perflow(&Filter::any()).len(),
            before,
            "{name}: state relocated losslessly"
        );
    }
}

#[test]
fn multiflow_put_merges() {
    // The NFs with multi-flow state must merge, not replace.
    for (name, mk) in factories() {
        let mut a = mk();
        let mut b = mk();
        feed_flows(a.as_mut(), 1, 3);
        feed_flows(b.as_mut(), 1, 3);
        let a_before = a.get_multiflow(&Filter::any());
        if a_before.is_empty() {
            continue; // nat / re: no multi-flow state
        }
        let from_b = b.get_multiflow(&Filter::any());
        a.put_multiflow(from_b).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Merging must not shrink the table.
        let after = a.get_multiflow(&Filter::any()).len();
        assert!(after >= a_before.len(), "{name}: merge shrank state");
    }
}

#[test]
fn exports_decode_on_fresh_instances() {
    for (name, mk) in factories() {
        let mut src = mk();
        feed_flows(src.as_mut(), 1, 2);
        let per = src.get_perflow(&Filter::any());
        let multi = src.get_multiflow(&Filter::any());
        let all = src.get_allflows();
        let mut fresh = mk();
        fresh.put_perflow(per).unwrap_or_else(|e| panic!("{name} per: {e}"));
        fresh.put_multiflow(multi).unwrap_or_else(|e| panic!("{name} multi: {e}"));
        fresh.put_allflows(all).unwrap_or_else(|e| panic!("{name} all: {e}"));
    }
}

#[test]
fn unknown_chunk_kinds_are_rejected_not_panicking() {
    for (name, mk) in factories() {
        let mut nf = mk();
        let bogus = Chunk {
            flow_id: FlowId::default(),
            scope: Scope::PerFlow,
            kind: "definitely-unknown".into(),
            data: vec![0xFF; 8],
        };
        assert!(nf.put_perflow(vec![bogus]).is_err(), "{name} must reject unknown kinds");
    }
}

// ===== Cross-backend conformance =====
//
// The contract above is exercised through direct `NetworkFunction` calls.
// In deployment the same calls arrive through two different front ends:
// the simulator's in-process [`EventedNf`] harness and the threaded
// runtime's JSON worker. One scripted body runs against a `Southbound`
// driver trait with an implementation for each backend, and the two
// backends must produce identical observations — state counts, raised
// events, processed/dropped logs.

use crossbeam::channel::{unbounded, Receiver};
use opennf::nf::{EventedNf, NfEvent};
use opennf::rt::wire::WireAction;
use opennf::rt::{spawn_worker, WireCall, WireEvent, WireMsg, WireReply, WorkerHandle};
use std::time::Duration;

trait Southbound {
    fn packet(&mut self, pkt: Packet);
    fn get(&mut self, scope: Scope, filter: &Filter) -> Vec<Chunk>;
    fn put(&mut self, scope: Scope, chunks: Vec<Chunk>) -> Result<(), String>;
    fn del_perflow(&mut self, ids: Vec<FlowId>);
    fn enable_events(&mut self, filter: Filter, action: EventAction);
    fn disable_events(&mut self, filter: Filter);
    /// Uids of every packet-in (`Received`) event raised so far, in order.
    fn event_uids(&mut self) -> Vec<u64>;
    fn finish(self: Box<Self>) -> EventedNf;
}

/// Simulator backend: the harness the sim's NF node embeds, driven
/// directly.
struct SimBackend {
    h: EventedNf,
    events: Vec<u64>,
}

impl SimBackend {
    fn new(nf: Box<dyn NetworkFunction>) -> Self {
        SimBackend { h: EventedNf::new(nf), events: Vec::new() }
    }
}

impl Southbound for SimBackend {
    fn packet(&mut self, pkt: Packet) {
        let (_outcome, events) = self.h.handle_packet(&pkt);
        for ev in events {
            if let NfEvent::Received(p) = ev {
                self.events.push(p.uid);
            }
        }
    }
    fn get(&mut self, scope: Scope, filter: &Filter) -> Vec<Chunk> {
        match scope {
            Scope::PerFlow => self.h.nf_mut().get_perflow(filter),
            Scope::MultiFlow => self.h.nf_mut().get_multiflow(filter),
            Scope::AllFlows => self.h.nf_mut().get_allflows(),
        }
    }
    fn put(&mut self, scope: Scope, chunks: Vec<Chunk>) -> Result<(), String> {
        let r = match scope {
            Scope::PerFlow => self.h.nf_mut().put_perflow(chunks),
            Scope::MultiFlow => self.h.nf_mut().put_multiflow(chunks),
            Scope::AllFlows => self.h.nf_mut().put_allflows(chunks),
        };
        r.map_err(|e| e.to_string())
    }
    fn del_perflow(&mut self, ids: Vec<FlowId>) {
        self.h.nf_mut().del_perflow(&ids);
    }
    fn enable_events(&mut self, filter: Filter, action: EventAction) {
        self.h.enable_events(filter, action);
    }
    fn disable_events(&mut self, filter: Filter) {
        self.h.disable_events(&filter);
    }
    fn event_uids(&mut self) -> Vec<u64> {
        self.events.clone()
    }
    fn finish(self: Box<Self>) -> EventedNf {
        self.h
    }
}

/// Threaded-runtime backend: a real worker thread behind the JSON wire
/// protocol. Requests synchronize on their correlation id; events arriving
/// in between are collected in order (the worker's inbox is FIFO, so a
/// barrier request flushes every event raised before it).
struct RtBackend {
    w: Option<WorkerHandle>,
    rx: Receiver<String>,
    next_id: u64,
    events: Vec<u64>,
}

impl RtBackend {
    fn new(nf: Box<dyn NetworkFunction>) -> Self {
        let (to_ctrl, rx) = unbounded();
        RtBackend { w: Some(spawn_worker(0, nf, to_ctrl)), rx, next_id: 0, events: Vec::new() }
    }

    fn request(&mut self, call: WireCall) -> WireReply {
        self.next_id += 1;
        let id = self.next_id;
        self.w.as_ref().unwrap().send(&WireMsg::Request { id, call, span: None }).unwrap();
        loop {
            let raw = self.rx.recv_timeout(Duration::from_secs(5)).expect("worker reply");
            // The worker frames its sends (netstring by default, JSON
            // array under `json-wire`); one payload may carry several
            // messages.
            for msg in opennf::rt::wire::decode_frame(&raw).unwrap() {
                match msg {
                    WireMsg::Event { ev: WireEvent::PacketReceived { packet }, .. } => {
                        self.events.push(packet.uid);
                    }
                    WireMsg::Event { ev: WireEvent::NfFailed { reason }, .. } => {
                        panic!("worker died: {reason}");
                    }
                    WireMsg::Event { .. } => {}
                    WireMsg::Response { id: rid, reply } if rid == id => return reply,
                    other => panic!("unexpected wire message: {other:?}"),
                }
            }
        }
    }

    fn expect_chunks(&mut self, call: WireCall) -> Vec<Chunk> {
        match self.request(call) {
            WireReply::Chunks { chunks } => chunks,
            other => panic!("expected chunks, got {other:?}"),
        }
    }
}

impl Southbound for RtBackend {
    fn packet(&mut self, pkt: Packet) {
        self.w.as_ref().unwrap().send(&WireMsg::Packet { packet: pkt }).unwrap();
    }
    fn get(&mut self, scope: Scope, filter: &Filter) -> Vec<Chunk> {
        let call = match scope {
            Scope::PerFlow => WireCall::GetPerflow { filter: *filter },
            Scope::MultiFlow => WireCall::GetMultiflow { filter: *filter },
            Scope::AllFlows => WireCall::GetAllflows,
        };
        self.expect_chunks(call)
    }
    fn put(&mut self, scope: Scope, chunks: Vec<Chunk>) -> Result<(), String> {
        let call = match scope {
            Scope::PerFlow => WireCall::PutPerflow { chunks },
            Scope::MultiFlow => WireCall::PutMultiflow { chunks },
            Scope::AllFlows => WireCall::PutAllflows { chunks },
        };
        match self.request(call) {
            WireReply::Done => Ok(()),
            WireReply::Error { message } => Err(message),
            other => panic!("expected done/error, got {other:?}"),
        }
    }
    fn del_perflow(&mut self, ids: Vec<FlowId>) {
        match self.request(WireCall::DelPerflow { flow_ids: ids }) {
            WireReply::Done => {}
            other => panic!("expected done, got {other:?}"),
        }
    }
    fn enable_events(&mut self, filter: Filter, action: EventAction) {
        let action = match action {
            EventAction::Process => WireAction::Process,
            EventAction::Buffer => WireAction::Buffer,
            EventAction::Drop => WireAction::Drop,
        };
        match self.request(WireCall::EnableEvents { filter, action }) {
            WireReply::Done => {}
            other => panic!("expected done, got {other:?}"),
        }
    }
    fn disable_events(&mut self, filter: Filter) {
        match self.request(WireCall::DisableEvents { filter }) {
            WireReply::Done => {}
            other => panic!("expected done, got {other:?}"),
        }
    }
    fn event_uids(&mut self) -> Vec<u64> {
        // Barrier: any request's response flushes all events before it.
        let _ = self.expect_chunks(WireCall::GetAllflows);
        self.events.clone()
    }
    fn finish(mut self: Box<Self>) -> EventedNf {
        self.w.take().unwrap().shutdown()
    }
}

/// The packets `feed_flows` would send, as a list (so drivers can send
/// them through their own front door).
fn flow_packets(nf_type: &str, client_octet: u8, n: u16, uid_base: u64) -> Vec<Packet> {
    let mut out = Vec::new();
    for i in 0..n {
        let dst_port = if nf_type == "proxy" { 3128 } else { 80 };
        let key = FlowKey::tcp(
            format!("10.0.0.{client_octet}").parse().unwrap(),
            3_000 + i,
            "93.184.216.34".parse().unwrap(),
            dst_port,
        );
        out.push(
            Packet::builder(uid_base + i as u64 * 2, key)
                .flags(TcpFlags::SYN)
                .seq(i as u32)
                .ingress_ns(1000)
                .build(),
        );
        let payload = if nf_type == "proxy" {
            format!("GET /c{client_octet}obj{i}?size=1000 HTTP/1.1\r\n\r\n").into_bytes()
        } else {
            b"data-data-data".to_vec()
        };
        out.push(
            Packet::builder(uid_base + i as u64 * 2 + 1, key)
                .flags(TcpFlags::PSH.union(TcpFlags::ACK))
                .seq(i as u32 + 1)
                .payload(payload)
                .ingress_ns(2000)
                .build(),
        );
    }
    out
}

/// Everything the script observes; the two backends must agree on all of
/// it.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    per_c1: usize,
    per_total: usize,
    multi: usize,
    all: usize,
    src_after_del: usize,
    dst_after_move: usize,
    drop_stage_events: Vec<u64>,
    post_disable_events: Vec<u64>,
    buffer_stage_events: Vec<u64>,
    processed_log: Vec<u64>,
    dropped_uids: Vec<u64>,
}

/// The shared script: state install → multi-flow/all-flows export →
/// per-flow move (get → del → put) → enableEvents(drop) → disableEvents →
/// enableEvents(buffer) + release.
fn run_script(
    nf_type: &str,
    mut src: Box<dyn Southbound>,
    mut dst: Box<dyn Southbound>,
) -> Observed {
    // Install state: 4 flows from client 1, 3 from client 2.
    for p in flow_packets(nf_type, 1, 4, 1) {
        src.packet(p);
    }
    for p in flow_packets(nf_type, 2, 3, 101) {
        src.packet(p);
    }
    let per_c1 = src.get(Scope::PerFlow, &client_filter(1)).len();
    let per = src.get(Scope::PerFlow, &Filter::any());
    let per_total = per.len();
    let multi = src.get(Scope::MultiFlow, &Filter::any()).len();
    let all = src.get(Scope::AllFlows, &Filter::any()).len();

    // Relocate everything: get → del at src, put at dst.
    let ids: Vec<FlowId> = per.iter().map(|c| c.flow_id).collect();
    src.del_perflow(ids);
    let src_after_del = src.get(Scope::PerFlow, &Filter::any()).len();
    dst.put(Scope::PerFlow, per).unwrap_or_else(|e| panic!("{nf_type}: put per: {e}"));
    let dst_after_move = dst.get(Scope::PerFlow, &Filter::any()).len();

    // Drop-action events: client-1 packets raise events and are dropped,
    // client-2 packets pass untouched.
    dst.enable_events(client_filter(1), EventAction::Drop);
    for p in flow_packets(nf_type, 1, 1, 201) {
        dst.packet(p);
    }
    for p in flow_packets(nf_type, 2, 1, 211) {
        dst.packet(p);
    }
    let drop_stage_events = dst.event_uids();

    // After disable, the same traffic is processed silently.
    dst.disable_events(client_filter(1));
    for p in flow_packets(nf_type, 1, 1, 221) {
        dst.packet(p);
    }
    let post_disable_events = dst.event_uids();

    // Buffer-action events: held on arrival, processed on disable.
    dst.enable_events(client_filter(2), EventAction::Buffer);
    for p in flow_packets(nf_type, 2, 1, 231) {
        dst.packet(p);
    }
    let buffer_stage_events = dst.event_uids();
    dst.disable_events(client_filter(2));

    let h = dst.finish();
    drop(src.finish());
    Observed {
        per_c1,
        per_total,
        multi,
        all,
        src_after_del,
        dst_after_move,
        drop_stage_events,
        post_disable_events,
        buffer_stage_events,
        processed_log: h.processed_log().to_vec(),
        dropped_uids: h.dropped_uids().to_vec(),
    }
}

/// The same script, over every NF, on both backends — identical
/// observations, plus spot-checks that the script exercised what it
/// claims (events raised, drops recorded, buffered release processed).
#[test]
fn rt_json_worker_matches_sim_harness_on_full_southbound_script() {
    for (name, mk) in factories() {
        let sim = run_script(name, Box::new(SimBackend::new(mk())), Box::new(SimBackend::new(mk())));
        let rt = run_script(name, Box::new(RtBackend::new(mk())), Box::new(RtBackend::new(mk())));
        assert_eq!(sim, rt, "{name}: backends disagree");

        // Non-vacuity spot checks (on the sim copy; rt is equal).
        assert_eq!(sim.src_after_del, 0, "{name}: del cleared the source");
        assert_eq!(sim.dst_after_move, sim.per_total, "{name}: move lossless");
        assert_eq!(
            sim.drop_stage_events,
            vec![201, 202],
            "{name}: drop filter raised client-1 events only"
        );
        assert_eq!(
            sim.post_disable_events,
            vec![201, 202],
            "{name}: no events after disable"
        );
        assert_eq!(
            sim.buffer_stage_events,
            vec![201, 202, 231, 232],
            "{name}: buffer filter raised events on arrival"
        );
        for uid in [201, 202] {
            assert!(sim.dropped_uids.contains(&uid), "{name}: {uid} dropped");
            assert!(!sim.processed_log.contains(&uid), "{name}: {uid} not processed");
        }
        for uid in [211, 212, 221, 222, 231, 232] {
            assert!(sim.processed_log.contains(&uid), "{name}: {uid} processed");
        }
    }
}
