//! Differential fault conformance: the same scenario and the same seeded
//! `FaultPlan` run through the discrete-event simulator and the threaded
//! runtime, and both must satisfy the exactly-once-or-accounted oracle.
//! On fault-free specs they must also agree on final NF state digests and
//! processed counts; under faults, each side must at least be
//! rerun-deterministic (sim: byte-identical; rt: ledger-identical).

use conformance::{
    differential, run_rt, run_sim, Spec, M_ALL_FAULTS, M_DEFAULT, M_DROP_DATA, M_DROP_UP,
    M_DUP_DATA, M_FULL_LOAD, M_NO_MOVE, M_P2P,
};

/// With no faults the two runtimes are observationally equivalent: the
/// same packets are processed, and the final per-flow state (every chunk
/// of both instances) hashes identically.
#[test]
fn fault_free_runs_agree_on_state_digest_and_processed_count() {
    for seed in [1u64, 42, 1337] {
        let spec = Spec::from_seed(seed, M_FULL_LOAD);
        assert!(spec.is_fault_free());
        let r = differential(&spec);
        assert!(r.ok, "seed {seed}: {} (repro: {})", r.detail, spec.repro());
        assert_eq!(r.sim.digest, r.rt.digest, "seed {seed} digests");
        assert_eq!(r.sim.processed, r.rt.processed, "seed {seed} processed");
    }
}

/// The full fault cocktail — drops, delays, duplicates, reorders, a
/// source crash + restart, a destination stall — injected into both
/// runtimes from the same plan. Both sides must account for every packet.
#[test]
fn same_fault_plan_drives_both_runtimes_and_both_account_for_every_packet() {
    for seed in [2u64, 8] {
        let spec = Spec::from_seed(seed, M_ALL_FAULTS | M_FULL_LOAD);
        assert!(!spec.is_fault_free());
        let r = differential(&spec);
        assert!(r.ok, "seed {seed}: {} (repro: {})", r.detail, spec.repro());
        // The plan really fired in both runtimes (the oracle is not
        // vacuous): each side's canonical fault record is non-trivial.
        assert_ne!(r.sim.fault_canonical, "none", "sim injected nothing");
        assert!(!r.rt.fault_canonical.is_empty(), "rt injected nothing");
    }
}

/// Rerunning the same `(seed, mask)` is deterministic on each side:
/// the simulator replays byte-identically (canonical fault record and
/// state digest), and the threaded runtime's content-addressed dice make
/// its injected-fault ledger rerun-identical despite thread scheduling.
///
/// The rt guarantee is "same per-link message set ⇒ same ledger", so the
/// spec must keep the message set schedule-determined: `M_NO_MOVE`. With
/// a move in flight, the route flip races the generator thread, and a
/// packet that lands on the faulted link in one run may miss it in the
/// next — the ledger then legitimately differs (moves under faults are
/// exercised by the oracle tests above, which don't compare ledgers).
#[test]
fn same_seed_reruns_are_deterministic_per_runtime() {
    let spec = Spec::from_seed(4, M_DROP_DATA | M_DUP_DATA | M_DROP_UP | M_FULL_LOAD | M_NO_MOVE);
    let (a, b) = (run_sim(&spec), run_sim(&spec));
    assert_eq!(a.fault_canonical, b.fault_canonical, "sim fault record replays");
    assert_eq!(a.digest, b.digest, "sim state digest replays");
    assert_eq!(a.processed, b.processed, "sim processed count replays");

    let (a, b) = (run_rt(&spec), run_rt(&spec));
    assert_eq!(a.fault_canonical, b.fault_canonical, "rt ledger is rerun-identical");
}

/// The P2P bulk-transfer move variant (source streams chunk batches
/// directly to the destination) is observationally equivalent to the
/// controller-mediated move on fault-free specs: both runtimes complete
/// the move and agree on final state digests and processed counts.
#[test]
fn p2p_move_fault_free_agrees_across_runtimes() {
    for seed in [6u64, 21] {
        let spec = Spec::from_seed(seed, M_FULL_LOAD | M_P2P);
        assert!(spec.is_fault_free(), "bare M_P2P must not arm any fault");
        let r = differential(&spec);
        assert!(r.ok, "seed {seed}: {} (repro: {})", r.detail, spec.repro());
        assert_eq!(r.sim.digest, r.rt.digest, "seed {seed} digests");
        assert_eq!(r.sim.processed, r.rt.processed, "seed {seed} processed");
        assert!(r.sim.move_completed && r.rt.move_completed, "seed {seed} move completed");
    }
}

/// P2P under the full fault cocktail — including drops on the direct
/// src → dst chunk-batch link — must still satisfy the
/// exactly-once-or-accounted oracle on both sides: a dropped batch costs
/// a narrower retry round (or an accounted abort), never silent loss.
#[test]
fn p2p_move_under_faults_accounts_for_every_packet() {
    for seed in [9u64, 11] {
        let spec = Spec::from_seed(seed, M_DEFAULT | M_P2P);
        assert!(!spec.is_fault_free());
        let r = differential(&spec);
        assert!(r.ok, "seed {seed}: {} (repro: {})", r.detail, spec.repro());
    }
}

/// The default soak mask (what CI iterates) holds on its first seeds.
#[test]
fn default_soak_mask_first_seeds_pass() {
    for seed in [3u64, 5] {
        let spec = Spec::from_seed(seed, M_DEFAULT);
        let r = differential(&spec);
        assert!(r.ok, "seed {seed}: {} (repro: {})", r.detail, spec.repro());
    }
}

/// Telemetry span links cross the controller → worker runtime boundary:
/// a southbound request frame carries the id of the controller phase span
/// that sent it, and the worker's `rt.frame.decode` span opens *under*
/// that id — on a different thread. The trace viewer can therefore walk
/// from a controller `move.export` span into the worker that served it.
#[test]
fn worker_decode_spans_link_to_the_controller_phase_span() {
    use opennf_telemetry::{Kind, Telemetry};

    let tel = Telemetry::wall();
    let mut ctrl = opennf_rt::RtController::new_with_telemetry(
        vec![
            Box::new(opennf_nfs::AssetMonitor::new()) as Box<dyn opennf_nf::NetworkFunction>,
            Box::new(opennf_nfs::AssetMonitor::new()),
        ],
        tel.clone(),
    );
    for uid in 1..=20u64 {
        let key = opennf_packet::FlowKey::tcp(
            format!("10.0.0.{}", uid % 8 + 1).parse().unwrap(),
            2000 + (uid % 8) as u16,
            "93.184.216.34".parse().unwrap(),
            80,
        );
        let pkt = opennf_packet::Packet::builder(uid, key)
            .flags(opennf_packet::TcpFlags::SYN)
            .build();
        ctrl.inject(pkt).expect("worker alive");
    }
    ctrl.quiesce(0).expect("worker alive");
    ctrl.run_moves(vec![opennf_rt::OpSpec::mv(0, 1, opennf_packet::Filter::any())])
        .remove(0)
        .expect("move succeeds");
    ctrl.shutdown();

    let recs = tel.records();
    let phase_begins: Vec<_> = recs
        .iter()
        .filter(|r| r.kind == Kind::Begin && r.name.starts_with("move."))
        .collect();
    let decode_begins: Vec<_> = recs
        .iter()
        .filter(|r| r.kind == Kind::Begin && r.name == "rt.frame.decode")
        .collect();
    assert!(!decode_begins.is_empty(), "linked requests open worker decode spans");
    // Every decode span hangs off a real controller phase span, recorded
    // by a different thread — the link is cross-runtime, not a local
    // parent that happens to share an id.
    for d in &decode_begins {
        let parent = phase_begins
            .iter()
            .find(|p| p.id == d.parent)
            .unwrap_or_else(|| panic!("decode span parent {} is a controller phase span", d.parent));
        assert_ne!(parent.tid, d.tid, "link crosses the thread boundary");
    }
    // The export phase specifically is linked: its request frames
    // (EnableEvents, GetPerflowChunked) carry the span id southbound.
    let export = phase_begins.iter().find(|p| p.name == "move.export").expect("export span");
    assert!(
        decode_begins.iter().any(|d| d.parent == export.id),
        "at least one worker decode span links to move.export"
    );
}
