//! Restart re-synchronization: an NF that crashes while a move has its
//! event filter armed comes back (state retained — a recovered process)
//! with that filter still installed. The abort's `disableEvents` was
//! discarded at the down node, so without re-synchronization the stale
//! filter drops packets and raises stale packet-in events forever. The
//! fix: the instance announces its restart and the controller re-issues
//! the event-filter state it should hold (`syncEvents`), which for a dead
//! operation is *nothing*.

use opennf::nfs::AssetMonitor;
use opennf::prelude::*;
use opennf::trace::steady_flows;

/// Crashes the move's source mid-`enableEvents` window (between the
/// filter install and the abort's cleanup), restarts it after the abort,
/// and asserts the stale filter is gone: no event filter installed at the
/// end, and no packet sent after the restart was dropped by it.
#[test]
fn stale_event_filter_is_cleared_when_source_restarts_after_aborted_move() {
    let mut cfg = NetConfig::default();
    cfg.op.phase_timeout = Dur::millis(10);
    cfg.op.sb_retries = 0;
    // The enableEvents lands ~100.6 ms; the crash at 103 ms swallows the
    // export replies, so the move aborts at ~113 ms — while the node is
    // down, which is what strands the filter. Restart at 200 ms.
    let plan = FaultPlan::new(9)
        .crash(NodeId(2), Time(103_000_000))
        .restart(NodeId(2), Time(200_000_000));
    let trace = steady_flows(10, 2_000, Dur::millis(500), 5);
    let mut s = ScenarioBuilder::new()
        .config(cfg)
        .seed(5)
        .nf("src", Box::new(AssetMonitor::new()))
        .nf("dst", Box::new(AssetMonitor::new()))
        .host(trace.clone())
        .route(0, Filter::any(), 0)
        .fault_plan(plan)
        .build();
    let cmd = Command::Move {
        src: s.instances[0],
        dst: s.instances[1],
        filter: Filter::any(),
        scope: ScopeSet::per_flow(),
        props: MoveProps::lf_pl(),
    };
    s.issue_at(Dur::millis(100), cmd);
    s.run_to_completion();

    // The crash really aborted the move.
    let reports = s.controller().reports_of("move");
    assert_eq!(reports.len(), 1);
    assert!(reports[0].outcome.is_aborted(), "outcome: {:?}", reports[0].outcome);

    // Restart re-sync cleared the filter the abort could not reach.
    assert!(
        !s.nf(0).harness().has_event_filters(),
        "stale event filter survived the restart"
    );

    // No packet generated after the restart (plus one sync round trip)
    // was dropped by the stale filter. Packet uid u was scheduled at
    // trace[u-1].0 ns (uids are assigned 1..=N in schedule order).
    let resync_done_ns = 200_000_000u64 + 2_000_000;
    let late_drops: Vec<u64> = s
        .nf(0)
        .harness()
        .dropped_uids()
        .iter()
        .copied()
        .filter(|&u| trace[(u - 1) as usize].0 > resync_done_ns)
        .collect();
    assert!(
        late_drops.is_empty(),
        "packets dropped by a stale filter after restart: {late_drops:?}"
    );
}
