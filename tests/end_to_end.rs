//! Cross-crate end-to-end scenarios: realistic traces through real NFs
//! with OpenNF operations in flight, checked by the guarantee oracle.

use opennf::nfs::ids::Ids;
use opennf::nfs::AssetMonitor;
use opennf::prelude::*;
use opennf::trace::{steady_flows, univ_cloud, UnivCloudConfig};

#[test]
fn ids_pipeline_on_synthetic_trace_detects_everything() {
    let cfg = UnivCloudConfig {
        flows: 120,
        pps: 2_000,
        duration: Dur::secs(2),
        malware_fraction: 0.1,
        outdated_ua_fraction: 0.1,
        scanners: 1,
        scan_ports: 25,
        ..UnivCloudConfig::default()
    };
    let trace = univ_cloud(&cfg);
    let mut s = ScenarioBuilder::new()
        .nf("ids", Box::new(Ids::with_signatures(trace.signatures.clone())))
        .host(trace.packets)
        .route(0, Filter::any(), 0)
        .build();
    s.run_to_completion();
    let n = s.nf(0);
    assert_eq!(
        n.logs_of("alert.malware").len() as u32,
        trace.malware_flows,
        "every malware flow detected, none missed"
    );
    assert_eq!(n.logs_of("alert.outdated_browser").len() as u32, trace.outdated_flows);
    assert_eq!(n.logs_of("alert.scan").len(), 1, "one scanner, one alert");
    // Clean teardown: conn.log entries with state=SF for completed flows.
    let sf = n
        .logs_of("conn_log")
        .iter()
        .filter(|l| l.detail.contains("state=SF"))
        .count();
    assert_eq!(sf as u32, trace.flows, "all HTTP flows closed cleanly");
}

#[test]
fn midtrace_move_does_not_lose_detections() {
    // Malware flows are moved mid-transfer; loss-free moves must keep
    // every detection.
    let cfg = UnivCloudConfig {
        flows: 60,
        pps: 2_500,
        duration: Dur::secs(2),
        malware_fraction: 0.5,
        subnets: 2,
        ..UnivCloudConfig::default()
    };
    let trace = univ_cloud(&cfg);
    let mk = || Box::new(Ids::with_signatures(trace.signatures.clone()));
    let mut s = ScenarioBuilder::new()
        .nf("ids1", mk())
        .nf("ids2", mk())
        .host(trace.packets)
        .route(0, Filter::any(), 0)
        .build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    // Move one subnet's flows mid-trace.
    s.issue_at(
        Dur::millis(700),
        Command::Move {
            src,
            dst,
            filter: Filter::from_src("10.0.1.0/24".parse().unwrap()).bidi(),
            scope: ScopeSet::per_flow(),
            props: MoveProps::lf_pl_er(),
        },
    );
    s.run_to_completion();
    let total: usize = (0..2).map(|i| s.nf(i).logs_of("alert.malware").len()).sum();
    assert_eq!(total as u32, trace.malware_flows, "no detection lost to the move");
    let oracle = s.oracle().check();
    assert!(oracle.is_loss_free(), "{:?}", oracle.lost);
    // No spurious weird-activity alerts either (order held within flows).
    let weird: usize =
        (0..2).map(|i| s.nf(i).logs_of("weird.syn_inside_connection").len()).sum();
    assert_eq!(weird, 0, "no false SYN_inside_connection alerts");
}

#[test]
fn lossy_move_misses_detections_but_lossfree_does_not() {
    // A/B comparison on the same trace: the NG move drops packets and
    // loses malware detections; the LF move keeps them all.
    let cfg = UnivCloudConfig {
        flows: 40,
        pps: 4_000,
        duration: Dur::secs(2),
        malware_fraction: 1.0, // every flow carries a signature
        ..UnivCloudConfig::default()
    };
    let run = |props: MoveProps| {
        let trace = univ_cloud(&cfg);
        let mk = || Box::new(Ids::with_signatures(trace.signatures.clone()));
        let mut s = ScenarioBuilder::new()
            .nf("ids1", mk())
            .nf("ids2", mk())
            .host(trace.packets)
            .route(0, Filter::any(), 0)
            .build();
        let (src, dst) = (s.instances[0], s.instances[1]);
        s.issue_at(
            Dur::millis(700),
            Command::Move { src, dst, filter: Filter::any(), scope: ScopeSet::per_flow(), props },
        );
        s.run_to_completion();
        let total: usize = (0..2).map(|i| s.nf(i).logs_of("alert.malware").len()).sum();
        total as u32
    };
    let detected_ng = run(MoveProps::ng_pl());
    let detected_lf = run(MoveProps::lf_pl());
    assert_eq!(detected_lf, 40, "loss-free move preserves every detection");
    assert!(
        detected_ng < 40,
        "the no-guarantee move must miss some detections (got {detected_ng}/40)"
    );
}

#[test]
fn nat_flows_survive_moves() {
    use opennf::nfs::Nat;
    let mut s = ScenarioBuilder::new()
        .nf("nat1", Box::new(Nat::new("200.0.0.1".parse().unwrap())))
        .nf("nat2", Box::new(Nat::new("200.0.0.1".parse().unwrap())))
        .host(steady_flows(80, 2_500, Dur::secs(1), 21))
        .route(0, Filter::any(), 0)
        .build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(300),
        Command::Move {
            src,
            dst,
            filter: Filter::any(),
            scope: ScopeSet::per_flow(),
            props: MoveProps::lf_pl_er(),
        },
    );
    s.run_to_completion();
    let n2 = s.nf(1).nf_as::<Nat>();
    assert_eq!(n2.entry_count(), 80, "all conntrack entries at the destination");
    assert_eq!(n2.untranslatable, 0, "no mid-flow packet hit a missing translation");
    let oracle = s.oracle().check();
    assert!(oracle.is_loss_free());
}

#[test]
fn scale_in_merges_counters_and_still_detects() {
    // Scale-in (§2.1): flows from two instances are consolidated; the scan
    // counters must merge so split evidence still triggers detection.
    let mut parts = Vec::new();
    // A scanner probing 6 ports observed by ids1 and 6 by ids2.
    for (block, base_port) in [(0u8, 100u16), (1u8, 200u16)] {
        for p in 0..6u16 {
            let key = opennf::packet::FlowKey::tcp(
                "66.66.66.1".parse().unwrap(),
                50_000 + base_port + p,
                format!("10.0.{block}.9").parse().unwrap(),
                base_port + p,
            );
            let pkt = Packet::builder(0, key).flags(TcpFlags::SYN).build();
            parts.push(vec![(1_000_000 * (p as u64 + 1) + block as u64 * 500, pkt)]);
        }
    }
    let sched = opennf::trace::merge_schedules(parts);
    let mut s = ScenarioBuilder::new()
        .nf("ids1", Box::new(Ids::new(opennf::nfs::ids::IdsConfig::default())))
        .nf("ids2", Box::new(Ids::new(opennf::nfs::ids::IdsConfig::default())))
        .host(sched)
        .route(0, Filter::from_dst("10.0.0.0/24".parse().unwrap()), 0)
        .route(1, Filter::from_dst("10.0.1.0/24".parse().unwrap()), 1)
        .build();
    let (a, b) = (s.instances[0], s.instances[1]);
    // Scale in at 100 ms: move instance b's flows AND multi-flow counters
    // into a.
    s.issue_at(
        Dur::millis(100),
        Command::Move {
            src: b,
            dst: a,
            filter: Filter::any(),
            scope: ScopeSet { per_flow: true, multi_flow: true, all_flows: false },
            props: MoveProps::lf_pl(),
        },
    );
    s.run_to_completion();
    let scans = s.nf(0).logs_of("alert.scan").len();
    assert_eq!(scans, 1, "merged counters (6+6 ports ≥ 10) must fire the alert");
}

#[test]
fn deterministic_runs_for_fixed_seed() {
    let run = || {
        let mut s = ScenarioBuilder::new()
            .seed(77)
            .nf("m1", Box::new(AssetMonitor::new()))
            .nf("m2", Box::new(AssetMonitor::new()))
            .host(steady_flows(50, 3_000, Dur::millis(500), 77))
            .route(0, Filter::any(), 0)
            .build();
        let (src, dst) = (s.instances[0], s.instances[1]);
        s.issue_at(
            Dur::millis(100),
            Command::Move {
                src,
                dst,
                filter: Filter::any(),
                scope: ScopeSet::per_flow(),
                props: MoveProps::lfop_pl_er(),
            },
        );
        s.run_to_completion();
        (
            s.controller().reports[0].duration_ms(),
            s.nf(0).processed_log().to_vec(),
            s.nf(1).processed_log().to_vec(),
            s.engine.now().as_nanos(),
        )
    };
    assert_eq!(run(), run(), "same seed, same run");
}
