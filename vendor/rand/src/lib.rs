//! Offline drop-in subset of `rand`: the [`RngCore`] trait, which the
//! simulator's own deterministic generator implements. All actual
//! distributions live in `opennf_sim::SimRng`.

/// Error type for fallible byte filling (never produced by this workspace's
/// generators).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number-generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}
