//! Offline drop-in subset of `proptest`.
//!
//! Runs each property over a fixed number of deterministically seeded
//! random cases (no shrinking). The surface mirrors what this workspace
//! uses: the `proptest!` macro, `any::<T>()`, integer-range strategies,
//! tuple strategies, `prop_map`, `proptest::collection::vec`,
//! `prop::sample::Index`, and `ProptestConfig { cases, .. }`.

/// Deterministic per-case RNG (splitmix64).
pub struct TestRng {
    s: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng { s: seed ^ 0xD1B54A32D192ED03 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.s = self.s.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n.max(1) as u128) >> 64) as u64
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for signature compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 24, max_shrink_iters: 0 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { s: self, f }
    }

    /// Filters generated values (resamples up to a bound, then keeps the
    /// last draw — adequate for the high-acceptance filters tests use).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _why: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { s: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    s: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.s.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    s: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let v = self.s.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        self.s.sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
    }
}

/// Strategy for any `T: Arbitrary`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// A range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Exclusive upper bound.
    pub hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi - self.len.lo) as u64;
            let n = self.len.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespaced strategies (`prop::sample::Index` etc.).
pub mod prop {
    pub use crate::collection;

    /// Sampling helpers.
    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An index into a collection of as-yet-unknown size.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(pub u64);

        impl Index {
            /// Resolves against a concrete length (must be nonzero).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (failure panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares deterministic randomized property tests.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $( $argpat:pat in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                // Seed derived from the test name so properties explore
                // different sequences but each run is reproducible.
                let __base: u64 = stringify!($name)
                    .bytes()
                    .fold(0xcbf29ce484222325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x100000001b3)
                    });
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::new(
                        __base.wrapping_add((__case as u64).wrapping_mul(0x9E3779B97F4A7C15)),
                    );
                    $( let $argpat = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}
