//! Offline drop-in subset of `serde`.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real serde is replaced by this value-tree implementation: `Serialize`
//! renders a type into a [`Value`], `Deserialize` reads one back, and the
//! companion `serde_json` stub prints/parses the JSON text form. The derive
//! macros (re-exported from `serde_derive`) cover the shapes this repo uses:
//! named structs, tuple/newtype structs, fieldless enums, and data-carrying
//! enums with optional `#[serde(tag = "...", rename_all = "...")]`.
//!
//! Deliberate simplifications (fine for a self-contained wire format):
//! maps serialize as arrays of `[key, value]` pairs, so non-string keys
//! (e.g. `ConnKey`) work uniformly; hash containers are sorted by encoded
//! key so output bytes are deterministic across runs.

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::Value;

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn msg(m: impl std::fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` as a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree. The lifetime parameter exists
/// only for signature compatibility with real serde bounds
/// (`for<'de> Deserialize<'de>`); nothing borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Parses a value tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a named field in an object body; a missing field deserializes
/// from `Null` (so `Option` fields tolerate omission).
pub fn field<T: for<'de> Deserialize<'de>>(
    obj: &[(std::borrow::Cow<'static, str>, Value)],
    name: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k.as_ref() == name) {
        Some((_, v)) => T::from_value(v),
        None => T::from_value(&Value::Null)
            .map_err(|e| Error::msg(format!("missing field `{name}`: {e}"))),
    }
}

// ---- impls for std types --------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::msg("expected f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone().into())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::msg("expected string"))
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string().into())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string().into())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::msg("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T> Deserialize<'_> for Box<T>
where
    T: for<'de> Deserialize<'de>,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string().into())
    }
}
impl<'de> Deserialize<'de> for std::net::Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .ok_or_else(|| Error::msg("expected ip string"))?
            .parse()
            .map_err(|_| Error::msg("invalid ipv4 address"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T> Deserialize<'_> for Option<T>
where
    T: for<'de> Deserialize<'de>,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a>(it: impl Iterator<Item = &'a T>) -> Value {
    Value::Array(it.map(Serialize::to_value).collect())
}

fn value_to_seq<T>(v: &Value) -> Result<Vec<T>, Error>
where
    T: for<'de> Deserialize<'de>,
{
    v.as_array()
        .ok_or_else(|| Error::msg("expected array"))?
        .iter()
        .map(T::from_value)
        .collect()
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T> Deserialize<'_> for Vec<T>
where
    T: for<'de> Deserialize<'de>,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        value_to_seq(v)
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T> Deserialize<'_> for std::collections::VecDeque<T>
where
    T: for<'de> Deserialize<'de>,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_seq(v)?.into())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T> Deserialize<'_> for std::collections::BTreeSet<T>
where
    T: for<'de> Deserialize<'de> + Ord,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_seq::<T>(v)?.into_iter().collect())
    }
}
impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        let mut vals: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        // Hash iteration order is nondeterministic; sort the encoded form so
        // serialized bytes are stable across runs.
        vals.sort_by_key(|v| v.encode_json());
        Value::Array(vals)
    }
}
impl<T> Deserialize<'_> for std::collections::HashSet<T>
where
    T: for<'de> Deserialize<'de> + Eq + std::hash::Hash,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_seq::<T>(v)?.into_iter().collect())
    }
}

// Maps serialize as arrays of [key, value] pairs so arbitrary key types work.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    it: impl Iterator<Item = (&'a K, &'a V)>,
    sort: bool,
) -> Value {
    let mut pairs: Vec<Value> =
        it.map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect();
    if sort {
        pairs.sort_by_key(|p| p.encode_json());
    }
    Value::Array(pairs)
}

fn value_to_pairs<K, V>(v: &Value) -> Result<Vec<(K, V)>, Error>
where
    K: for<'de> Deserialize<'de>,
    V: for<'de> Deserialize<'de>,
{
    v.as_array()
        .ok_or_else(|| Error::msg("expected map (array of pairs)"))?
        .iter()
        .map(|pair| {
            let kv = pair.as_array().ok_or_else(|| Error::msg("expected [key, value] pair"))?;
            if kv.len() != 2 {
                return Err(Error::msg("expected [key, value] pair"));
            }
            Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
        })
        .collect()
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), false)
    }
}
impl<K, V> Deserialize<'_> for std::collections::BTreeMap<K, V>
where
    K: for<'de> Deserialize<'de> + Ord,
    V: for<'de> Deserialize<'de>,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_pairs::<K, V>(v)?.into_iter().collect())
    }
}
impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), true)
    }
}
impl<K, V> Deserialize<'_> for std::collections::HashMap<K, V>
where
    K: for<'de> Deserialize<'de> + Eq + std::hash::Hash,
    V: for<'de> Deserialize<'de>,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(value_to_pairs::<K, V>(v)?.into_iter().collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t),+> Deserialize<'_> for ($($t,)+)
        where $($t: for<'de> Deserialize<'de>),+
        {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                Ok(($($t::from_value(a.get($n).unwrap_or(&Value::Null))?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T, const N: usize> Deserialize<'_> for [T; N]
where
    T: for<'de> Deserialize<'de>,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = value_to_seq::<T>(v)?;
        items.try_into().map_err(|_| Error::msg("array length mismatch"))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
