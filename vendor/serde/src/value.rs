//! The JSON-shaped value tree and its text encoding.

/// A JSON-style dynamic value. Objects keep insertion order (a `Vec` of
/// pairs), which makes encoded output deterministic for a given input.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative numbers).
    Int(i64),
    /// Unsigned integer (the common case for counters/ids).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned accessor (accepts non-negative `Int` and integral `Float`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Signed accessor.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Float accessor (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object accessor.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Encodes this value as compact JSON text.
    pub fn encode_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Encodes this value as compact JSON text appended to `out`,
    /// letting callers reuse one output buffer across many values.
    pub fn encode_json_into(&self, out: &mut String) {
        self.write_json(out);
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 round-trips through parse.
                    let s = f.to_string();
                    out.push_str(&s);
                    // Keep floats distinguishable from ints so 1.0 stays a float.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value.
    pub fn parse_json(s: &str) -> Result<Value, String> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing input at byte {}", p.i));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or("unterminated string")?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let cp =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i - 1)),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let s = &self.b[self.i - 1..];
                    let ch = std::str::from_utf8(&s[..s.len().min(4)])
                        .ok()
                        .and_then(|t| t.chars().next())
                        .or_else(|| {
                            (1..=4.min(s.len()))
                                .find_map(|n| std::str::from_utf8(&s[..n]).ok())
                                .and_then(|t| t.chars().next())
                        })
                        .ok_or("invalid utf-8 in string")?;
                    out.push(ch);
                    self.i += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}
