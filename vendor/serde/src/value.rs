//! The JSON-shaped value tree and its text encoding.

use std::borrow::Cow;

/// A JSON-style dynamic value. Objects keep insertion order (a `Vec` of
/// pairs), which makes encoded output deterministic for a given input.
///
/// Strings (both object keys and string values) are `Cow<'static, str>`:
/// serializers pass field names as borrowed `&'static str` (no
/// allocation), and the parser borrows well-known wire words from a
/// static intern table ([`intern`]) — bulk state transfer decodes tens of
/// thousands of short keys, and allocating each one dominated the decode
/// profile before values went copy-on-write.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative numbers).
    Int(i64),
    /// Unsigned integer (the common case for counters/ids).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(Cow<'static, str>),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs.
    Object(Vec<(Cow<'static, str>, Value)>),
}

/// Returns the static copy of a well-known wire word, if `s` is one.
///
/// The table covers the field names and tag values the southbound wire
/// format and NF state chunks use on their hot paths; anything else
/// falls back to an owned allocation. Purely an in-memory optimization —
/// encoded bytes are identical either way.
fn intern(s: &str) -> Option<&'static str> {
    Some(match s.as_bytes() {
        b"type" => "type",
        b"id" => "id",
        b"call" => "call",
        b"reply" => "reply",
        b"seq" => "seq",
        b"last" => "last",
        b"chunks" => "chunks",
        b"flow_id" => "flow_id",
        b"flow_ids" => "flow_ids",
        b"scope" => "scope",
        b"kind" => "kind",
        b"data" => "data",
        b"nw_src" => "nw_src",
        b"nw_dst" => "nw_dst",
        b"tp_src" => "tp_src",
        b"tp_dst" => "tp_dst",
        b"nw_proto" => "nw_proto",
        b"worker" => "worker",
        b"ev" => "ev",
        b"packet" => "packet",
        b"filter" => "filter",
        b"span" => "span",
        b"epoch" => "epoch",
        b"uid" => "uid",
        b"bytes" => "bytes",
        b"imported" => "imported",
        b"message" => "message",
        b"batch" => "batch",
        b"peer" => "peer",
        b"only" => "only",
        b"through_id" => "through_id",
        b"action" => "action",
        b"events" => "events",
        b"flags" => "flags",
        b"payload_len" => "payload_len",
        b"per-flow" => "per-flow",
        b"multi-flow" => "multi-flow",
        b"all-flows" => "all-flows",
        b"request" => "request",
        b"response" => "response",
        b"event" => "event",
        b"tcp" => "tcp",
        b"udp" => "udp",
        b"done" => "done",
        b"drop" => "drop",
        b"buffer" => "buffer",
        _ => return None,
    })
}

impl Value {
    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned accessor (accepts non-negative `Int` and integral `Float`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Signed accessor.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Float accessor (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object accessor.
    pub fn as_object(&self) -> Option<&[(Cow<'static, str>, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k.as_ref() == key).map(|(_, v)| v)
    }

    /// Encodes this value as compact JSON text.
    pub fn encode_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Encodes this value as compact JSON text appended to `out`,
    /// letting callers reuse one output buffer across many values.
    pub fn encode_json_into(&self, out: &mut String) {
        self.write_json(out);
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 round-trips through parse.
                    let s = f.to_string();
                    out.push_str(&s);
                    // Keep floats distinguishable from ints so 1.0 stays a float.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value.
    pub fn parse_json(s: &str) -> Result<Value, String> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing input at byte {}", p.i));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    // Bulk-copy runs of clean characters; only the rare escapes go through
    // the per-character path. Strings dominate chunk payload codec, so the
    // writer must not walk them a char at a time.
    let bytes = s.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b >= 0x20 && b != b'"' && b != b'\\' {
            i += 1;
            continue;
        }
        out.push_str(&s[start..i]);
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            _ => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", b as u32);
            }
        }
        i += 1;
        start = i;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<Cow<'static, str>, String> {
        self.expect(b'"')?;
        // Fast path: scan to the closing quote; if no escape intervenes,
        // the run is either borrowed from the intern table (well-known
        // wire words — the overwhelmingly common case for object keys) or
        // one bulk copy.
        let start = self.i;
        while let Some(&b) = self.b.get(self.i) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    self.i += 1;
                    return Ok(match intern(s) {
                        Some(st) => Cow::Borrowed(st),
                        None => Cow::Owned(s.to_string()),
                    });
                }
                b'\\' => break,
                _ => self.i += 1,
            }
        }
        // Slow path (escape seen): restart with an accumulating buffer,
        // still bulk-copying the clean runs between escapes.
        self.i = start;
        let mut out = String::new();
        loop {
            let run = self.i;
            while let Some(&b) = self.b.get(self.i) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.i += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.b[run..self.i])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            let c = self.peek().ok_or("unterminated string")?;
            self.i += 1;
            match c {
                b'"' => return Ok(Cow::Owned(out)),
                b'\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let cp =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i - 1)),
                    }
                }
                // The run scan above stops only at '"' or '\\'.
                _ => unreachable!("string run scan stops only at quote or escape"),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}
