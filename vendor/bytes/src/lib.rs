//! Offline drop-in subset of the `bytes` crate: just [`Bytes`], an
//! immutable reference-counted byte buffer (clones share the allocation).

use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Creates a buffer from a static slice (copied; the real crate borrows).
    pub fn from_static(b: &'static [u8]) -> Bytes {
        Bytes(Arc::from(b))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies a sub-range out into a new buffer.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes(Arc::from(&self.0[start..end]))
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Bytes {
        Bytes(Arc::from(b))
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.0.iter().map(|&b| serde::Value::UInt(b as u64)).collect())
    }
}

impl<'de> serde::Deserialize<'de> for Bytes {
    fn from_value(v: &serde::Value) -> Result<Bytes, serde::Error> {
        let bytes = <Vec<u8> as serde::Deserialize>::from_value(v)?;
        Ok(Bytes::from(bytes))
    }
}
