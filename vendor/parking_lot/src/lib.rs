//! Offline drop-in subset of `parking_lot`: `RwLock`/`Mutex` with the
//! no-poisoning, guard-returning API, implemented over `std::sync`.

/// Reader-writer lock; `read`/`write` never return poisoning errors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `t`.
    pub fn new(t: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

/// Mutual-exclusion lock; `lock` never returns a poisoning error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `t`.
    pub fn new(t: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}
