//! Offline drop-in subset of `criterion`.
//!
//! Provides just enough API for the workspace's `[[bench]]` targets to
//! compile and run without the registry. Each benchmark body executes a
//! few timed iterations and prints a one-line mean — a smoke run, not a
//! statistical harness.

use std::time::Instant;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one("", id, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for compatibility; the smoke runner ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&self.name, id, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, f: &mut F) {
    let mut b = Bencher { iters: 0, elapsed: std::time::Duration::ZERO };
    f(&mut b);
    let mean_us = if b.iters > 0 {
        b.elapsed.as_secs_f64() * 1e6 / b.iters as f64
    } else {
        0.0
    };
    if group.is_empty() {
        println!("bench {id}: {mean_us:.2} us/iter ({} iters)", b.iters);
    } else {
        println!("bench {group}/{id}: {mean_us:.2} us/iter ({} iters)", b.iters);
    }
}

/// Identifies a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and parameter display form.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Declared throughput of a benchmark body.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Runs the measured closure.
pub struct Bencher {
    iters: u64,
    elapsed: std::time::Duration,
}

impl Bencher {
    /// Times a few iterations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }
}

/// Declares a bench group entry point compatible with criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
