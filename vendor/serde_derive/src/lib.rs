//! Offline drop-in subset of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! value-tree traits in the companion `serde` stub, with no dependency on
//! `syn`/`quote`: the item's token stream is parsed by hand into a small
//! shape description and code is generated as text.
//!
//! Supported shapes (everything this workspace derives on):
//! named-field structs, tuple/newtype structs, unit structs, fieldless
//! enums, and data-carrying enums — externally tagged by default or
//! internally tagged via `#[serde(tag = "...")]`, with optional
//! `#[serde(rename_all = "lowercase" | "snake_case" | "UPPERCASE")]`.
//! Generic type parameters are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c).parse().expect("generated Deserialize impl parses")
}

// ---- shape description ----------------------------------------------------

struct Container {
    name: String,
    /// `#[serde(tag = "...")]`: internal tagging for enums.
    tag: Option<String>,
    /// `#[serde(rename_all = "...")]`: applied to enum variant names.
    rename_all: Option<String>,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with the given arity (1 = newtype).
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum with its variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

// ---- parsing --------------------------------------------------------------

fn parse_container(input: TokenStream) -> Container {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut tag = None;
    let mut rename_all = None;

    // Leading attributes and visibility.
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    parse_serde_attr(g.stream(), &mut tag, &mut rename_all);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let item_kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive stub: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive stub: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive stub: generic type `{name}` is not supported");
        }
    }

    let kind = match item_kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => panic!("serde derive stub: unsupported struct body: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive stub: unsupported enum body: {other:?}"),
        },
        other => panic!("serde derive stub: unsupported item kind `{other}`"),
    };

    Container { name, tag, rename_all, kind }
}

/// Extracts `tag`/`rename_all` from the inside of a `#[...]` attribute if it
/// is a `serde(...)` attribute; ignores everything else (docs, other attrs).
fn parse_serde_attr(attr: TokenStream, tag: &mut Option<String>, rename_all: &mut Option<String>) {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                if let TokenTree::Ident(key) = &inner[j] {
                    let key = key.to_string();
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (inner.get(j + 1), inner.get(j + 2))
                    {
                        if eq.as_char() == '=' {
                            let val = strip_quotes(&lit.to_string());
                            match key.as_str() {
                                "tag" => *tag = Some(val),
                                "rename_all" => *rename_all = Some(val),
                                _ => {}
                            }
                            j += 3;
                            continue;
                        }
                    }
                }
                j += 1;
            }
        }
        _ => {}
    }
}

fn strip_quotes(s: &str) -> String {
    s.trim_matches('"').to_string()
}

/// Parses `{ field: Type, ... }` bodies into field names, skipping
/// attributes and visibility, and tracking `<...>` depth so commas inside
/// generic types don't split fields.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '#' {
                i += 2; // '#' + bracket group
            } else {
                break;
            }
        }
        // Skip visibility.
        if let Some(TokenTree::Ident(id)) = toks.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let Some(TokenTree::Ident(name)) = toks.get(i) else { break };
        fields.push(name.to_string());
        i += 1;
        // Expect ':' then consume the type up to a top-level ','.
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ':' {
                i += 1;
            }
        }
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts fields of a tuple struct/variant body `(TypeA, TypeB, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_any = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    // Tolerate a trailing comma.
    if let Some(TokenTree::Punct(p)) = toks.last() {
        if p.as_char() == ',' && saw_any {
            count -= 1;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(name)) = toks.get(i) else { break };
        let name = name.to_string();
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip to the ',' separating variants (covers `= disc`, which serde
        // would ignore anyway).
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- renaming -------------------------------------------------------------

fn rename(name: &str, style: Option<&str>) -> String {
    match style {
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        _ => name.to_string(),
    }
}

// ---- codegen --------------------------------------------------------------

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::borrow::Cow::Borrowed(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let style = c.rename_all.as_deref();
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_ser_variant(name, v, c.tag.as_deref(), style))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_ser_variant(name: &str, v: &Variant, tag: Option<&str>, style: Option<&str>) -> String {
    let vn = &v.name;
    let wire = rename(vn, style);
    let key = |s: &str| format!("::std::borrow::Cow::Borrowed(\"{s}\")");
    match (&v.fields, tag) {
        (VariantFields::Unit, None) => {
            format!("{name}::{vn} => ::serde::Value::Str({}),", key(&wire))
        }
        (VariantFields::Unit, Some(t)) => format!(
            "{name}::{vn} => ::serde::Value::Object(vec![({}, ::serde::Value::Str({}))]),",
            key(t),
            key(&wire)
        ),
        (VariantFields::Named(fields), tag) => {
            let binds = fields.join(", ");
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({}, ::serde::Serialize::to_value({f}))", key(f)))
                .collect();
            match tag {
                Some(t) => format!(
                    "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                     ({}, ::serde::Value::Str({})), {}]),",
                    key(t),
                    key(&wire),
                    pairs.join(", ")
                ),
                None => format!(
                    "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![({}, \
                     ::serde::Value::Object(vec![{}]))]),",
                    key(&wire),
                    pairs.join(", ")
                ),
            }
        }
        (VariantFields::Tuple(n), None) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(__x0)".to_string()
            } else {
                let items: Vec<String> =
                    binds.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "{name}::{vn}({}) => ::serde::Value::Object(vec![({}, {inner})]),",
                binds.join(", "),
                key(&wire)
            )
        }
        (VariantFields::Tuple(_), Some(_)) => {
            panic!("serde derive stub: tuple variant `{vn}` cannot be internally tagged")
        }
    }
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: ::serde::field(__o, \"{f}\")?")).collect();
            format!(
                "let __o = __v.as_object().ok_or_else(|| \
                 ::serde::Error::msg(\"{name}: expected object\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                         __a.get({i}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::Error::msg(\"{name}: expected array\"))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Unit => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => gen_de_enum(name, variants, c.tag.as_deref(), c.rename_all.as_deref()),
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn gen_de_enum(name: &str, variants: &[Variant], tag: Option<&str>, style: Option<&str>) -> String {
    match tag {
        Some(t) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let wire = rename(&v.name, style);
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("\"{wire}\" => ::std::result::Result::Ok({name}::{vn}),")
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(__o, \"{f}\")?"))
                                .collect();
                            format!(
                                "\"{wire}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                        VariantFields::Tuple(_) => panic!(
                            "serde derive stub: tuple variant `{vn}` cannot be internally tagged"
                        ),
                    }
                })
                .collect();
            format!(
                "let __o = __v.as_object().ok_or_else(|| \
                 ::serde::Error::msg(\"{name}: expected object\"))?;\n\
                 let __tag = __v.get(\"{t}\").and_then(|x| x.as_str()).ok_or_else(|| \
                 ::serde::Error::msg(\"{name}: missing `{t}` tag\"))?;\n\
                 match __tag {{ {} _ => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"{name}: unknown variant `{{__tag}}`\"))) }}",
                arms.join(" ")
            )
        }
        None => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{}\" => return ::std::result::Result::Ok({name}::{}),",
                        rename(&v.name, style),
                        v.name
                    )
                })
                .collect();
            let keyed_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let wire = rename(&v.name, style);
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("\"{wire}\" => ::std::result::Result::Ok({name}::{vn}),")
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(__fields, \"{f}\")?"))
                                .collect();
                            format!(
                                "\"{wire}\" => {{ let __fields = __inner.as_object()\
                                 .ok_or_else(|| ::serde::Error::msg(\"{name}::{vn}: expected \
                                 object\"))?; ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                        VariantFields::Tuple(1) => format!(
                            "\"{wire}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        ),
                        VariantFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         __a.get({i}).unwrap_or(&::serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{wire}\" => {{ let __a = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::msg(\"{name}::{vn}: expected array\"))?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{ {} _ => return ::std::result::Result::Err(\
                 ::serde::Error::msg(format!(\"{name}: unknown variant `{{__s}}`\"))) }}\n\
                 }}\n\
                 let __o = __v.as_object().ok_or_else(|| \
                 ::serde::Error::msg(\"{name}: expected string or object\"))?;\n\
                 let (__k, __inner) = __o.first().ok_or_else(|| \
                 ::serde::Error::msg(\"{name}: empty object\"))?;\n\
                 match __k.as_ref() {{ {} _ => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"{name}: unknown variant `{{__k}}`\"))) }}",
                unit_arms.join(" "),
                keyed_arms.join(" ")
            )
        }
    }
}
