//! Offline drop-in subset of `serde_json`: JSON text on top of the `serde`
//! stub's [`Value`] tree.

pub use serde::Value;

/// JSON encode/decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().encode_json())
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(value.to_value().encode_json().into_bytes())
}

/// Parses JSON text into `T`.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let v = Value::parse_json(s).map_err(Error)?;
    Ok(T::from_value(&v)?)
}

/// Parses JSON bytes into `T`.
pub fn from_slice<T: for<'de> serde::Deserialize<'de>>(b: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(b).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}
