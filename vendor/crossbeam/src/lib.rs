//! Offline drop-in subset of `crossbeam`: an unbounded MPMC channel built
//! on `Mutex` + `Condvar`, with crossbeam's disconnect semantics (both
//! halves clonable; `recv` fails only when the buffer is drained and all
//! senders are gone).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { buf: VecDeque::new(), senders: 1, receivers: 1 }),
            cv: Condvar::new(),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    /// The sending half; clonable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half; clonable (MPMC).
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Returned when sending into a channel with no receivers left.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Returned by `recv` when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Returned by `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends a message; fails iff every receiver has been dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(t));
            }
            st.buf.push_back(t);
            drop(st);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(t) = st.buf.pop_front() {
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.cv.wait(st).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(t) = st.buf.pop_front() {
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.0.cv.wait_timeout(st, deadline - now).unwrap();
                st = guard;
                if res.timed_out() && st.buf.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            if let Some(t) = st.buf.pop_front() {
                return Ok(t);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterates until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u32>();
            let r = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
