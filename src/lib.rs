//! # OpenNF — coordinated control of NF state and network forwarding state
//!
//! A from-scratch Rust reproduction of *OpenNF: Enabling Innovation in
//! Network Function Control* (Gember-Jacobson et al., SIGCOMM 2014).
//!
//! OpenNF is a control plane that lets applications reallocate packet
//! processing across network function (NF) instances **quickly and
//! safely**: internal NF state moves/copies/shares in lockstep with
//! forwarding-state updates, with selectable guarantees (loss-freedom,
//! order preservation, eventual/strong/strict consistency).
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`packet`] | `opennf-packet` | packets, flows, OpenFlow-like filters |
//! | [`sim`] | `opennf-sim` | deterministic discrete-event kernel |
//! | [`net`] | `opennf-net` | priority flow tables, trace recorder |
//! | [`nf`] | `opennf-nf` | state taxonomy, southbound API, events |
//! | [`nfs`] | `opennf-nfs` | IDS, asset monitor, caching proxy, NAT, RE |
//! | [`control`] | `opennf-controller` | the controller: move/copy/share, guarantees, scenarios |
//! | [`apps`] | `opennf-apps` | load balancing, failover, remote processing |
//! | [`baselines`] | `opennf-baselines` | Split/Merge, VM replication, no-rebalance |
//! | [`trace`] | `opennf-trace` | synthetic workload generators |
//! | [`rt`] | `opennf-rt` | threaded runtime with the JSON southbound protocol |
//! | [`util`] | `opennf-util` | MD5, LZ compression, statistics |
//!
//! ## Quickstart
//!
//! ```
//! use opennf::prelude::*;
//!
//! // Two PRADS-like monitors behind one switch; 50 flows at 2500 pps.
//! let mut s = ScenarioBuilder::new()
//!     .nf("m1", Box::new(opennf::nfs::AssetMonitor::new()))
//!     .nf("m2", Box::new(opennf::nfs::AssetMonitor::new()))
//!     .host(opennf::trace::steady_flows(50, 2_500, Dur::millis(400), 1))
//!     .route(0, Filter::any(), 0)
//!     .build();
//! let (src, dst) = (s.instances[0], s.instances[1]);
//!
//! // Loss-free, parallelized, early-release move of everything at t=100ms.
//! s.issue_at(Dur::millis(100), Command::Move {
//!     src, dst,
//!     filter: Filter::any(),
//!     scope: ScopeSet::per_flow(),
//!     props: MoveProps::lf_pl_er(),
//! });
//! s.run_to_completion();
//!
//! // The oracle checks the §5.1 guarantee from the run's logs.
//! let report = s.oracle().check();
//! assert!(report.is_loss_free());
//! ```

pub use opennf_apps as apps;
pub use opennf_baselines as baselines;
pub use opennf_controller as control;
pub use opennf_net as net;
pub use opennf_nf as nf;
pub use opennf_nfs as nfs;
pub use opennf_packet as packet;
pub use opennf_rt as rt;
pub use opennf_sim as sim;
pub use opennf_trace as trace;
pub use opennf_util as util;

/// The most commonly used items, one `use` away.
pub mod prelude {
    pub use opennf_controller::{
        Command, ConsistencyLevel, ControlApp, MoveProps, MoveVariant, NetConfig, OpConfig,
        OpOutcome, OpReport, Scenario, ScenarioBuilder, ScopeSet,
    };
    pub use opennf_nf::{Chunk, EventAction, NetworkFunction, Scope};
    pub use opennf_packet::{ConnKey, Filter, FlowId, FlowKey, Ipv4Prefix, Packet, Proto, TcpFlags};
    pub use opennf_sim::{Dur, FaultKind, FaultPlan, NodeId, Time};
}
