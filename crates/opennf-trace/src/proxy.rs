//! The Table 1 proxy workload: "We generate 100 requests (drawn from a
//! logarithmic distribution) for 40 unique URLs (objects are 0.5–4 MB in
//! size) from each of two clients at a rate of 5 requests/second."

use std::net::Ipv4Addr;

use opennf_packet::{FlowKey, Packet, TcpFlags};
use opennf_sim::{Dur, SimRng};

use crate::{merge_schedules, TimedPacket};

/// Configuration for [`proxy_workload`].
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Clients issuing requests.
    pub clients: Vec<Ipv4Addr>,
    /// Requests per client.
    pub requests_per_client: u32,
    /// Unique URLs.
    pub urls: u32,
    /// Object size range (bytes).
    pub size_range: (u64, u64),
    /// Request rate per client (requests/second).
    pub rate: f64,
    /// Proxy address requests are sent to.
    pub proxy: Ipv4Addr,
    /// Gap between credit packets (ns): how fast each transfer drains.
    /// 20 ms/credit ≈ 26 Mbps per transfer, so big objects stay in
    /// progress for hundreds of ms — in-flight transfers are the point of
    /// Table 1.
    pub credit_gap_ns: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            clients: vec![Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)],
            requests_per_client: 100,
            urls: 40,
            size_range: (512 * 1024, 4 * 1024 * 1024),
            rate: 5.0,
            proxy: Ipv4Addr::new(10, 9, 9, 9),
            credit_gap_ns: 20_000_000,
            seed: 17,
        }
    }
}

/// Deterministic size for URL index `u` within the configured range.
pub fn object_size(cfg: &ProxyConfig, u: u32) -> u64 {
    let (lo, hi) = cfg.size_range;
    let mut x = 0x243F6A88u64 ^ (u as u64).wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    lo + x % (hi - lo).max(1)
}

/// The URL string for index `u` (embeds the object size, which the proxy
/// parses).
pub fn url_of(cfg: &ProxyConfig, u: u32) -> String {
    format!("/obj{u}?size={}", object_size(cfg, u))
}

/// Draws a URL index from a log-ish (Zipf-like, s=1) popularity
/// distribution over `0..urls`.
fn draw_url(rng: &mut SimRng, urls: u32) -> u32 {
    // Inverse-CDF Zipf(s=1) via the harmonic sum.
    let h: f64 = (1..=urls).map(|k| 1.0 / k as f64).sum();
    let target = rng.f64() * h;
    let mut acc = 0.0;
    for k in 1..=urls {
        acc += 1.0 / k as f64;
        if acc >= target {
            return k - 1;
        }
    }
    urls - 1
}

/// Renders one request transaction: request packet, credit packets until
/// the object is fully delivered (64 KiB per credit, matching the proxy's
/// window), FIN.
fn render_request(
    cfg: &ProxyConfig,
    client: Ipv4Addr,
    port: u16,
    url_idx: u32,
    start_ns: u64,
) -> Vec<TimedPacket> {
    const WINDOW: u64 = 64 * 1024;
    let k = FlowKey::tcp(client, port, cfg.proxy, 3128);
    let size = object_size(cfg, url_idx);
    let credits = size.div_ceil(WINDOW);
    let mut out = Vec::with_capacity(credits as usize + 2);
    let mut t = start_ns;
    let req = format!("GET {} HTTP/1.1\r\nHost: origin\r\n\r\n", url_of(cfg, url_idx));
    out.push((
        t,
        Packet::builder(0, k)
            .flags(TcpFlags::PSH.union(TcpFlags::ACK))
            .payload(req.into_bytes())
            .build(),
    ));
    for _ in 0..credits {
        t += cfg.credit_gap_ns;
        out.push((t, Packet::builder(0, k).flags(TcpFlags::ACK).build()));
    }
    t += cfg.credit_gap_ns;
    out.push((t, Packet::builder(0, k).flags(TcpFlags::FIN.union(TcpFlags::ACK)).build()));
    out
}

/// Generates the full workload. Returns per-client schedules merged into
/// one, plus the per-request `(client, url_idx, start_ns)` list for
/// assertions.
pub fn proxy_workload(cfg: &ProxyConfig) -> (Vec<TimedPacket>, Vec<(Ipv4Addr, u32, u64)>) {
    let mut rng = SimRng::new(cfg.seed);
    let gap = Dur::secs_f64(1.0 / cfg.rate).as_nanos();
    let mut parts = Vec::new();
    let mut requests = Vec::new();
    for (ci, client) in cfg.clients.iter().enumerate() {
        for r in 0..cfg.requests_per_client {
            let url_idx = draw_url(&mut rng, cfg.urls);
            let start = r as u64 * gap + (ci as u64 * gap / cfg.clients.len().max(1) as u64);
            let port = 10_000 + (ci as u16) * 10_000 + r as u16;
            parts.push(render_request(cfg, *client, port, url_idx, start));
            requests.push((*client, url_idx, start));
        }
    }
    (merge_schedules(parts), requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape() {
        let cfg = ProxyConfig { requests_per_client: 10, ..ProxyConfig::default() };
        let (sched, reqs) = proxy_workload(&cfg);
        assert_eq!(reqs.len(), 20);
        // Requests appear as GET packets.
        let gets = sched.iter().filter(|(_, p)| p.payload.starts_with(b"GET ")).count();
        assert_eq!(gets, 20);
        // Sorted and uid-ascending.
        assert!(sched.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1.uid < w[1].1.uid));
    }

    #[test]
    fn sizes_in_range_and_deterministic() {
        let cfg = ProxyConfig::default();
        for u in 0..40 {
            let s = object_size(&cfg, u);
            assert!((512 * 1024..4 * 1024 * 1024).contains(&s), "url {u}: {s}");
            assert_eq!(s, object_size(&cfg, u));
        }
    }

    #[test]
    fn url_popularity_is_skewed() {
        let cfg = ProxyConfig { requests_per_client: 500, ..ProxyConfig::default() };
        let (_, reqs) = proxy_workload(&cfg);
        let mut counts = vec![0usize; 40];
        for (_, u, _) in &reqs {
            counts[*u as usize] += 1;
        }
        let popular = counts[0] + counts[1] + counts[2];
        let tail: usize = counts[30..].iter().sum();
        assert!(popular > tail, "zipf head ({popular}) should beat tail ({tail})");
        // All URLs requested at least once with 1000 draws over 40 URLs.
        assert!(counts.iter().filter(|c| **c > 0).count() >= 35);
    }

    #[test]
    fn credits_cover_object_size() {
        let cfg = ProxyConfig::default();
        let pkts = render_request(&cfg, "10.0.0.1".parse().unwrap(), 10_000, 0, 0);
        let credits = pkts.iter().filter(|(_, p)| p.payload.is_empty() && !p.is_teardown()).count();
        let size = object_size(&cfg, 0);
        assert_eq!(credits as u64, size.div_ceil(64 * 1024));
    }
}
