//! University-to-cloud style traces: HTTP sessions from local clients to
//! cloud servers, plus port scans, with heavy-tailed flow durations.

use std::net::Ipv4Addr;

use opennf_packet::{FlowKey, Packet, TcpFlags};
use opennf_sim::{Dur, SimRng};

use crate::http::{malware_body, malware_signatures, HttpFlowSpec};
use crate::{merge_schedules, TimedPacket};

/// Configuration for [`univ_cloud`].
#[derive(Debug, Clone)]
pub struct UnivCloudConfig {
    /// Concurrent HTTP flows to synthesize.
    pub flows: u32,
    /// Aggregate packet rate to target (packets/second).
    pub pps: u64,
    /// Trace duration.
    pub duration: Dur,
    /// Number of local /24 subnets under 10.0.0.0/16.
    pub subnets: u8,
    /// Fraction of flows whose response body is a known-malware sample.
    pub malware_fraction: f64,
    /// Fraction of flows with an outdated browser User-Agent.
    pub outdated_ua_fraction: f64,
    /// Fraction of flows on port 443 (opaque to the HTTP analyzer) — the
    /// "other" traffic class of §8.4's rebalancing experiment.
    pub https_fraction: f64,
    /// Number of external scanners probing local hosts.
    pub scanners: u8,
    /// Distinct ports each scanner probes.
    pub scan_ports: u16,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for UnivCloudConfig {
    fn default() -> Self {
        UnivCloudConfig {
            flows: 500,
            pps: 2_500,
            duration: Dur::secs(2),
            subnets: 4,
            malware_fraction: 0.02,
            outdated_ua_fraction: 0.05,
            https_fraction: 0.0,
            scanners: 0,
            scan_ports: 0,
            seed: 42,
        }
    }
}

/// A generated trace.
pub struct Trace {
    /// The timed packet schedule (sorted, uids ascending).
    pub packets: Vec<TimedPacket>,
    /// MD5 signatures of the malware bodies embedded in the trace.
    pub signatures: Vec<String>,
    /// Number of HTTP flows.
    pub flows: u32,
    /// Number of flows carrying malware.
    pub malware_flows: u32,
    /// Number of flows with outdated browsers.
    pub outdated_flows: u32,
}

/// Local client address: subnet `s`, host `h`.
pub fn local_client(s: u8, h: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, s, h.max(1))
}

/// Cloud server address for flow `i`.
pub fn cloud_server(i: u32) -> Ipv4Addr {
    Ipv4Addr::new(93, 184, (i / 200) as u8 + 1, (i % 200) as u8 + 1)
}

/// Synthesizes the trace.
pub fn univ_cloud(cfg: &UnivCloudConfig) -> Trace {
    let mut rng = SimRng::new(cfg.seed);
    let dur_ns = cfg.duration.as_nanos();
    let total_packets = (cfg.pps as f64 * cfg.duration.as_secs_f64()) as u64;
    let pkts_per_flow = (total_packets / cfg.flows.max(1) as u64).max(8);

    let mut parts: Vec<Vec<TimedPacket>> = Vec::new();
    let mut malware_flows = 0;
    let mut outdated_flows = 0;
    let n_sigs = 8u32;
    let sig_len = 2_048usize;

    for i in 0..cfg.flows {
        let subnet = (i % cfg.subnets.max(1) as u32) as u8;
        let host = (rng.below(200) + 1) as u8;
        let is_malware = rng.chance(cfg.malware_fraction);
        let is_outdated = rng.chance(cfg.outdated_ua_fraction);
        if is_malware {
            malware_flows += 1;
        }
        if is_outdated {
            outdated_flows += 1;
        }
        // Size the body so the flow renders to ≈pkts_per_flow packets with
        // ~6 non-segment packets and ~700 B segments.
        let segment = 700usize;
        let seg_count = pkts_per_flow.saturating_sub(6).max(2) as usize;
        let body = if is_malware {
            malware_body(rng.below(n_sigs as u64) as u32, sig_len)
        } else {
            let len = (seg_count * segment).saturating_sub(64).max(128);
            vec![0x55u8; len]
        };
        let is_https = rng.chance(cfg.https_fraction) && !is_malware;
        let start_ns = rng.below((dur_ns / 4).max(1));
        // Pace the flow across most of the remaining trace.
        let pkt_count = 6 + body.len().div_ceil(segment) as u64;
        let span = dur_ns - start_ns;
        let gap_ns = (span * 3 / 4 / pkt_count.max(1)).max(1_000);
        let spec = HttpFlowSpec {
            client: local_client(subnet, host),
            client_port: 2_000 + (i % 60_000) as u16,
            server_port: if is_https { 443 } else { 80 },
            server: cloud_server(i),
            url: format!("/obj{i}"),
            user_agent: if is_outdated {
                "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)".to_string()
            } else {
                "Mozilla/5.0 (X11; Linux) Firefox/115".to_string()
            },
            body,
            segment,
            start_ns,
            gap_ns,
        };
        parts.push(spec.render());
    }

    // Scanners: external hosts SYN-probing many ports on local hosts.
    for s in 0..cfg.scanners {
        let scanner = Ipv4Addr::new(66, 66, 0, s + 1);
        let mut pkts = Vec::new();
        for port in 0..cfg.scan_ports {
            let t = rng.below(dur_ns.max(1));
            let victim = local_client((port % cfg.subnets.max(1) as u16) as u8, 9);
            let key = FlowKey::tcp(scanner, 40_000 + port, victim, 1 + port);
            pkts.push((t, Packet::builder(0, key).flags(TcpFlags::SYN).seq(7).build()));
        }
        pkts.sort_by_key(|(t, _)| *t);
        parts.push(pkts);
    }

    Trace {
        packets: merge_schedules(parts),
        signatures: malware_signatures(n_sigs, sig_len),
        flows: cfg.flows,
        malware_flows,
        outdated_flows,
    }
}

/// A uniform, steady packet stream across `flows` flows at `pps` for
/// `duration` — the Figure 10/11/13 driver. Every flow opens with a SYN.
pub fn steady_flows(flows: u32, pps: u64, duration: Dur, seed: u64) -> Vec<TimedPacket> {
    let mut rng = SimRng::new(seed);
    let gap_ns = 1_000_000_000 / pps.max(1);
    let total = duration.as_nanos() / gap_ns;
    let mut out = Vec::with_capacity(total as usize);
    for i in 0..total {
        let flow = (i % flows as u64) as u32;
        let key = FlowKey::tcp(
            local_client((flow % 200 / 50) as u8, (flow % 200 + 1) as u8),
            2_000 + (flow / 200) as u16 * 250 + (flow % 250) as u16,
            cloud_server(flow),
            80,
        );
        let flags = if i < flows as u64 { TcpFlags::SYN } else { TcpFlags::ACK };
        let payload_len = 100 + rng.below(80) as usize;
        let pkt = Packet::builder(0, key)
            .flags(flags)
            .seq(i as u32)
            .payload(vec![0x5Au8; payload_len])
            .build();
        out.push((i * gap_ns, pkt));
    }
    merge_schedules(vec![out])
}

/// Like [`steady_flows`], but all flows are *established first*: every
/// SYN is emitted in an initial 100 ms warm-up burst, then data packets
/// run at `pps`. This mirrors the §8.1.1 methodology ("Once it has created
/// state for 500 flows … we move"): the number of per-flow states a move
/// covers must not depend on the data rate under test.
pub fn warmed_flows(flows: u32, pps: u64, duration: Dur, seed: u64) -> Vec<TimedPacket> {
    let mut rng = SimRng::new(seed);
    let warmup_ns = 100_000_000u64;
    let mut out = Vec::new();
    let syn_gap = warmup_ns / flows.max(1) as u64;
    let key_of = |flow: u32| {
        FlowKey::tcp(
            local_client((flow % 200 / 50) as u8, (flow % 200 + 1) as u8),
            2_000 + (flow / 200) as u16 * 250 + (flow % 250) as u16,
            cloud_server(flow),
            80,
        )
    };
    for flow in 0..flows {
        let pkt = Packet::builder(0, key_of(flow)).flags(TcpFlags::SYN).seq(flow).build();
        out.push((flow as u64 * syn_gap, pkt));
    }
    let gap_ns = 1_000_000_000 / pps.max(1);
    let total = duration.as_nanos().saturating_sub(warmup_ns) / gap_ns;
    for i in 0..total {
        let flow = (i % flows as u64) as u32;
        let payload_len = 100 + rng.below(80) as usize;
        let pkt = Packet::builder(0, key_of(flow))
            .flags(TcpFlags::ACK)
            .seq(i as u32)
            .payload(vec![0x5Au8; payload_len])
            .build();
        out.push((warmup_ns + i * gap_ns, pkt));
    }
    merge_schedules(vec![out])
}

/// Heavy-tailed flow durations (seconds): bounded Pareto calibrated so
/// roughly 9 % of flows exceed 25 minutes (§8.4) while the median stays at
/// tens of seconds — the property that makes "wait for flows to die"
/// scale-in take tens of minutes.
pub fn heavy_tail_durations(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::new(seed);
    // P(X > x) = (xm/x)^alpha; want P(X > 1500 s) ≈ 0.09 with xm = 10 s:
    // alpha = ln(0.09)/ln(10/1500) ≈ 0.48.
    let xm = 10.0;
    let alpha = (0.09f64).ln() / (xm / 1500.0f64).ln();
    (0..n).map(|_| rng.pareto(xm, alpha).min(4.0 * 3600.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_flows_hits_rate_and_flow_count() {
        let sched = steady_flows(250, 2_500, Dur::secs(1), 1);
        assert_eq!(sched.len(), 2_500);
        let distinct: std::collections::HashSet<_> =
            sched.iter().map(|(_, p)| p.conn_key()).collect();
        assert_eq!(distinct.len(), 250);
        // uids ascend with time.
        assert!(sched.windows(2).all(|w| w[0].1.uid < w[1].1.uid && w[0].0 <= w[1].0));
        // SYN-first per flow.
        let syns = sched.iter().filter(|(_, p)| p.is_syn()).count();
        assert_eq!(syns, 250);
    }

    #[test]
    fn univ_cloud_embeds_detectable_malware() {
        let cfg = UnivCloudConfig {
            flows: 50,
            pps: 2_000,
            duration: Dur::secs(1),
            malware_fraction: 0.3,
            ..UnivCloudConfig::default()
        };
        let trace = univ_cloud(&cfg);
        assert!(trace.malware_flows > 0);
        assert_eq!(trace.signatures.len(), 8);
        assert!(!trace.packets.is_empty());
        // Deterministic for the seed.
        let again = univ_cloud(&cfg);
        assert_eq!(trace.packets.len(), again.packets.len());
        assert_eq!(trace.malware_flows, again.malware_flows);
    }

    #[test]
    fn univ_cloud_total_rate_is_close() {
        let cfg = UnivCloudConfig {
            flows: 200,
            pps: 2_500,
            duration: Dur::secs(2),
            ..UnivCloudConfig::default()
        };
        let trace = univ_cloud(&cfg);
        let got_pps = trace.packets.len() as f64 / 2.0;
        assert!(
            (got_pps - 2_500.0).abs() / 2_500.0 < 0.35,
            "target 2500 pps, got {got_pps}"
        );
    }

    #[test]
    fn scanners_probe_many_ports() {
        let cfg = UnivCloudConfig {
            flows: 5,
            scanners: 2,
            scan_ports: 30,
            duration: Dur::secs(1),
            ..UnivCloudConfig::default()
        };
        let trace = univ_cloud(&cfg);
        let scan_pkts = trace
            .packets
            .iter()
            .filter(|(_, p)| p.src_ip().octets()[0] == 66)
            .count();
        assert_eq!(scan_pkts, 60);
    }

    #[test]
    fn duration_tail_matches_paper() {
        let durs = heavy_tail_durations(40_000, 3);
        let over_25min = durs.iter().filter(|d| **d > 1_500.0).count() as f64 / durs.len() as f64;
        assert!((over_25min - 0.09).abs() < 0.02, "9% > 25 min, got {over_25min}");
        let over_10min = durs.iter().filter(|d| **d > 600.0).count() as f64 / durs.len() as f64;
        assert!(over_10min > over_25min);
    }
}
