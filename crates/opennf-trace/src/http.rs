//! Structured HTTP flow synthesis: the packet sequences the IDS's
//! reassembly pipeline and the proxy's transfer logic consume.

use std::net::Ipv4Addr;

use opennf_packet::{FlowKey, Packet, TcpFlags};

use crate::TimedPacket;

/// Specification of one synthetic HTTP session.
#[derive(Debug, Clone)]
pub struct HttpFlowSpec {
    /// Client address.
    pub client: Ipv4Addr,
    /// Client ephemeral port.
    pub client_port: u16,
    /// Server address.
    pub server: Ipv4Addr,
    /// Server port (80 = analyzed HTTP; anything else is opaque to the
    /// IDS's HTTP analyzer).
    pub server_port: u16,
    /// Requested URL.
    pub url: String,
    /// User-Agent header value.
    pub user_agent: String,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Response segment size (bytes of body per packet).
    pub segment: usize,
    /// Flow start time (ns).
    pub start_ns: u64,
    /// Gap between consecutive packets of this flow (ns).
    pub gap_ns: u64,
}

impl HttpFlowSpec {
    /// Renders the session into timed packets: SYN, SYN+ACK, ACK, request,
    /// response segments, FIN exchange. Placeholder uids (caller merges).
    pub fn render(&self) -> Vec<TimedPacket> {
        let k = FlowKey::tcp(self.client, self.client_port, self.server, self.server_port);
        let mut t = self.start_ns;
        let mut out: Vec<TimedPacket> = Vec::new();
        let mut push = |t: &mut u64, pkt: Packet, gap: u64| {
            out.push((*t, pkt));
            *t += gap;
        };
        let g = self.gap_ns.max(1);
        push(&mut t, Packet::builder(0, k).flags(TcpFlags::SYN).seq(1).build(), g);
        push(
            &mut t,
            Packet::builder(0, k.reversed()).flags(TcpFlags::SYN_ACK).seq(1).build(),
            g,
        );
        push(&mut t, Packet::builder(0, k).flags(TcpFlags::ACK).seq(2).build(), g);
        let req = format!(
            "GET {} HTTP/1.1\r\nHost: {}\r\nUser-Agent: {}\r\n\r\n",
            self.url, self.server, self.user_agent
        );
        push(
            &mut t,
            Packet::builder(0, k)
                .flags(TcpFlags::PSH.union(TcpFlags::ACK))
                .seq(2)
                .payload(req.into_bytes())
                .build(),
            g,
        );
        let mut resp =
            format!("HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n", self.body.len()).into_bytes();
        resp.extend_from_slice(&self.body);
        let mut seq = 1u32;
        for chunk in resp.chunks(self.segment.max(1)) {
            push(
                &mut t,
                Packet::builder(0, k.reversed())
                    .flags(TcpFlags::ACK)
                    .seq(seq)
                    .payload(chunk.to_vec())
                    .build(),
                g,
            );
            seq = seq.wrapping_add(chunk.len() as u32);
        }
        push(&mut t, Packet::builder(0, k).flags(TcpFlags::FIN.union(TcpFlags::ACK)).build(), g);
        push(
            &mut t,
            Packet::builder(0, k.reversed()).flags(TcpFlags::FIN.union(TcpFlags::ACK)).build(),
            g,
        );
        out
    }

    /// Number of packets this spec renders to.
    pub fn packet_count(&self) -> usize {
        let head = format!("HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n", self.body.len()).len();
        let resp_len = head + self.body.len();
        let segments = resp_len.div_ceil(self.segment.max(1));
        4 + segments + 2
    }
}

/// Deterministic synthetic body for malware sample `id` (the IDS signature
/// set is the md5 of these).
pub fn malware_body(id: u32, len: usize) -> Vec<u8> {
    let mut x = 0x9E3779B9u32 ^ id;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x as u8
        })
        .collect()
}

/// The md5 hex signatures of malware bodies `0..n` of length `len`.
pub fn malware_signatures(n: u32, len: usize) -> Vec<String> {
    (0..n).map(|id| opennf_util_md5(&malware_body(id, len))).collect()
}

fn opennf_util_md5(data: &[u8]) -> String {
    opennf_util::Md5::hex(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> HttpFlowSpec {
        HttpFlowSpec {
            client: "10.0.0.1".parse().unwrap(),
            client_port: 4000,
            server: "93.184.216.34".parse().unwrap(),
                server_port: 80,
            url: "/index".into(),
            user_agent: "Firefox".into(),
            body: vec![0x41; 300],
            segment: 100,
            start_ns: 1_000,
            gap_ns: 500,
        }
    }

    #[test]
    fn renders_expected_structure() {
        let s = spec();
        let pkts = s.render();
        assert_eq!(pkts.len(), s.packet_count());
        assert!(pkts[0].1.is_syn());
        assert!(pkts[1].1.is_syn_ack());
        assert!(pkts.last().unwrap().1.is_teardown());
        // Times ascend with the configured gap.
        assert!(pkts.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(pkts[0].0, 1_000);
        assert_eq!(pkts[1].0, 1_500);
    }

    #[test]
    fn malware_bodies_are_deterministic_and_distinct() {
        assert_eq!(malware_body(1, 64), malware_body(1, 64));
        assert_ne!(malware_body(1, 64), malware_body(2, 64));
        let sigs = malware_signatures(3, 64);
        assert_eq!(sigs.len(), 3);
        assert_eq!(sigs[0], opennf_util::Md5::hex(&malware_body(0, 64)));
    }

    #[test]
    fn reassembled_body_matches_signature() {
        // Concatenating the rendered response segments' payload after the
        // header yields exactly the body (what the IDS digests).
        let mut s = spec();
        s.body = malware_body(7, 257);
        let pkts = s.render();
        let mut resp = Vec::new();
        for (_, p) in &pkts {
            if p.key.src_port == 80 && !p.payload.is_empty() {
                resp.extend_from_slice(&p.payload);
            }
        }
        let head_end = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        assert_eq!(&resp[head_end..], &s.body[..]);
    }
}
