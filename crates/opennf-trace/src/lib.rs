//! Synthetic workload generation.
//!
//! The paper replays captured university-to-cloud \[24\] and data-center \[19\]
//! traces plus synthetic workloads. Those captures are not available, so
//! this crate synthesizes traces that reproduce the aggregate properties
//! the evaluation depends on:
//!
//! * a configurable steady packet rate across a configurable number of
//!   concurrent flows (Figures 10, 11, 13 sweep these);
//! * structured HTTP sessions — handshake, request with User-Agent,
//!   `Content-Length`-framed response in segments, teardown — so the IDS's
//!   reassembly/digest pipeline does real work, with controllable
//!   fractions of malware payloads and outdated browsers;
//! * a heavy-tailed flow-duration distribution (§8.4 cites ≈9 % of HTTP
//!   flows longer than 25 min; §2.1 cites 40 % of cellular flows longer
//!   than 10 min) — [`heavy_tail_durations`];
//! * port scans from external hosts (the IDS's multi-flow counters);
//! * the Table 1 proxy workload: two clients × 100 requests over 40 URLs
//!   with log-distributed popularity and 0.5–4 MB objects at 5 req/s.
//!
//! All generators are seeded and deterministic; packet uids are unique and
//! ascend with emission time.

pub mod http;
pub mod proxy;
pub mod univ;

pub use http::HttpFlowSpec;
pub use proxy::{proxy_workload, ProxyConfig};
pub use univ::{heavy_tail_durations, steady_flows, univ_cloud, warmed_flows, Trace, UnivCloudConfig};

use opennf_packet::Packet;

/// A timed schedule entry: `(virtual time ns, packet)`.
pub type TimedPacket = (u64, Packet);

/// Merges several sorted schedules into one, re-assigning uids so they
/// ascend with time (generators hand out placeholder uids).
pub fn merge_schedules(mut parts: Vec<Vec<TimedPacket>>) -> Vec<TimedPacket> {
    let mut all: Vec<TimedPacket> = parts.drain(..).flatten().collect();
    all.sort_by_key(|(t, p)| (*t, p.uid));
    for (i, (_, p)) in all.iter_mut().enumerate() {
        p.uid = i as u64 + 1;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_packet::FlowKey;

    fn pkt(uid: u64) -> Packet {
        Packet::builder(
            uid,
            FlowKey::tcp("10.0.0.1".parse().unwrap(), 1, "1.1.1.1".parse().unwrap(), 80),
        )
        .build()
    }

    #[test]
    fn merge_sorts_and_renumbers() {
        let a = vec![(100, pkt(7)), (300, pkt(9))];
        let b = vec![(200, pkt(3))];
        let m = merge_schedules(vec![a, b]);
        assert_eq!(m.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![100, 200, 300]);
        assert_eq!(m.iter().map(|(_, p)| p.uid).collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
