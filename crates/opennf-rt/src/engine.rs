//! The concurrent northbound op engine: k simultaneous ops on disjoint
//! scopes progress in parallel on one dispatch thread.
//!
//! The synchronous controller drove one move at a time, blocking on every
//! southbound reply. Here each op is a per-op state machine ([`OpTask`])
//! and a single event-dispatch loop routes replies and events to
//! whichever op issued them: while one op waits for a put ack its
//! neighbours keep streaming, so aggregate throughput scales with the
//! number of disjoint src/dst pairs.
//!
//! Three op kinds are first-class ([`opennf_sched::OpClass`]):
//!
//! * **move** — the loss-free move (§5.1.1): exclusive on both endpoints,
//!   destructive at the source (copy-then-delete), events armed and
//!   replayed to the destination, route flipped at the end.
//! * **copy** — non-destructive state clone: shared-read at the source
//!   (several copies may stream from one NF concurrently, bounded by the
//!   scheduler's stream cap), exclusive at the destination, no event
//!   arming, no delete, no route change.
//! * **share** — state replication setup: shared-read at the source,
//!   events armed for the initial sync and replayed back *to the source*
//!   once the replica is seeded, so no update raised during the sync is
//!   lost.
//!
//! Admission is owned by the pluggable scheduler ([`opennf_sched`]):
//! every dispatch iteration the pending set is described to the active
//! policy (FIFO by default — byte-identical to the engine's original
//! hard-coded sweep), which picks the next op whose endpoint locks admit
//! it. The scheduler also accounts observed export bytes per source into
//! a token bucket, and the engine consults the resulting backpressure
//! signal ([`opennf_sched::OpScheduler::put_window`]) instead of a
//! hard-coded put window: a source whose bucket runs dry degrades to
//! stop-and-wait puts and strictly serialized streams until it refills.
//!
//! Within one op the state transfer is *pipelined*: the source streams
//! its export as bounded [`WireReply::ChunkBatch`] frames
//! ([`WireCall::GetPerflowChunked`]), and the engine forwards each batch
//! to the destination as a `putPerflow` while later batches are still
//! being serialized at the source. The per-op window of outstanding puts
//! gives double buffering without unbounded queueing; batches beyond the
//! window wait in a backlog.
//!
//! Every phase transition is journaled through the same
//! [`JournalPhase`] ledger the simulator's controller keeps, so a
//! controller crash between any two transitions recovers through
//! [`RtController::recover`] exactly like the sim one: fail-forward once
//! every chunk is confirmed at the destination, roll back before that,
//! always with explicit loss accounting — for all three op kinds.
//!
//! Telemetry under interleaving: each op opens a root span named for its
//! kind with *no* stack parent and parents its canonical phase spans
//! (`move.export` … `move.fwd_update`, `copy.export`/`copy.import`,
//! `share.arm`/`share.init_sync`) under that root explicitly —
//! thread-local stack attribution would staple one op's phases under
//! another's root the moment two ops interleave. Oracles group with
//! [`opennf_telemetry::Telemetry::span_sequences_by_parent`].

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use opennf_controller::{JournalPhase, OpId, OpReport};
use opennf_nf::Chunk;
use opennf_packet::{Filter, FlowId};
use opennf_sched::{OpClass, PendingOp};
use opennf_telemetry::SpanId;

use crate::controller::{MoveStats, OpResidue, Recv, RtController};
use crate::error::RtError;
use crate::wire::{WireAction, WireCall, WireEvent, WireMsg, WireReply};

/// Chunks per streamed export batch (one `ChunkBatch` frame, one put).
pub(crate) const STREAM_BATCH: usize = 64;

/// Dispatch-loop poll granularity: how long one `recv` blocks before the
/// loop re-checks per-op deadlines.
const POLL: Duration = Duration::from_millis(5);

/// Hard ceiling on the post-flip straggler drain.
const FWD_DRAIN: Duration = Duration::from_millis(200);

/// Early exit: no straggler for this long means the flip has settled
/// (keeps single-move latency at the synchronous controller's level).
const FWD_IDLE: Duration = Duration::from_millis(20);

/// One requested op: state matching `filter` is moved, copied, or shared
/// from worker `src` to worker `dst`.
#[derive(Debug, Clone, Copy)]
pub struct OpSpec {
    /// Source worker index.
    pub src: usize,
    /// Destination worker index.
    pub dst: usize,
    /// Which flows the op covers.
    pub filter: Filter,
    /// What kind of op this is (admission locking and the state machine
    /// both key off it).
    pub kind: OpClass,
}

impl OpSpec {
    /// A loss-free move of `filter` from `src` to `dst`.
    pub fn mv(src: usize, dst: usize, filter: Filter) -> Self {
        OpSpec { src, dst, filter, kind: OpClass::Move }
    }

    /// A non-destructive copy of `filter` from `src` to `dst`.
    pub fn copy(src: usize, dst: usize, filter: Filter) -> Self {
        OpSpec { src, dst, filter, kind: OpClass::Copy }
    }

    /// A share (replication setup) of `filter` from `src` to `dst`.
    pub fn share(src: usize, dst: usize, filter: Filter) -> Self {
        OpSpec { src, dst, filter, kind: OpClass::Share }
    }
}

/// Endpoint occupancy under the reader/writer admission rule: a move
/// writes both endpoints; a copy or share reads its source (several may
/// stream from one NF at once, up to the scheduler's per-source stream
/// cap) and writes its destination.
#[derive(Default)]
struct Locks {
    writers: HashSet<usize>,
    readers: HashMap<usize, usize>,
}

impl Locks {
    fn readers_at(&self, w: usize) -> usize {
        self.readers.get(&w).copied().unwrap_or(0)
    }

    /// Whether `p` can start now, given at most `stream_cap` concurrent
    /// readers on its source.
    fn admits(&self, p: &PendingOp, stream_cap: usize) -> bool {
        let dst_free = !self.writers.contains(&p.dst) && self.readers_at(p.dst) == 0;
        match p.class {
            OpClass::Move => {
                !self.writers.contains(&p.src) && self.readers_at(p.src) == 0 && dst_free
            }
            OpClass::Copy | OpClass::Share => {
                !self.writers.contains(&p.src)
                    && self.readers_at(p.src) < stream_cap.max(1)
                    && dst_free
            }
        }
    }

    fn acquire(&mut self, s: &OpSpec) {
        match s.kind {
            OpClass::Move => {
                self.writers.insert(s.src);
                self.writers.insert(s.dst);
            }
            OpClass::Copy | OpClass::Share => {
                *self.readers.entry(s.src).or_insert(0) += 1;
                self.writers.insert(s.dst);
            }
        }
    }

    fn release(&mut self, s: &OpSpec) {
        match s.kind {
            OpClass::Move => {
                self.writers.remove(&s.src);
                self.writers.remove(&s.dst);
            }
            OpClass::Copy | OpClass::Share => {
                if let Some(n) = self.readers.get_mut(&s.src) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        self.readers.remove(&s.src);
                    }
                }
                self.writers.remove(&s.dst);
            }
        }
    }
}

/// Where one op's state machine stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    /// Waiting for admission: the scheduler has not picked it yet (an
    /// endpoint is busy, or the policy favours another op).
    Pending,
    /// `enableEvents(drop)` in flight at the source (move/share only).
    WaitEnable,
    /// Chunk batches streaming out of the source, puts pipelined into
    /// the destination (stays here until the last batch *and* every put
    /// ack have landed).
    Streaming,
    /// All state confirmed at the destination; `delPerflow` in flight at
    /// the source (move's copy-then-delete release).
    Deleting,
    /// Route flipped; draining straggler events raised by packets that
    /// were already queued toward the source (move only).
    FwdWait,
    /// Fenced `disableEvents` in flight; collecting the teardown flush.
    Settling,
    /// Abort: fenced delete of already-shipped flows in flight at the
    /// destination (FIFO behind any in-flight puts, so it covers them).
    AbortPurge,
    /// Abort: fenced `disableEvents` in flight at the source.
    AbortSettling,
    /// Terminal (result recorded).
    Done,
}

/// One in-flight op: everything the dispatch loop needs to route a
/// reply or event back to the right op and advance it.
struct OpTask {
    spec: OpSpec,
    op: OpId,
    report: OpReport,
    st: St,
    /// Per-op root span; the canonical phase spans parent under it
    /// explicitly.
    root: Option<SpanId>,
    /// The currently open phase span.
    phase: Option<SpanId>,
    /// When the spec entered the engine's admission queue (queue wait =
    /// admission time − this).
    submitted: Instant,
    /// The same instant on the telemetry clock (what the scheduler's
    /// deadline policy compares).
    submitted_ns: u64,
    /// Submission index: the total order admission ties break on.
    seq: u64,
    start: Instant,
    /// Watchdog for the outstanding request(s); reset on every ack/batch.
    deadline: Instant,
    /// Correlation id awaited in WaitEnable/Deleting/Settling/Abort*.
    wait_id: u64,
    /// The streamed export's correlation id (all its batches share it).
    get_id: u64,
    /// Next expected batch seq — a gap means the channel lost a batch.
    next_seq: u64,
    /// The `last` batch has arrived.
    export_done: bool,
    /// Outstanding put correlation ids (≤ the scheduler's put window).
    put_ids: HashSet<u64>,
    /// Batches received but not yet put (window full).
    backlog: VecDeque<Vec<Chunk>>,
    /// Every flow id exported so far (the delete list).
    flow_ids: Vec<FlowId>,
    chunks: usize,
    bytes: usize,
    replayed: usize,
    flipped: bool,
    fwd_deadline: Instant,
    last_event: Instant,
    duration: Duration,
    err: Option<RtError>,
}

impl OpTask {
    /// Ops in these states own their source's event stream. Copies never
    /// arm events, so they never own one (see `route_event`).
    fn active(&self) -> bool {
        !matches!(self.st, St::Pending | St::Done)
    }

    /// This task as the scheduler sees it.
    fn pending(&self) -> PendingOp {
        PendingOp {
            op: self.op.0,
            src: self.spec.src,
            dst: self.spec.dst,
            class: self.spec.kind,
            armed_ns: self.submitted_ns,
            seq: self.seq,
        }
    }
}

impl RtController {
    /// Runs `specs` concurrently, one [`OpTask`] per spec, and returns
    /// each op's outcome in spec order. Which pending op starts when an
    /// endpoint frees up is the active scheduling policy's call
    /// ([`RtController::set_sched_policy`]); under the default FIFO
    /// policy ops admit in submission order, exactly as before the
    /// scheduler existed. Each op journals its phase boundaries, so a
    /// crash mid-batch leaves a recoverable ledger
    /// ([`RtController::recover`]) for moves, copies, and shares alike.
    pub fn run_ops(&mut self, specs: Vec<OpSpec>) -> Vec<Result<MoveStats, RtError>> {
        self.last_abort_lost.clear();
        let now = Instant::now();
        let now_ns = self.tel.now_ns();
        let mut tasks: Vec<OpTask> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let op = self.mint_op();
                self.tel.event(
                    "engine.op_submitted",
                    Some(format!(
                        "op={} kind={} src={} dst={}",
                        op.0,
                        spec.kind.name(),
                        spec.src,
                        spec.dst
                    )),
                );
                // The queue-depth gauge moves on submission too, not just
                // inside the admission sweep, so a burst of submits is
                // visible even before anything is admitted.
                self.tel.gauge_set("engine.queue_depth", i as u64 + 1);
                let kind_str = match spec.kind {
                    OpClass::Move => "move[LF PL]",
                    OpClass::Copy => "copy",
                    OpClass::Share => "share",
                };
                OpTask {
                    spec,
                    op,
                    report: OpReport::new(op, kind_str.into(), self.tel.now_ns()),
                    st: St::Pending,
                    root: None,
                    phase: None,
                    submitted: now,
                    submitted_ns: now_ns,
                    seq: i as u64,
                    start: now,
                    deadline: now,
                    wait_id: 0,
                    get_id: 0,
                    next_seq: 0,
                    export_done: false,
                    put_ids: HashSet::new(),
                    backlog: VecDeque::new(),
                    flow_ids: Vec::new(),
                    chunks: 0,
                    bytes: 0,
                    replayed: 0,
                    flipped: false,
                    fwd_deadline: now,
                    last_event: now,
                    duration: Duration::ZERO,
                    err: None,
                }
            })
            .collect();
        let mut locks = Locks::default();
        let mut by_req: HashMap<u64, usize> = HashMap::new();
        let mut last_depth = u64::MAX;

        loop {
            if self.is_crashed() {
                // The "process" died at a journal append: in-flight work
                // dies where it stands — no teardown, no further sends
                // (checked before admission, so no new op starts either).
                // Journal + residue (the struct fields) survive for
                // recover(); events already live in the residue.
                for t in tasks.iter_mut() {
                    if t.st != St::Done {
                        t.err = Some(RtError::CtrlCrashed);
                        self.set_st(t, St::Done);
                    }
                }
                break;
            }
            // Admission: the scheduler picks from the pending set until
            // nothing feasible remains. The feasibility predicate is the
            // engine's lock state plus the per-source stream cap the
            // bandwidth accountant allows right now.
            loop {
                let now_ns = self.tel.now_ns();
                let mut idxs: Vec<usize> = Vec::new();
                let mut pending: Vec<PendingOp> = Vec::new();
                for (ti, t) in tasks.iter().enumerate() {
                    if t.st == St::Pending {
                        idxs.push(ti);
                        pending.push(t.pending());
                    }
                }
                if pending.is_empty() {
                    break;
                }
                let mut caps: HashMap<usize, usize> = HashMap::new();
                for p in &pending {
                    caps.entry(p.src).or_insert_with(|| self.sched.stream_cap(p.src, now_ns));
                }
                let picked = {
                    let locks = &locks;
                    let caps = &caps;
                    self.sched.pick(&pending, &mut |p| {
                        locks.admits(p, caps.get(&p.src).copied().unwrap_or(1))
                    })
                };
                let Some(pi) = picked else { break };
                let ti = idxs[pi];
                let p = pending[pi];
                locks.acquire(&tasks[ti].spec);
                self.sched.on_admitted(&p);
                if self.tel.enabled() {
                    let wait = tasks[ti].submitted.elapsed().as_nanos() as u64;
                    let depth = pending.len() as u64 - 1;
                    self.tel.observe(&format!("engine.admission_wait.w{}", p.src), wait);
                    self.tel.event(
                        "engine.op_admitted",
                        Some(format!("op={} wait_ns={wait} depth={depth}", p.op)),
                    );
                    self.tel.event(
                        "sched.decision",
                        Some(format!(
                            "op={} policy={} class={} src={}",
                            p.op,
                            self.sched.policy().name(),
                            p.class.name(),
                            p.src
                        )),
                    );
                }
                if let Err(e) = self.start_op(&mut tasks[ti], ti, &mut by_req) {
                    self.fail_op(&mut tasks[ti], ti, e, &mut by_req, &mut locks);
                }
            }
            // Queue-depth gauge: ops still waiting for a free endpoint
            // after this admission sweep (set only on change — the loop
            // spins once per message).
            let depth = tasks.iter().filter(|t| t.st == St::Pending).count() as u64;
            if depth != last_depth {
                self.tel.gauge_set("engine.queue_depth", depth);
                last_depth = depth;
            }
            if tasks.iter().all(|t| t.st == St::Done) {
                break;
            }
            match self.recv_msg(POLL) {
                Recv::Msg(WireMsg::Response { id, reply }) => {
                    // Unmapped ids are stale (a failed op's still-streaming
                    // batches, a pre-crash echo): ignored by correlation.
                    if let Some(&ti) = by_req.get(&id) {
                        self.on_reply(&mut tasks, ti, id, reply, &mut by_req, &mut locks);
                    }
                }
                Recv::Msg(WireMsg::Event { worker, ev: WireEvent::NfFailed { reason } }) => {
                    // The NF is gone: every admitted op touching it dies.
                    // Pending ops fail naturally at admission (their first
                    // send returns WorkerGone).
                    for (ti, t) in tasks.iter_mut().enumerate() {
                        let hit =
                            t.active() && (t.spec.src == worker || t.spec.dst == worker);
                        if hit {
                            self.fail_op(
                                t,
                                ti,
                                RtError::NfFailed { worker, reason: reason.clone() },
                                &mut by_req,
                                &mut locks,
                            );
                        }
                    }
                }
                Recv::Msg(WireMsg::Event { worker, ev }) => {
                    self.c_events_pumped.fetch_add(1, Ordering::Relaxed);
                    self.route_event(&mut tasks, worker, ev);
                }
                Recv::Msg(_) | Recv::Bad(_) | Recv::Timeout => {}
                Recv::Disconnected => {
                    // Every worker is gone: nothing left to send teardown
                    // to — finalize all survivors as aborted.
                    for t in tasks.iter_mut() {
                        if t.st != St::Done {
                            t.err.get_or_insert(RtError::ChannelClosed);
                            self.finalize_abort(t, &mut locks);
                        }
                    }
                }
            }
            self.tick(&mut tasks, &mut by_req, &mut locks);
        }

        tasks
            .into_iter()
            .map(|t| match t.err {
                Some(e) => Err(e),
                None => Ok(MoveStats {
                    chunks: t.chunks,
                    bytes: t.bytes,
                    events_replayed: t.replayed,
                    duration: t.duration,
                }),
            })
            .collect()
    }

    /// [`RtController::run_ops`] restricted by name to moves — kept for
    /// callers from before the engine grew copy and share admission.
    pub fn run_moves(&mut self, specs: Vec<OpSpec>) -> Vec<Result<MoveStats, RtError>> {
        self.run_ops(specs)
    }

    /// Applies a state transition, recording it as a point event
    /// (`engine.op_state`, with the op id) so the trace analyzer can
    /// replay each op's lifecycle with timestamps.
    fn set_st(&self, t: &mut OpTask, st: St) {
        if self.tel.enabled() && t.st != st {
            self.tel.event(
                "engine.op_state",
                Some(format!("op={} from={:?} to={:?}", t.op.0, t.st, st)),
            );
        }
        t.st = st;
    }

    /// Admits one op: opens its root span and takes the kind's first
    /// step. Moves and shares arm the drop filter at the source (Armed
    /// lands on the enable ack); copies never arm events, so they journal
    /// Armed immediately and go straight to streaming.
    fn start_op(
        &mut self,
        t: &mut OpTask,
        ti: usize,
        by_req: &mut HashMap<u64, usize>,
    ) -> Result<(), RtError> {
        t.start = Instant::now();
        t.report.start_ns = self.tel.now_ns();
        self.residue.insert(
            t.op.0,
            OpResidue::new(t.spec.src, t.spec.dst, t.spec.filter, t.spec.kind),
        );
        let root = self.tel.begin_linked_arg(
            0,
            t.spec.kind.name(),
            Some(format!("op={} src={} dst={}", t.op.0, t.spec.src, t.spec.dst)),
        );
        t.root = Some(root);
        match t.spec.kind {
            OpClass::Move | OpClass::Share => {
                let phase = if t.spec.kind == OpClass::Move { "move.export" } else { "share.arm" };
                let sp = self.tel.begin_under(root, phase);
                t.phase = Some(sp);
                let id = self.call_linked(
                    t.spec.src,
                    WireCall::EnableEvents { filter: t.spec.filter, action: WireAction::Drop },
                    sp.raw(),
                )?;
                t.wait_id = id;
                by_req.insert(id, ti);
                t.deadline = Instant::now() + self.reply_timeout;
                self.set_st(t, St::WaitEnable);
            }
            OpClass::Copy => {
                if self.jlog(t.op, JournalPhase::Armed, &t.report) {
                    return Ok(());
                }
                let sp = self.tel.begin_under(root, "copy.export");
                t.phase = Some(sp);
                let id = self.call_linked(
                    t.spec.src,
                    WireCall::GetPerflowChunked { filter: t.spec.filter, batch: STREAM_BATCH },
                    sp.raw(),
                )?;
                t.get_id = id;
                by_req.insert(id, ti);
                t.deadline = Instant::now() + self.reply_timeout;
                self.set_st(t, St::Streaming);
            }
        }
        Ok(())
    }

    /// Advances op `ti` on a correlated reply.
    fn on_reply(
        &mut self,
        tasks: &mut [OpTask],
        ti: usize,
        id: u64,
        reply: WireReply,
        by_req: &mut HashMap<u64, usize>,
        locks: &mut Locks,
    ) {
        if self.is_crashed() {
            return;
        }
        if let WireReply::Error { message } = reply {
            self.fail_op(&mut tasks[ti], ti, RtError::Wire(message), by_req, locks);
            return;
        }
        let t = &mut tasks[ti];
        match t.st {
            St::WaitEnable if id == t.wait_id => {
                by_req.remove(&id);
                if self.jlog(t.op, JournalPhase::Armed, &t.report) {
                    return;
                }
                if t.spec.kind == OpClass::Share {
                    // The arm round-trip is its own canonical phase for a
                    // share; the initial sync streams under the next one.
                    if let Some(sp) = t.phase.take() {
                        self.tel.end(sp);
                    }
                    let root = t.root.expect("root span open");
                    t.phase = Some(self.tel.begin_under(root, "share.init_sync"));
                }
                // Stream the export: batches flow back under one id while
                // the puts below pipeline them into the destination.
                let stream = t.phase.expect("stream span open");
                match self.call_linked(
                    t.spec.src,
                    WireCall::GetPerflowChunked {
                        filter: t.spec.filter,
                        batch: STREAM_BATCH,
                    },
                    stream.raw(),
                ) {
                    Ok(gid) => {
                        t.get_id = gid;
                        by_req.insert(gid, ti);
                        t.deadline = Instant::now() + self.reply_timeout;
                        self.set_st(t, St::Streaming);
                    }
                    Err(e) => self.fail_op(&mut tasks[ti], ti, e, by_req, locks),
                }
            }
            St::Streaming if id == t.get_id => {
                let WireReply::ChunkBatch { seq, last, chunks } = reply else {
                    let e = RtError::Wire(format!("unexpected stream reply for {id}"));
                    self.fail_op(&mut tasks[ti], ti, e, by_req, locks);
                    return;
                };
                // The channel is FIFO, so a seq gap means a batch was
                // dropped on the wire: the export is no longer known to be
                // complete — abort rather than move a silent subset.
                if seq != t.next_seq {
                    let e = RtError::Wire(format!(
                        "chunk batch gap at src {}: got seq {seq}, expected {}",
                        t.spec.src, t.next_seq
                    ));
                    self.fail_op(&mut tasks[ti], ti, e, by_req, locks);
                    return;
                }
                t.next_seq += 1;
                t.deadline = Instant::now() + self.reply_timeout;
                let batch_bytes = chunks.iter().map(|c| c.len()).sum::<usize>();
                t.chunks += chunks.len();
                t.bytes += batch_bytes;
                // Feed the bandwidth accountant: this is what eventually
                // dries the source's bucket and tightens its put window
                // and stream cap.
                let now_ns = self.tel.now_ns();
                self.sched.on_bytes(t.spec.src, batch_bytes as u64, now_ns);
                if self.tel.enabled() {
                    let toks = self.sched.tokens(t.spec.src, now_ns);
                    self.tel.gauge_set(&format!("sched.tokens.w{}", t.spec.src), toks);
                }
                t.flow_ids.extend(chunks.iter().map(|c| c.flow_id));
                if let Some(res) = self.residue.get_mut(&t.op.0) {
                    res.put_flows.extend(chunks.iter().map(|c| c.flow_id));
                }
                if !chunks.is_empty() {
                    t.backlog.push_back(chunks);
                }
                if last {
                    by_req.remove(&id);
                    t.export_done = true;
                    match t.spec.kind {
                        OpClass::Move => {
                            if let Some(sp) = t.phase.take() {
                                self.tel.end(sp);
                            }
                            let root = t.root.expect("root span open");
                            t.phase = Some(self.tel.begin_under(root, "move.transfer"));
                        }
                        OpClass::Copy => {
                            if let Some(sp) = t.phase.take() {
                                self.tel.end(sp);
                            }
                            let root = t.root.expect("root span open");
                            t.phase = Some(self.tel.begin_under(root, "copy.import"));
                        }
                        // share.init_sync spans the whole stream + put
                        // pipeline; it stays open until the sync settles.
                        OpClass::Share => {}
                    }
                    if self.jlog(t.op, JournalPhase::ExportDone, &t.report) {
                        return;
                    }
                }
                if let Err(e) = self.pump_puts(&mut tasks[ti], ti, by_req) {
                    self.fail_op(&mut tasks[ti], ti, e, by_req, locks);
                    return;
                }
                self.maybe_finish_transfer(tasks, ti, by_req, locks);
            }
            St::Streaming if t.put_ids.contains(&id) => {
                t.put_ids.remove(&id);
                by_req.remove(&id);
                t.deadline = Instant::now() + self.reply_timeout;
                if let Err(e) = self.pump_puts(&mut tasks[ti], ti, by_req) {
                    self.fail_op(&mut tasks[ti], ti, e, by_req, locks);
                    return;
                }
                self.maybe_finish_transfer(tasks, ti, by_req, locks);
            }
            St::Deleting if id == t.wait_id => {
                by_req.remove(&id);
                if let Some(sp) = t.phase.take() {
                    self.tel.end(sp);
                }
                if self.jlog(t.op, JournalPhase::Imported, &t.report) {
                    return;
                }
                // Flush: replay everything buffered so far to the
                // destination, then flip the route.
                let root = t.root.expect("root span open");
                let sp = self.tel.begin_under(root, "move.flush");
                let events = self
                    .residue
                    .get_mut(&t.op.0)
                    .map(|r| std::mem::take(&mut r.events))
                    .unwrap_or_default();
                match self.replay_now(t.spec.dst, events.into_iter()) {
                    Ok(n) => t.replayed += n,
                    Err(e) => {
                        self.tel.end(sp);
                        self.fail_op(&mut tasks[ti], ti, e, by_req, locks);
                        return;
                    }
                }
                self.tel.end(sp);
                if self.jlog(t.op, JournalPhase::Flushed, &t.report) {
                    return;
                }
                t.phase = Some(self.tel.begin_under(root, "move.fwd_update"));
                self.router.install(10, t.spec.filter, t.spec.dst);
                t.flipped = true;
                let now = Instant::now();
                t.fwd_deadline = now + FWD_DRAIN;
                t.last_event = now;
                self.set_st(t, St::FwdWait);
            }
            St::Settling if id == t.wait_id => {
                by_req.remove(&id);
                self.finalize_commit(&mut tasks[ti], locks);
            }
            St::AbortPurge if id == t.wait_id => {
                by_req.remove(&id);
                self.abort_settle(&mut tasks[ti], ti, by_req, locks);
            }
            St::AbortSettling if id == t.wait_id => {
                by_req.remove(&id);
                self.finalize_abort(&mut tasks[ti], locks);
            }
            _ => {}
        }
    }

    /// Issues queued put batches up to the backpressure window the
    /// scheduler currently allows for this op's source.
    fn pump_puts(
        &mut self,
        t: &mut OpTask,
        ti: usize,
        by_req: &mut HashMap<u64, usize>,
    ) -> Result<(), RtError> {
        let window = self.sched.put_window(t.spec.src, self.tel.now_ns());
        while t.put_ids.len() < window {
            let Some(chunks) = t.backlog.pop_front() else { break };
            let id = self.call(t.spec.dst, WireCall::PutPerflow { chunks })?;
            t.put_ids.insert(id);
            by_req.insert(id, ti);
            t.deadline = Instant::now() + self.reply_timeout;
        }
        Ok(())
    }

    /// Once the last batch and every put ack are in, the transfer phase is
    /// over: journal `Transferred` and take the kind's release step. A
    /// move deletes at the source (copy-then-delete — the source keeps
    /// its copy until this point, so any earlier abort rolls back without
    /// loss); a copy is simply done; a share tears its sync filter down
    /// and replays the buffered updates back to the source.
    fn maybe_finish_transfer(
        &mut self,
        tasks: &mut [OpTask],
        ti: usize,
        by_req: &mut HashMap<u64, usize>,
        locks: &mut Locks,
    ) {
        let t = &mut tasks[ti];
        if !(t.export_done && t.put_ids.is_empty() && t.backlog.is_empty()) {
            return;
        }
        if let Some(sp) = t.phase.take() {
            self.tel.end(sp);
        }
        t.report.chunks = t.chunks;
        t.report.bytes = t.bytes as u64;
        if self.jlog(t.op, JournalPhase::Transferred, &t.report) {
            return;
        }
        match t.spec.kind {
            OpClass::Move => {
                let root = t.root.expect("root span open");
                t.phase = Some(self.tel.begin_under(root, "move.import"));
                // An empty delete still round-trips: it doubles as the
                // barrier proving the source processed everything up to
                // here.
                match self.call(t.spec.src, WireCall::DelPerflow { flow_ids: t.flow_ids.clone() })
                {
                    Ok(id) => {
                        t.wait_id = id;
                        by_req.insert(id, ti);
                        t.deadline = Instant::now() + self.reply_timeout;
                        self.set_st(t, St::Deleting);
                    }
                    Err(e) => self.fail_op(&mut tasks[ti], ti, e, by_req, locks),
                }
            }
            OpClass::Copy => {
                // Non-destructive and never armed: the clone is complete
                // the moment every put acked.
                self.finalize_commit(&mut tasks[ti], locks);
            }
            OpClass::Share => {
                // The replica is seeded; tear the sync filter down. The
                // updates it buffered replay to the *source* at the ack,
                // so nothing raised during the sync is lost.
                let (src, filter) = (t.spec.src, t.spec.filter);
                match self.send_fenced_mgmt(src, WireCall::DisableEvents { filter }) {
                    Ok(id) => {
                        t.wait_id = id;
                        by_req.insert(id, ti);
                        t.deadline = Instant::now() + self.reply_timeout;
                        self.set_st(t, St::Settling);
                    }
                    Err(_) => self.finalize_commit(&mut tasks[ti], locks),
                }
            }
        }
    }

    /// Hands an event to the op that owns the raising worker, or routes
    /// it onward when no op does (a straggler from an op that already
    /// finished). Copies never arm events, so they never own a stream —
    /// an event raised at a copy's source belongs to no one and routes
    /// on.
    fn route_event(&mut self, tasks: &mut [OpTask], worker: usize, ev: WireEvent) {
        if self.is_crashed() {
            return;
        }
        let now = Instant::now();
        if let Some(t) = tasks
            .iter_mut()
            .find(|t| t.active() && t.spec.src == worker && t.spec.kind != OpClass::Copy)
        {
            t.last_event = now;
            if t.st == St::FwdWait {
                // Past the flush: stragglers replay straight to the
                // destination instead of queueing for another flush.
                let uid = match &ev {
                    WireEvent::PacketReceived { packet } => Some(packet.uid),
                    _ => None,
                };
                match self.replay_one(t.spec.dst, ev) {
                    Ok(n) => t.replayed += n,
                    Err(_) => {
                        // The destination died under us: the packet is
                        // gone, and the loss is accounted, not silent.
                        if let Some(uid) = uid {
                            self.last_abort_lost.push(uid);
                            t.report.abort_lost.push(uid);
                        }
                    }
                }
            } else {
                t.report.events_buffered += 1;
                if let Some(res) = self.residue.get_mut(&t.op.0) {
                    res.events.push(ev);
                }
            }
            return;
        }
        // No owner: deliver wherever the rule table points now.
        if let WireEvent::PacketReceived { ref packet } = ev {
            if let Some(w) = self.router.route(packet) {
                let _ = self.replay_one(w, ev);
            }
        }
    }

    /// Time-driven transitions: straggler-drain windows closing and reply
    /// watchdogs firing.
    fn tick(
        &mut self,
        tasks: &mut [OpTask],
        by_req: &mut HashMap<u64, usize>,
        locks: &mut Locks,
    ) {
        if self.is_crashed() {
            return;
        }
        let now = Instant::now();
        for (ti, t) in tasks.iter_mut().enumerate() {
            match t.st {
                St::FwdWait if now >= t.fwd_deadline || now >= t.last_event + FWD_IDLE => {
                    if let Some(sp) = t.phase.take() {
                        self.tel.end(sp);
                    }
                    // Converge: tear the event filter down over the
                    // management channel; whatever the teardown
                    // flushes out replays at the ack.
                    let (src, filter) = (t.spec.src, t.spec.filter);
                    match self.send_fenced_mgmt(src, WireCall::DisableEvents { filter }) {
                        Ok(id) => {
                            t.wait_id = id;
                            by_req.insert(id, ti);
                            t.deadline = now + self.reply_timeout;
                            self.set_st(t, St::Settling);
                        }
                        // The source is gone, so its filter (and any
                        // still-buffered events) died with it; the
                        // destination already holds the state.
                        Err(_) => self.finalize_commit(t, locks),
                    }
                }
                St::WaitEnable | St::Streaming | St::Deleting if now >= t.deadline => {
                    let id = t.wait_id;
                    self.fail_op(t, ti, RtError::Timeout { id }, by_req, locks);
                }
                // Best-effort teardown: a worker that won't ack its purge
                // or disable doesn't pin the op forever.
                St::Settling if now >= t.deadline => {
                    by_req.remove(&t.wait_id);
                    self.finalize_commit(t, locks);
                }
                St::AbortPurge if now >= t.deadline => {
                    by_req.remove(&t.wait_id);
                    self.abort_settle(t, ti, by_req, locks);
                }
                St::AbortSettling if now >= t.deadline => {
                    by_req.remove(&t.wait_id);
                    self.finalize_abort(t, locks);
                }
                _ => {}
            }
        }
    }

    /// Completes an op: replays the teardown flush (to the destination
    /// for a move, back to the source for a share — a copy has none),
    /// journals `Committed`, releases the endpoints.
    fn finalize_commit(&mut self, t: &mut OpTask, locks: &mut Locks) {
        let events = self
            .residue
            .remove(&t.op.0)
            .map(|r| r.events)
            .unwrap_or_default();
        let replay_to = match t.spec.kind {
            OpClass::Move => t.spec.dst,
            OpClass::Copy | OpClass::Share => t.spec.src,
        };
        let (replayed, lost) = self.replay_events_to(replay_to, events);
        t.replayed += replayed;
        t.report.abort_lost.extend(lost.iter().copied());
        self.last_abort_lost.extend(lost);
        t.report.events_released = t.replayed;
        t.report.end_ns = self.tel.now_ns();
        self.jlog(t.op, JournalPhase::Committed, &t.report);
        if let Some(root) = t.root.take() {
            self.tel.end(root);
        }
        t.duration = t.start.elapsed();
        self.set_st(t, St::Done);
        locks.release(&t.spec);
        let done = t.pending();
        self.sched.on_completed(&done);
    }

    /// Starts tearing a failed op down. Pre-release failures first purge
    /// the partial import at the destination — sent on the same link as
    /// the puts, so FIFO ordering makes the delete cover every put still
    /// in flight ahead of it.
    fn fail_op(
        &mut self,
        t: &mut OpTask,
        ti: usize,
        e: RtError,
        by_req: &mut HashMap<u64, usize>,
        locks: &mut Locks,
    ) {
        let abort_ev = match t.spec.kind {
            OpClass::Move => "move.abort",
            OpClass::Copy => "copy.abort",
            OpClass::Share => "share.abort",
        };
        self.tel.event(abort_ev, Some(format!("op={} {e}", t.op.0)));
        if let Some(sp) = t.phase.take() {
            self.tel.end(sp);
        }
        by_req.remove(&t.wait_id);
        by_req.remove(&t.get_id);
        for id in t.put_ids.drain() {
            by_req.remove(&id);
        }
        t.backlog.clear();
        t.err = Some(e);
        let shipped = self
            .residue
            .get(&t.op.0)
            .map(|r| r.put_flows.clone())
            .unwrap_or_default();
        if !t.flipped && !shipped.is_empty() {
            if let Ok(id) = self.call_fenced(t.spec.dst, WireCall::DelPerflow { flow_ids: shipped })
            {
                t.wait_id = id;
                by_req.insert(id, ti);
                t.deadline = Instant::now() + self.reply_timeout;
                self.set_st(t, St::AbortPurge);
                return;
            }
        }
        self.abort_settle(t, ti, by_req, locks);
    }

    /// Abort teardown, step 2: restore a quiescent source (no stale
    /// filter) and collect whatever the teardown flushes out. A copy
    /// never armed a filter, so it skips straight to the finalize.
    fn abort_settle(
        &mut self,
        t: &mut OpTask,
        ti: usize,
        by_req: &mut HashMap<u64, usize>,
        locks: &mut Locks,
    ) {
        if t.spec.kind == OpClass::Copy {
            self.finalize_abort(t, locks);
            return;
        }
        let (src, filter) = (t.spec.src, t.spec.filter);
        match self.send_fenced_mgmt(src, WireCall::DisableEvents { filter }) {
            Ok(id) => {
                t.wait_id = id;
                by_req.insert(id, ti);
                t.deadline = Instant::now() + self.reply_timeout;
                self.set_st(t, St::AbortSettling);
            }
            Err(_) => self.finalize_abort(t, locks),
        }
    }

    /// Abort teardown, step 3: replay buffered events back to wherever
    /// the route points, account every packet that could not be
    /// delivered, journal `Aborted`, release the endpoints.
    fn finalize_abort(&mut self, t: &mut OpTask, locks: &mut Locks) {
        let events = self
            .residue
            .remove(&t.op.0)
            .map(|r| r.events)
            .unwrap_or_default();
        let replay_to = if t.flipped { t.spec.dst } else { t.spec.src };
        let (replayed, lost) = self.replay_events_to(replay_to, events);
        t.replayed += replayed;
        let reason = t.err.as_ref().map(|e| e.to_string()).unwrap_or_else(|| "aborted".into());
        t.report.abort(reason, None);
        t.report.abort_lost.extend(lost.iter().copied());
        self.last_abort_lost.extend(lost);
        t.report.events_released = t.replayed;
        t.report.end_ns = self.tel.now_ns();
        self.jlog(t.op, JournalPhase::Aborted, &t.report);
        if let Some(root) = t.root.take() {
            self.tel.end(root);
        }
        t.duration = t.start.elapsed();
        self.set_st(t, St::Done);
        locks.release(&t.spec);
        let done = t.pending();
        self.sched.on_completed(&done);
    }
}
