//! A threaded in-process OpenNF runtime.
//!
//! The simulator (`opennf-controller`) gives deterministic virtual-time
//! experiments; this crate runs the *same southbound protocol* under real
//! OS-thread concurrency, mirroring the paper's deployment shape (§7):
//!
//! * each NF instance runs on its own thread, wrapping the same
//!   [`opennf_nf::EventedNf`] harness the simulator uses;
//! * "The controller and NFs exchange JSON messages to invoke southbound
//!   functions, provide function results, and send events" — the channel
//!   payloads here are literally JSON strings ([`wire`]);
//! * a software switch ([`router::Router`]) steers generator traffic to
//!   instances through an atomically-updated rule table.
//!
//! The runtime demonstrates that the loss-free move protocol holds under
//! genuine races (threads, not virtual time): packets keep flowing while
//! state moves, and every packet is processed exactly once.

//!
//! Failures are first-class: NF panics are caught inside the worker and
//! reported as [`WireEvent::NfFailed`], channel deaths and reply timeouts
//! surface as typed [`RtError`]s, and the controller never panics because
//! an instance died. The [`faults`] module extends the simulator's seeded
//! [`opennf_util::FaultPlan`] to these channels, so the JSON southbound
//! path can be soak-tested under the same replayable failure schedules as
//! the simulator.

pub mod controller;
pub mod engine;
pub mod error;
pub mod faults;
pub mod router;
pub mod shards;
#[cfg(test)]
pub(crate) mod testutil;
pub mod wire;
pub mod worker;

pub use controller::{MoveStats, RtController};
pub use engine::OpSpec;
pub use error::RtError;
pub use faults::{worker_node, FaultLedger, FaultyChannel, RtFaults, CTRL_NODE, ROUTER_NODE};
pub use router::Router;
pub use shards::{EwMsg, ShardedRt};
pub use wire::{WireCall, WireEvent, WireMsg, WireReply};
pub use worker::{spawn_worker, spawn_worker_faulty, PeerMesh, WorkerHandle};

// The rt controller journals through the same ledger types the simulator's
// controller uses; re-exported so harnesses need only one import path.
pub use opennf_controller::{JournalPhase, JournalRecord, OpJournal, OpReport};

// The scheduling subsystem the engine's admission delegates to;
// re-exported so harnesses can pick a policy without a direct dep.
pub use opennf_sched::{OpClass, SchedConfig, SchedPolicy};
