//! Deterministic channel-fault injection for the threaded runtime.
//!
//! The simulator injects faults at its event queue; the threaded runtime
//! has no queue — just crossbeam channels between the controller, the
//! router (generator threads), and the NF workers. [`FaultyChannel`] wraps
//! the sending side of each of those links and consumes the *same* seeded
//! [`FaultPlan`] the simulator does:
//!
//! * **Node layout** — the plan addresses links by [`NodeId`], using the
//!   simulator's fixed scenario layout: controller = [`CTRL_NODE`] (0),
//!   router/switch = [`ROUTER_NODE`] (1), worker *i* = [`worker_node`]\(i)
//!   (2 + i). A plan written against a two-instance sim scenario therefore
//!   applies verbatim here.
//! * **Virtual time → wall clock** — virtual [`Time`] maps 1:1 onto wall
//!   nanoseconds since the shim was armed ([`RtFaults::now`]): a plan
//!   window `[10 ms, 20 ms)` is the wall-clock interval 10–20 ms into the
//!   run. Rule windows, crash windows, and stall windows all use this
//!   mapping.
//! * **Determinism without a global order** — thread interleaving makes a
//!   global dice stream (what the simulator uses) non-replayable here.
//!   Instead each verdict is a pure function of
//!   `(plan.seed, src, dst, message bytes)`: the message's FNV-1a hash
//!   seeds a private [`SimRng`] stream that rolls once per matching rule,
//!   in plan order — exactly the simulator's rule-matching discipline, but
//!   content-addressed. Re-running a scenario that produces the same
//!   per-link message *set* yields the identical injected-fault ledger,
//!   regardless of interleaving. (The sim's dice stream is different, so
//!   *which* packets a probabilistic rule hits differs between runtimes —
//!   an enumerated divergence; see DESIGN.md "Cross-runtime fault model".)
//! * **Worker kills/restarts** — a `crash(n, t)`/`restart(n, t)` pair is a
//!   reachability window, as in the simulator: messages sent to the node
//!   inside `[crash, restart)` are discarded and recorded as lost; the
//!   process itself keeps its state (a recovered process, not a fresh
//!   one), matching the sim's crash semantics.
//! * **Delays / duplicates / reorders** — shifted copies are handed to a
//!   single *delay pump* thread that redelivers them at their due wall
//!   time. The pump exits once every [`FaultyChannel`] clone is dropped;
//!   [`RtFaults::join_pump`] waits for that (used by shutdown-cleanliness
//!   tests).
//!
//! Every injected fault lands in the shared [`RtFaults`] ledger: a
//! [`FaultEvent`] log plus the packet uids lost and duplicated, which is
//! what the exactly-once-or-accounted oracle consumes.

use std::collections::BinaryHeap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use opennf_telemetry::Telemetry;
use opennf_util::{Dur, FaultEvent, FaultKind, FaultPlan, NodeId, SimRng, Time};
use parking_lot::Mutex;

use crate::wire::{WireEvent, WireMsg};

/// The controller's node id in fault plans (simulator layout).
pub const CTRL_NODE: NodeId = NodeId(0);

/// The router's node id in fault plans (the simulator's switch).
pub const ROUTER_NODE: NodeId = NodeId(1);

/// Worker `i`'s node id in fault plans (the simulator's instance `i`).
pub fn worker_node(i: usize) -> NodeId {
    NodeId(2 + i)
}

/// Everything the shim injected, in injection order. Packet uids are
/// recorded for losses and duplicates so the oracle can excuse them.
#[derive(Debug, Default, Clone)]
pub struct FaultLedger {
    /// Summary of every injected fault.
    pub log: Vec<FaultEvent>,
    /// Uids of data packets that never arrived (drops + crash-window
    /// losses). Non-packet messages (requests/replies) that are dropped
    /// appear in `log` only.
    pub lost_uids: Vec<u64>,
    /// Uids of data packets delivered more than once.
    pub duplicated_uids: Vec<u64>,
}

impl FaultLedger {
    /// Lost uids, sorted and deduplicated (oracle form).
    pub fn lost_sorted(&self) -> Vec<u64> {
        let mut v = self.lost_uids.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Duplicated uids, sorted and deduplicated (oracle form).
    pub fn duplicated_sorted(&self) -> Vec<u64> {
        let mut v = self.duplicated_uids.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// A canonical, interleaving-independent form of the ledger: per-kind
    /// fault counts plus the sorted lost/duplicated uid sets. Two runs of
    /// the same seeded scenario compare equal on this even though their
    /// `log` orders differ.
    pub fn canonical(&self) -> (Vec<(&'static str, usize)>, Vec<u64>, Vec<u64>) {
        let mut counts = [("dropped", 0usize), ("delayed", 0), ("duplicated", 0), ("reordered", 0), ("lost_at_crashed", 0), ("stalled", 0)];
        for ev in &self.log {
            let slot = match ev {
                FaultEvent::Dropped { .. } => 0,
                FaultEvent::Delayed { .. } => 1,
                FaultEvent::Duplicated { .. } => 2,
                FaultEvent::Reordered { .. } => 3,
                FaultEvent::LostAtCrashedNode { .. } => 4,
                FaultEvent::Stalled { .. } => 5,
            };
            counts[slot].1 += 1;
        }
        (counts.to_vec(), self.lost_sorted(), self.duplicated_sorted())
    }
}

/// A delayed redelivery owned by the pump thread. Opaque outside this
/// module — callers only ever hold the `Sender<PumpJob>` end returned by
/// [`RtFaults::arm`].
pub struct PumpJob {
    due: Instant,
    seq: u64,
    target: Sender<String>,
    json: String,
}

impl PartialEq for PumpJob {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for PumpJob {}
impl PartialOrd for PumpJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PumpJob {
    // Reversed: BinaryHeap is a max-heap, we want the soonest job on top.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

fn pump_loop(rx: Receiver<PumpJob>) {
    let mut heap: BinaryHeap<PumpJob> = BinaryHeap::new();
    loop {
        let next_due = heap.peek().map(|j| j.due);
        match next_due {
            None => match rx.recv() {
                Ok(job) => heap.push(job),
                Err(_) => return, // no jobs, no senders: done
            },
            Some(due) => {
                let now = Instant::now();
                if due <= now {
                    let job = heap.pop().expect("peeked");
                    // The target worker may have shut down; that loss is
                    // already accounted (or benign at teardown).
                    let _ = job.target.send(job.json);
                    continue;
                }
                match rx.recv_timeout(due - now) {
                    Ok(job) => heap.push(job),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        // Drain remaining jobs at their due times.
                        while let Some(job) = heap.pop() {
                            let now = Instant::now();
                            if job.due > now {
                                std::thread::sleep(job.due - now);
                            }
                            let _ = job.target.send(job.json);
                        }
                        return;
                    }
                }
            }
        }
    }
}

/// Shared fault-injection state for one threaded run: the plan, the
/// wall-clock epoch, and the ledger.
pub struct RtFaults {
    plan: FaultPlan,
    epoch: Instant,
    ledger: Mutex<FaultLedger>,
    pump_join: Mutex<Option<std::thread::JoinHandle<()>>>,
    pump_seq: Mutex<u64>,
    /// Late-bound telemetry: when set, every injected fault also lands in
    /// the flight recorder as a `fault.*` event (the ledger stays the
    /// source of truth for the oracle).
    tel: OnceLock<Telemetry>,
}

impl RtFaults {
    /// Arms `plan`; virtual `Time::ZERO` is the moment this is called.
    /// Returns the shared state plus the pump-job sender every
    /// [`FaultyChannel`] built from it must hold.
    pub fn arm(plan: FaultPlan) -> (Arc<RtFaults>, Sender<PumpJob>) {
        let (tx, rx) = unbounded();
        let join = std::thread::Builder::new()
            .name("fault-pump".into())
            .spawn(move || pump_loop(rx))
            .expect("spawn fault pump");
        let rt = Arc::new(RtFaults {
            plan,
            epoch: Instant::now(),
            ledger: Mutex::new(FaultLedger::default()),
            pump_join: Mutex::new(Some(join)),
            pump_seq: Mutex::new(0),
            tel: OnceLock::new(),
        });
        (rt, tx)
    }

    /// Attaches a telemetry handle (first call wins): injected faults are
    /// mirrored into its flight recorder from then on.
    pub fn set_telemetry(&self, tel: Telemetry) {
        let _ = self.tel.set(tel);
    }

    fn emit(&self, name: &'static str, arg: String) {
        if let Some(tel) = self.tel.get() {
            tel.event(name, Some(arg));
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Current virtual time: wall nanoseconds since arming, 1:1.
    pub fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_nanos() as u64)
    }

    /// A copy of the ledger as of now.
    pub fn ledger(&self) -> FaultLedger {
        self.ledger.lock().clone()
    }

    /// Waits for the delay pump to exit. Every [`FaultyChannel`] clone
    /// must be dropped first (the pump runs until its job channel
    /// disconnects), so call this after worker shutdown.
    pub fn join_pump(&self) {
        if let Some(j) = self.pump_join.lock().take() {
            let _ = j.join();
        }
    }

    fn next_seq(&self) -> u64 {
        let mut s = self.pump_seq.lock();
        *s += 1;
        *s
    }

    /// Content-addressed dice: one roll per matching rule, in plan order —
    /// the simulator's discipline, but seeded per message so verdicts are
    /// independent of thread interleaving.
    fn verdict(&self, src: NodeId, dst: NodeId, t: Time, json: &str) -> Option<FaultKind> {
        let mut rng = SimRng::new(
            self.plan.seed
                ^ (src.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (dst.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ fnv1a(json.as_bytes()),
        );
        for rule in &self.plan.links {
            if rule.applies(src, dst, t) && rng.below(1000) < rule.per_mille as u64 {
                return Some(rule.kind);
            }
        }
        None
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The uid of the data packet one wire message carries, if any.
fn msg_uid(msg: &WireMsg) -> Option<u64> {
    match msg {
        WireMsg::Packet { packet } => Some(packet.uid),
        WireMsg::Event { ev: WireEvent::PacketReceived { packet }, .. } => Some(packet.uid),
        WireMsg::Event { ev: WireEvent::PacketProcessed { packet }, .. } => Some(packet.uid),
        _ => None,
    }
}

/// The uids of every data packet a channel payload carries. A payload may
/// be a single message or a coalesced frame; a fault hits the whole frame,
/// so every packet inside it must be accounted.
fn packet_uids(json: &str) -> Vec<u64> {
    match crate::wire::decode_frame(json) {
        Ok(msgs) => msgs.iter().filter_map(msg_uid).collect(),
        Err(_) => Vec::new(),
    }
}

/// The sending half of one directed link, with the fault shim applied.
///
/// In passthrough mode (no plan armed) it forwards straight to the
/// underlying crossbeam sender with zero overhead beyond a branch.
#[derive(Clone)]
pub struct FaultyChannel {
    target: Sender<String>,
    shim: Option<LinkShim>,
}

#[derive(Clone)]
struct LinkShim {
    src: NodeId,
    dst: NodeId,
    faults: Arc<RtFaults>,
    pump: Sender<PumpJob>,
}

/// The error a faulty send surfaces when the receiving thread is gone —
/// same shape as crossbeam's `SendError`, minus the payload (it may have
/// been consumed by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkClosed;

impl FaultyChannel {
    /// A shim-free channel: sends go straight through.
    pub fn passthrough(target: Sender<String>) -> Self {
        FaultyChannel { target, shim: None }
    }

    /// Whether a fault plan is armed on this link. Senders that coalesce
    /// messages into frames must not do so across a shimmed link when the
    /// grouping is timing-dependent: verdicts are content-addressed, so a
    /// frame whose composition varies between reruns would make the
    /// injected-fault ledger non-reproducible.
    pub fn is_shimmed(&self) -> bool {
        self.shim.is_some()
    }

    /// Wraps the `src → dst` link with `faults`.
    pub fn shimmed(
        target: Sender<String>,
        src: NodeId,
        dst: NodeId,
        faults: Arc<RtFaults>,
        pump: Sender<PumpJob>,
    ) -> Self {
        FaultyChannel { target, shim: Some(LinkShim { src, dst, faults, pump }) }
    }

    /// Sends a wire message through the link, applying any matching fault.
    pub fn send(&self, msg: &WireMsg) -> Result<(), LinkClosed> {
        self.send_json(msg.to_json())
    }

    /// Sends pre-serialized JSON through the link, applying any matching
    /// fault. `Ok(())` means the message was *consumed* — delivered,
    /// delayed, or injected away (a dropped message is a success from the
    /// sender's point of view, exactly as on a real network).
    pub fn send_json(&self, json: String) -> Result<(), LinkClosed> {
        let Some(shim) = &self.shim else {
            return self.target.send(json).map_err(|_| LinkClosed);
        };
        let f = &shim.faults;
        let t = f.now();

        // Delivery to a crashed node: discarded and recorded, as in the
        // simulator's delivery-time check. (Channels have no distinct
        // delivery step, so the send instant stands in for it.)
        if f.plan.is_down(shim.dst, t) {
            {
                let mut led = f.ledger.lock();
                led.log.push(FaultEvent::LostAtCrashedNode { time: t, dst: shim.dst });
                led.lost_uids.extend(packet_uids(&json));
            }
            f.emit("fault.crash_loss", format!("dst={}", shim.dst.0));
            return Ok(());
        }

        // Stall window: defer to the window's end.
        if let Some(until) = f.plan.stall_until(shim.dst, t) {
            f.ledger.lock().log.push(FaultEvent::Stalled { time: t, dst: shim.dst, until });
            f.emit("fault.stall", format!("dst={} until_ns={}", shim.dst.0, until.as_nanos()));
            self.pump_at(shim, until, json);
            return Ok(());
        }

        match f.verdict(shim.src, shim.dst, t, &json) {
            None => self.target.send(json).map_err(|_| LinkClosed),
            Some(FaultKind::Drop) => {
                {
                    let mut led = f.ledger.lock();
                    led.log.push(FaultEvent::Dropped { time: t, src: shim.src, dst: shim.dst });
                    led.lost_uids.extend(packet_uids(&json));
                }
                f.emit("fault.drop", format!("src={} dst={}", shim.src.0, shim.dst.0));
                Ok(())
            }
            Some(FaultKind::Delay(by)) => {
                f.ledger.lock().log.push(FaultEvent::Delayed {
                    time: t,
                    src: shim.src,
                    dst: shim.dst,
                    by,
                });
                f.emit(
                    "fault.delay",
                    format!("src={} dst={} by_ns={}", shim.src.0, shim.dst.0, by.as_nanos()),
                );
                self.pump_at(shim, t + by, json);
                Ok(())
            }
            Some(FaultKind::Duplicate(gap)) => {
                {
                    let mut led = f.ledger.lock();
                    led.log.push(FaultEvent::Duplicated { time: t, src: shim.src, dst: shim.dst });
                    led.duplicated_uids.extend(packet_uids(&json));
                }
                f.emit("fault.duplicate", format!("src={} dst={}", shim.src.0, shim.dst.0));
                self.pump_at(shim, t + gap, json.clone());
                self.target.send(json).map_err(|_| LinkClosed)
            }
            Some(FaultKind::Reorder(max)) => {
                // Jitter from the same content-addressed stream, one draw
                // past the verdict rolls, so it replays too.
                let mut rng =
                    SimRng::new(f.plan.seed ^ fnv1a(json.as_bytes()) ^ 0x7E12_0DE2_5A17_0000);
                let by = Dur::nanos(rng.below(max.as_nanos() + 1));
                f.ledger.lock().log.push(FaultEvent::Reordered {
                    time: t,
                    src: shim.src,
                    dst: shim.dst,
                    by,
                });
                f.emit(
                    "fault.reorder",
                    format!("src={} dst={} by_ns={}", shim.src.0, shim.dst.0, by.as_nanos()),
                );
                self.pump_at(shim, t + by, json);
                Ok(())
            }
        }
    }

    fn pump_at(&self, shim: &LinkShim, at: Time, json: String) {
        let due = shim.faults.epoch + Duration::from_nanos(at.as_nanos());
        let job =
            PumpJob { due, seq: shim.faults.next_seq(), target: self.target.clone(), json };
        // A closed pump only happens at teardown; the loss is benign.
        let _ = shim.pump.send(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_packet::{FlowKey, Packet};

    fn pkt_json(uid: u64) -> String {
        let k = FlowKey::tcp("10.0.0.1".parse().unwrap(), 1000, "1.1.1.1".parse().unwrap(), 80);
        WireMsg::Packet { packet: Packet::builder(uid, k).build() }.to_json()
    }

    fn always() -> (Time, Time) {
        (Time::ZERO, Time(u64::MAX))
    }

    #[test]
    fn passthrough_forwards_everything() {
        let (tx, rx) = unbounded();
        let ch = FaultyChannel::passthrough(tx);
        for uid in 1..=50 {
            ch.send_json(pkt_json(uid)).unwrap();
        }
        let mut got = 0;
        while rx.try_recv().is_ok() {
            got += 1;
        }
        assert_eq!(got, 50);
    }

    #[test]
    fn sever_drops_everything_and_records_uids() {
        let (from, until) = always();
        let plan = FaultPlan::new(3).sever(ROUTER_NODE, worker_node(0), from, until);
        let (faults, pump) = RtFaults::arm(plan);
        let (tx, rx) = unbounded();
        let ch = FaultyChannel::shimmed(tx, ROUTER_NODE, worker_node(0), faults.clone(), pump);
        for uid in 1..=20 {
            ch.send_json(pkt_json(uid)).unwrap();
        }
        assert!(rx.try_recv().is_err(), "all dropped");
        let led = faults.ledger();
        assert_eq!(led.lost_sorted(), (1..=20).collect::<Vec<_>>());
        assert!(led.log.iter().all(|e| matches!(e, FaultEvent::Dropped { .. })));
        drop(ch);
        faults.join_pump();
    }

    #[test]
    fn verdicts_are_content_deterministic_across_reruns() {
        let (from, until) = always();
        let run = || {
            let plan = FaultPlan::new(77).link(
                Some(ROUTER_NODE),
                Some(worker_node(0)),
                from,
                until,
                400,
                FaultKind::Drop,
            );
            let (faults, pump) = RtFaults::arm(plan);
            let (tx, _rx) = unbounded();
            let ch =
                FaultyChannel::shimmed(tx, ROUTER_NODE, worker_node(0), faults.clone(), pump);
            for uid in 1..=200 {
                ch.send_json(pkt_json(uid)).unwrap();
            }
            drop(ch);
            faults.join_pump();
            faults.ledger().lost_sorted()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same plan + same messages => same losses");
        assert!(!a.is_empty() && a.len() < 200, "~40% drop rate at 400/1000");
    }

    #[test]
    fn verdicts_are_independent_of_send_order() {
        let (from, until) = always();
        let run = |rev: bool| {
            let plan = FaultPlan::new(12).link(
                Some(ROUTER_NODE),
                Some(worker_node(1)),
                from,
                until,
                500,
                FaultKind::Drop,
            );
            let (faults, pump) = RtFaults::arm(plan);
            let (tx, _rx) = unbounded();
            let ch =
                FaultyChannel::shimmed(tx, ROUTER_NODE, worker_node(1), faults.clone(), pump);
            let mut uids: Vec<u64> = (1..=100).collect();
            if rev {
                uids.reverse();
            }
            for uid in uids {
                ch.send_json(pkt_json(uid)).unwrap();
            }
            drop(ch);
            faults.join_pump();
            faults.ledger().lost_sorted()
        };
        assert_eq!(run(false), run(true), "verdicts are per-message, not per-sequence");
    }

    #[test]
    fn delay_redelivers_through_the_pump() {
        let (from, until) = always();
        let plan = FaultPlan::new(5).link(
            Some(CTRL_NODE),
            Some(worker_node(0)),
            from,
            until,
            1000,
            FaultKind::Delay(Dur::millis(30)),
        );
        let (faults, pump) = RtFaults::arm(plan);
        let (tx, rx) = unbounded();
        let ch = FaultyChannel::shimmed(tx, CTRL_NODE, worker_node(0), faults.clone(), pump);
        let t0 = Instant::now();
        ch.send_json(pkt_json(9)).unwrap();
        assert!(rx.try_recv().is_err(), "not delivered synchronously");
        let got = rx.recv_timeout(Duration::from_secs(2)).expect("redelivered");
        assert!(t0.elapsed() >= Duration::from_millis(25), "held for ~30ms");
        assert_eq!(packet_uids(&got), vec![9]);
        drop(ch);
        faults.join_pump();
    }

    #[test]
    fn duplicate_delivers_twice_and_records_uid() {
        let (from, until) = always();
        let plan = FaultPlan::new(8).link(
            None,
            None,
            from,
            until,
            1000,
            FaultKind::Duplicate(Dur::millis(5)),
        );
        let (faults, pump) = RtFaults::arm(plan);
        let (tx, rx) = unbounded();
        let ch = FaultyChannel::shimmed(tx, ROUTER_NODE, worker_node(0), faults.clone(), pump);
        ch.send_json(pkt_json(4)).unwrap();
        let mut got = 0;
        while rx.recv_timeout(Duration::from_secs(1)).is_ok() {
            got += 1;
            if got == 2 {
                break;
            }
        }
        assert_eq!(got, 2, "original + duplicate");
        assert_eq!(faults.ledger().duplicated_sorted(), vec![4]);
        drop(ch);
        faults.join_pump();
    }

    #[test]
    fn crash_window_discards_until_restart() {
        // Crash from the epoch until far in the future: everything lost.
        let plan = FaultPlan::new(2)
            .crash(worker_node(0), Time::ZERO)
            .restart(worker_node(0), Time(u64::MAX));
        let (faults, pump) = RtFaults::arm(plan);
        let (tx, rx) = unbounded();
        let ch = FaultyChannel::shimmed(tx, ROUTER_NODE, worker_node(0), faults.clone(), pump);
        for uid in 1..=5 {
            ch.send_json(pkt_json(uid)).unwrap();
        }
        assert!(rx.try_recv().is_err(), "nothing delivered");
        let led = faults.ledger();
        assert_eq!(led.lost_sorted(), vec![1, 2, 3, 4, 5]);
        assert!(led.log.iter().all(|e| matches!(e, FaultEvent::LostAtCrashedNode { .. })));
        drop(ch);
        faults.join_pump();
    }

    #[test]
    fn dropped_frame_accounts_every_packet_inside() {
        // A fault verdict hits a whole coalesced frame; every packet it
        // carried must land in the ledger, not just the first.
        let (from, until) = always();
        let plan = FaultPlan::new(3).sever(ROUTER_NODE, worker_node(0), from, until);
        let (faults, pump) = RtFaults::arm(plan);
        let (tx, rx) = unbounded();
        let ch = FaultyChannel::shimmed(tx, ROUTER_NODE, worker_node(0), faults.clone(), pump);
        let k = FlowKey::tcp("10.0.0.1".parse().unwrap(), 1000, "1.1.1.1".parse().unwrap(), 80);
        let msgs: Vec<WireMsg> = (1..=6u64)
            .map(|uid| WireMsg::Packet { packet: Packet::builder(uid, k).build() })
            .collect();
        for frame in crate::wire::encode_frames(&msgs, 3) {
            ch.send_json(frame).unwrap();
        }
        assert!(rx.try_recv().is_err(), "all dropped");
        assert_eq!(faults.ledger().lost_sorted(), (1..=6).collect::<Vec<_>>());
        drop(ch);
        faults.join_pump();
    }

    #[test]
    fn pump_exits_once_channels_drop() {
        let plan = FaultPlan::new(1);
        let (faults, pump) = RtFaults::arm(plan);
        let (tx, _rx) = unbounded();
        let ch = FaultyChannel::shimmed(tx, CTRL_NODE, worker_node(0), faults.clone(), pump);
        ch.send_json(pkt_json(1)).unwrap();
        drop(ch);
        // join_pump returns promptly because all pump senders are gone.
        let t0 = Instant::now();
        faults.join_pump();
        assert!(t0.elapsed() < Duration::from_secs(1));
    }
}
