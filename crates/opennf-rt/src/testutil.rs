//! Test-only helpers shared across the crate's unit tests.

use opennf_nf::{Chunk, LogRecord, NetworkFunction, NfFault, StateError};
use opennf_nfs::AssetMonitor;
use opennf_packet::{Filter, FlowId, Packet};

/// An NF that behaves like an [`AssetMonitor`] but panics when it sees the
/// trigger uid — a stand-in for an NF implementation bug.
pub struct PanicNf {
    inner: AssetMonitor,
    trigger: u64,
}

impl PanicNf {
    /// Panics on the packet with uid `trigger`.
    pub fn new(trigger: u64) -> Self {
        PanicNf { inner: AssetMonitor::new(), trigger }
    }
}

impl NetworkFunction for PanicNf {
    fn nf_type(&self) -> &'static str {
        "panic-monitor"
    }

    fn process_packet(&mut self, pkt: &Packet) -> Result<(), NfFault> {
        if pkt.uid == self.trigger {
            panic!("injected NF bug at uid {}", pkt.uid);
        }
        self.inner.process_packet(pkt)
    }

    fn drain_logs(&mut self) -> Vec<LogRecord> {
        self.inner.drain_logs()
    }

    fn list_perflow(&self, filter: &Filter) -> Vec<FlowId> {
        self.inner.list_perflow(filter)
    }

    fn get_perflow(&mut self, filter: &Filter) -> Vec<Chunk> {
        self.inner.get_perflow(filter)
    }

    fn put_perflow(&mut self, chunks: Vec<Chunk>) -> Result<(), StateError> {
        self.inner.put_perflow(chunks)
    }

    fn del_perflow(&mut self, flow_ids: &[FlowId]) {
        self.inner.del_perflow(flow_ids)
    }

    fn list_multiflow(&self, filter: &Filter) -> Vec<FlowId> {
        self.inner.list_multiflow(filter)
    }

    fn get_multiflow(&mut self, filter: &Filter) -> Vec<Chunk> {
        self.inner.get_multiflow(filter)
    }

    fn put_multiflow(&mut self, chunks: Vec<Chunk>) -> Result<(), StateError> {
        self.inner.put_multiflow(chunks)
    }

    fn del_multiflow(&mut self, flow_ids: &[FlowId]) {
        self.inner.del_multiflow(flow_ids)
    }

    fn get_allflows(&mut self) -> Vec<Chunk> {
        self.inner.get_allflows()
    }

    fn put_allflows(&mut self, chunks: Vec<Chunk>) -> Result<(), StateError> {
        self.inner.put_allflows(chunks)
    }
}
