//! The threaded controller: executes loss-free moves over the JSON wire
//! protocol while traffic keeps flowing from generator threads.
//!
//! Every southbound exchange is failure-aware: sends to dead workers,
//! missing replies, malformed wire messages, and NF panics all surface as
//! [`RtError`] instead of panicking the controller thread. A worker that
//! dies mid-operation produces [`RtError::NfFailed`] (its final
//! [`WireEvent::NfFailed`] report) or [`RtError::WorkerGone`], and the
//! caller — like the simulator's failover app — decides how to recover.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use opennf_controller::{JournalPhase, JournalRecord, OpId, OpJournal, OpReport};
use opennf_nf::{EventedNf, NetworkFunction};
use opennf_packet::{Filter, FlowId};
use opennf_telemetry::Telemetry;

use crate::error::RtError;
use crate::faults::{worker_node, FaultyChannel, RtFaults, CTRL_NODE, ROUTER_NODE};
use crate::router::Router;
use crate::wire::{decode_frame, FrameBuf, WireAction, WireCall, WireEvent, WireMsg, WireReply};
use crate::worker::{spawn_worker_full, PeerMesh, WorkerHandle};
use opennf_util::FaultPlan;

/// Replayed packets are coalesced into frames of at most this many
/// messages: one channel send (and one fault verdict) per frame instead of
/// per packet, without unbounded frame sizes.
const REPLAY_BATCH: usize = 64;

/// How long the controller waits for any single southbound reply before
/// declaring the request dead.
const REPLY_TIMEOUT: Duration = Duration::from_secs(5);

/// Outcome of a threaded loss-free move.
#[derive(Debug, Clone)]
pub struct MoveStats {
    /// Flows moved (chunks).
    pub chunks: usize,
    /// Bytes of state moved.
    pub bytes: usize,
    /// Events buffered during the move and replayed to the destination.
    pub events_replayed: usize,
    /// Wall-clock duration of the operation.
    pub duration: std::time::Duration,
}

/// What recovery needs to finish or roll back an op, beyond the journal's
/// report snapshots: the op's scope, its transfer progress, and the
/// buffered-packet events the controller has collected but not yet
/// replayed. Like the journal, this lives on the controller struct — the
/// crash model is a recovered process (the sim's model too), so struct
/// fields are the durable store while in-flight messages and timers die.
/// Spooling events here as they arrive is what keeps a crash from
/// silently losing a packet that was dropped at the source on the
/// controller's own instruction.
#[derive(Debug, Clone)]
pub(crate) struct OpResidue {
    pub(crate) src: usize,
    pub(crate) dst: usize,
    pub(crate) filter: Filter,
    /// What kind of op left this residue — recovery's teardown differs:
    /// only a move deletes the source copy on fail-forward, and a copy
    /// has no event filter to settle.
    pub(crate) kind: opennf_sched::OpClass,
    /// Flows shipped toward (or confirmed at) the destination so far.
    pub(crate) put_flows: Vec<FlowId>,
    /// Buffered-packet events collected but not yet replayed.
    pub(crate) events: Vec<WireEvent>,
    /// P2P ops: the latest transfer round's correlation id — rollback
    /// aborts the transfer at the destination (tombstoning in-flight
    /// chunk batches) instead of plain-deleting.
    pub(crate) p2p_through: Option<u64>,
}

impl OpResidue {
    pub(crate) fn new(src: usize, dst: usize, filter: Filter, kind: opennf_sched::OpClass) -> Self {
        OpResidue {
            src,
            dst,
            filter,
            kind,
            put_flows: Vec::new(),
            events: Vec::new(),
            p2p_through: None,
        }
    }
}

/// The controller: owns the workers and the router.
pub struct RtController {
    pub(crate) workers: Vec<WorkerHandle>,
    /// The shared rule table generators route through.
    pub router: Arc<Router>,
    from_workers: Receiver<String>,
    to_ctrl: Sender<String>,
    next_id: u64,
    /// Controller → worker links (shimmed when a fault plan is armed).
    ctrl_links: Vec<FaultyChannel>,
    /// Router → worker links (what fault-aware generators send through).
    data_links: Vec<FaultyChannel>,
    pub(crate) reply_timeout: Duration,
    /// Fencing epoch stamped on [`WireMsg::Fenced`] sends. The threaded
    /// controller lives for the whole run (no restart), so it stays 0; the
    /// simulator's controller bumps its epoch per recovery.
    fence_epoch: u64,
    /// Mint for fence sequence numbers (unique per send within an epoch).
    fence_seq: u64,
    /// Packet uids the last aborted move could not replay (its explicit
    /// loss accounting, mirroring the simulator's `abort_lost`).
    pub(crate) last_abort_lost: Vec<u64>,
    /// Messages decoded from a coalesced frame but not yet consumed: a
    /// frame's messages drain in order before the channel is polled again.
    inbox: VecDeque<WireMsg>,
    /// The run's telemetry (wall clock). Workers share it; its counters
    /// below are resolved once so the hot paths never touch the registry.
    pub(crate) tel: Telemetry,
    c_frames_decoded: Arc<AtomicU64>,
    c_frames_encoded: Arc<AtomicU64>,
    pub(crate) c_events_pumped: Arc<AtomicU64>,
    /// Write-ahead op journal: the same [`JournalPhase`] ledger the sim
    /// controller keeps, appended at every op phase boundary so a
    /// multi-op rt controller recovers exactly like the sim one.
    journal: OpJournal,
    /// Mint for op ids.
    next_op: u64,
    /// Per-op recovery residue, keyed by raw op id.
    pub(crate) residue: HashMap<u64, OpResidue>,
    /// Test hook: "crash" the controller immediately after the next
    /// journal append of this phase (fires once).
    crash_after: Option<JournalPhase>,
    /// Set when the crash hook fired; cleared by [`RtController::recover`].
    crashed: bool,
    /// The op scheduler: admission policy plus per-source export
    /// bandwidth accounting. FIFO with a bottomless bucket by default —
    /// byte-identical to the engine before the scheduler existed.
    pub(crate) sched: opennf_sched::OpScheduler,
}

/// What one controller-side receive produced.
pub(crate) enum Recv {
    /// The next message (possibly popped out of a coalesced frame).
    Msg(WireMsg),
    /// An undecodable channel payload (the wire-error text).
    Bad(String),
    /// Nothing arrived within the timeout.
    Timeout,
    /// Every sender is gone.
    Disconnected,
}

impl RtController {
    /// Spawns one worker per NF; installs a default route to worker 0.
    pub fn new(nfs: Vec<Box<dyn NetworkFunction>>) -> Self {
        Self::build(nfs, None, Telemetry::wall())
    }

    /// Like [`RtController::new`], but with a caller-supplied telemetry
    /// handle (keep a clone to read spans/metrics during and after the
    /// run).
    pub fn new_with_telemetry(nfs: Vec<Box<dyn NetworkFunction>>, tel: Telemetry) -> Self {
        Self::build(nfs, None, tel)
    }

    /// Like [`RtController::new`], but every channel — controller → worker,
    /// router → worker, worker → controller — runs through a
    /// [`FaultyChannel`] armed with `plan`. Returns the shared
    /// [`RtFaults`] so the caller can read the injected-fault ledger and
    /// join the delay pump after shutdown.
    pub fn new_with_faults(
        nfs: Vec<Box<dyn NetworkFunction>>,
        plan: FaultPlan,
    ) -> (Self, Arc<RtFaults>) {
        Self::new_with_faults_and_telemetry(nfs, plan, Telemetry::wall())
    }

    /// [`RtController::new_with_faults`] with a caller-supplied telemetry
    /// handle; injected faults also land in its flight recorder as
    /// `fault.*` events.
    pub fn new_with_faults_and_telemetry(
        nfs: Vec<Box<dyn NetworkFunction>>,
        plan: FaultPlan,
        tel: Telemetry,
    ) -> (Self, Arc<RtFaults>) {
        let (faults, pump) = RtFaults::arm(plan);
        faults.set_telemetry(tel.clone());
        let ctrl = Self::build(nfs, Some((faults.clone(), pump)), tel);
        (ctrl, faults)
    }

    fn build(
        nfs: Vec<Box<dyn NetworkFunction>>,
        faults: Option<(Arc<RtFaults>, crossbeam::channel::Sender<crate::faults::PumpJob>)>,
        tel: Telemetry,
    ) -> Self {
        let (to_ctrl, from_workers) = unbounded();
        let n = nfs.len();
        let dials = tel.counter("rt.p2p.dials");
        let meshes: Vec<Arc<PeerMesh>> =
            (0..n).map(|_| PeerMesh::new(n, dials.clone())).collect();
        let workers: Vec<WorkerHandle> = nfs
            .into_iter()
            .enumerate()
            .map(|(i, nf)| {
                let up = match &faults {
                    Some((f, pump)) => FaultyChannel::shimmed(
                        to_ctrl.clone(),
                        worker_node(i),
                        CTRL_NODE,
                        f.clone(),
                        pump.clone(),
                    ),
                    None => FaultyChannel::passthrough(to_ctrl.clone()),
                };
                spawn_worker_full(i, nf, up, meshes[i].clone(), tel.clone())
            })
            .collect();
        // Hand every mesh the ingredients for the direct worker ↔ worker
        // links now that every inbox exists — but dial nothing: worker i's
        // link to worker j is constructed on its first P2P transfer (and
        // runs through the fault shim for that link, so a plan can drop or
        // delay chunk batches on the direct path too).
        let peer_txs: Vec<Sender<String>> = workers.iter().map(|w| w.tx.clone()).collect();
        for (i, mesh) in meshes.iter().enumerate() {
            mesh.wire(i, peer_txs.clone(), faults.clone());
        }
        let link = |i: usize, src| match &faults {
            Some((f, pump)) => FaultyChannel::shimmed(
                workers[i].tx.clone(),
                src,
                worker_node(i),
                f.clone(),
                pump.clone(),
            ),
            None => FaultyChannel::passthrough(workers[i].tx.clone()),
        };
        let ctrl_links = (0..n).map(|i| link(i, CTRL_NODE)).collect();
        let data_links = (0..n).map(|i| link(i, ROUTER_NODE)).collect();
        let router = Arc::new(Router::new());
        router.install(0, Filter::any(), 0);
        let c_frames_decoded = tel.counter("rt.frames.decoded");
        let c_frames_encoded = tel.counter("rt.frames.encoded");
        let c_events_pumped = tel.counter("rt.events.pumped");
        RtController {
            workers,
            router,
            from_workers,
            to_ctrl,
            next_id: 1,
            ctrl_links,
            data_links,
            reply_timeout: REPLY_TIMEOUT,
            fence_epoch: 0,
            fence_seq: 0,
            last_abort_lost: Vec::new(),
            inbox: VecDeque::new(),
            tel,
            c_frames_decoded,
            c_frames_encoded,
            c_events_pumped,
            journal: OpJournal::new(),
            next_op: 1,
            residue: HashMap::new(),
            crash_after: None,
            crashed: false,
            sched: opennf_sched::OpScheduler::new(opennf_sched::SchedPolicy::Fifo),
        }
    }

    /// Swaps the op-scheduling policy (fresh policy state, default
    /// config). Takes effect for the next [`RtController::run_ops`] call.
    pub fn set_sched_policy(&mut self, policy: opennf_sched::SchedPolicy) {
        self.sched = opennf_sched::OpScheduler::new(policy);
    }

    /// Swaps the op-scheduling policy with explicit tunables (DRR
    /// quantum/costs, aging, token bucket, put window).
    pub fn set_sched_config(
        &mut self,
        policy: opennf_sched::SchedPolicy,
        cfg: opennf_sched::SchedConfig,
    ) {
        self.sched = opennf_sched::OpScheduler::with_config(policy, cfg);
    }

    /// The active op-scheduling policy.
    pub fn sched_policy(&self) -> opennf_sched::SchedPolicy {
        self.sched.policy()
    }

    /// The run's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Pops the next controller-bound wire message, decoding coalesced
    /// frames as they arrive.
    pub(crate) fn recv_msg(&mut self, timeout: Duration) -> Recv {
        loop {
            if let Some(m) = self.inbox.pop_front() {
                return Recv::Msg(m);
            }
            match self.from_workers.recv_timeout(timeout) {
                Ok(raw) => match decode_frame(&raw) {
                    Ok(msgs) => {
                        self.c_frames_decoded.fetch_add(1, Ordering::Relaxed);
                        self.inbox.extend(msgs);
                    }
                    Err(e) => return Recv::Bad(e.to_string()),
                },
                Err(RecvTimeoutError::Timeout) => return Recv::Timeout,
                Err(RecvTimeoutError::Disconnected) => return Recv::Disconnected,
            }
        }
    }

    /// Overrides the per-reply southbound timeout (fault soaks use a short
    /// one so a dropped request fails the operation quickly).
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// Sends `msg` to worker `i` over the (possibly shimmed) controller
    /// link. An injected drop is a *successful* send — the message just
    /// never arrives, exactly as on a real network.
    fn send_to_worker(&self, i: usize, msg: &WireMsg) -> Result<(), RtError> {
        self.ctrl_links[i].send(msg).map_err(|_| RtError::WorkerGone { worker: i })
    }

    /// Injects a packet through the router (what generator threads do via
    /// a clone of [`RtController::router`] and worker senders — this
    /// method is the single-threaded convenience). Fails if the routed-to
    /// worker is dead. Runs through the router → worker fault shim.
    pub fn inject(&self, pkt: opennf_packet::Packet) -> Result<(), RtError> {
        if let Some(w) = self.router.route(&pkt) {
            self.data_links[w]
                .send(&WireMsg::Packet { packet: pkt })
                .map_err(|_| RtError::WorkerGone { worker: w })?;
        }
        Ok(())
    }

    /// A clone of worker `i`'s channel (for generator threads).
    pub fn worker_tx(&self, i: usize) -> Sender<String> {
        self.workers[i].tx.clone()
    }

    /// The router → worker `i` link, fault shim included (what generator
    /// threads in fault-armed runs should send packets through).
    pub fn data_tx(&self, i: usize) -> FaultyChannel {
        self.data_links[i].clone()
    }

    /// Sender for controller-bound messages (used by tests to emulate
    /// extra event sources).
    pub fn ctrl_tx(&self) -> Sender<String> {
        self.to_ctrl.clone()
    }

    /// Synchronization barrier: returns once worker `i` has drained every
    /// message queued on its channel before this call (FIFO ordering), and
    /// consumes the events those messages raised. Benchmarks use this to
    /// keep preload processing out of a measured move window.
    pub fn quiesce(&mut self, worker: usize) -> Result<(), RtError> {
        let id = self.call(worker, WireCall::DelPerflow { flow_ids: Vec::new() })?;
        let mut events = Vec::new();
        Self::expect_done(self.await_reply(id, &mut events)?)
    }

    pub(crate) fn call(&mut self, worker: usize, call: WireCall) -> Result<u64, RtError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_to_worker(worker, &WireMsg::Request { id, call, span: None })?;
        Ok(id)
    }

    /// Like [`RtController::call`], but stamps the request with the raw id
    /// of the controller span issuing it, so the worker's frame-decode
    /// span links back across the thread boundary. Shimmed links are never
    /// stamped: span ids are allocated racily across threads, and a fault
    /// verdict keyed on rerun-varying bytes would break ledger
    /// determinism.
    pub(crate) fn call_linked(
        &mut self,
        worker: usize,
        call: WireCall,
        span_raw: u64,
    ) -> Result<u64, RtError> {
        let id = self.next_id;
        self.next_id += 1;
        let span = (span_raw != 0 && !self.ctrl_links[worker].is_shimmed()).then_some(span_raw);
        self.send_to_worker(worker, &WireMsg::Request { id, call, span })?;
        Ok(id)
    }

    /// Like [`RtController::call`], but wrapped in the idempotency fence:
    /// the worker applies the call at most once even if the channel (or a
    /// hostile fault plan) duplicates it. Used on reissue paths — calls
    /// that may race an earlier in-flight copy of themselves.
    pub(crate) fn call_fenced(&mut self, worker: usize, call: WireCall) -> Result<u64, RtError> {
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.fence_seq;
        self.fence_seq += 1;
        self.send_to_worker(
            worker,
            &WireMsg::Fenced { epoch: self.fence_epoch, seq, id, call, span: None },
        )?;
        Ok(id)
    }

    /// Sends a fenced call over worker `worker`'s *management channel*
    /// (the raw, unshimmed channel — standing in for the reliable control
    /// connection), returning the correlation id to await. Settle paths
    /// and recovery use this: teardown must not be droppable.
    pub(crate) fn send_fenced_mgmt(
        &mut self,
        worker: usize,
        call: WireCall,
    ) -> Result<u64, RtError> {
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.fence_seq;
        self.fence_seq += 1;
        self.workers[worker]
            .send(&WireMsg::Fenced { epoch: self.fence_epoch, seq, id, call, span: None })?;
        Ok(id)
    }

    /// Waits for the response to `id`, buffering any events that arrive in
    /// the meantime into `events`. An [`WireEvent::NfFailed`] report from
    /// any worker aborts the wait — that reply is never coming.
    pub(crate) fn await_reply(
        &mut self,
        id: u64,
        events: &mut Vec<WireEvent>,
    ) -> Result<WireReply, RtError> {
        loop {
            match self.recv_msg(self.reply_timeout) {
                Recv::Timeout => return Err(RtError::Timeout { id }),
                Recv::Disconnected => return Err(RtError::ChannelClosed),
                Recv::Bad(e) => return Err(RtError::Wire(e)),
                Recv::Msg(WireMsg::Response { id: rid, reply }) if rid == id => return Ok(reply),
                Recv::Msg(WireMsg::Event { worker, ev: WireEvent::NfFailed { reason } }) => {
                    return Err(RtError::NfFailed { worker, reason });
                }
                Recv::Msg(WireMsg::Event { ev, .. }) => {
                    self.c_events_pumped.fetch_add(1, Ordering::Relaxed);
                    events.push(ev);
                }
                Recv::Msg(_) => {}
            }
        }
    }

    /// Checks a reply that should be a plain completion.
    pub(crate) fn expect_done(reply: WireReply) -> Result<(), RtError> {
        match reply {
            WireReply::Done => Ok(()),
            WireReply::Error { message } => Err(RtError::Wire(message)),
            other => Err(RtError::Wire(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Replays a buffered event packet to `dst` (marked do-not-buffer /
    /// do-not-drop, §4.3). Returns how many packets were sent (0 or 1).
    fn replay(links: &[FaultyChannel], dst: usize, ev: WireEvent) -> Result<usize, RtError> {
        if let WireEvent::PacketReceived { mut packet } = ev {
            packet.do_not_buffer = true;
            packet.do_not_drop = true;
            links[dst]
                .send(&WireMsg::Packet { packet })
                .map_err(|_| RtError::WorkerGone { worker: dst })?;
            Ok(1)
        } else {
            Ok(0)
        }
    }

    /// Replays a run of buffered event packets to `dst` as coalesced
    /// frames of at most [`REPLAY_BATCH`] packets each — one channel send
    /// per frame instead of per packet. Returns how many packets shipped.
    ///
    /// Shimmed links fall back to per-packet sends: how many events are
    /// buffered at replay time is timing-dependent, and a frame whose
    /// composition varies between reruns would get rerun-varying
    /// content-addressed fault verdicts (breaking ledger determinism).
    fn replay_batch(
        links: &[FaultyChannel],
        dst: usize,
        events: impl Iterator<Item = WireEvent>,
        frames_encoded: &AtomicU64,
    ) -> Result<usize, RtError> {
        if links[dst].is_shimmed() {
            let mut replayed = 0usize;
            for ev in events {
                replayed += Self::replay(links, dst, ev)?;
            }
            return Ok(replayed);
        }
        let mut buf = FrameBuf::new();
        let mut shipped = 0usize;
        let flush = |buf: &mut FrameBuf| -> Result<(), RtError> {
            if let Some(frame) = buf.finish() {
                frames_encoded.fetch_add(1, Ordering::Relaxed);
                links[dst].send_json(frame).map_err(|_| RtError::WorkerGone { worker: dst })?;
            }
            Ok(())
        };
        for ev in events {
            if let WireEvent::PacketReceived { mut packet } = ev {
                packet.do_not_buffer = true;
                packet.do_not_drop = true;
                buf.push(&WireMsg::Packet { packet });
                shipped += 1;
                if buf.len() >= REPLAY_BATCH {
                    flush(&mut buf)?;
                }
            }
        }
        flush(&mut buf)?;
        Ok(shipped)
    }

    /// Replays one buffered event packet to `dst` over the (possibly
    /// shimmed) controller link.
    pub(crate) fn replay_one(&self, dst: usize, ev: WireEvent) -> Result<usize, RtError> {
        Self::replay(&self.ctrl_links, dst, ev)
    }

    /// Replays a run of buffered events to `dst` over the controller
    /// links, coalesced where determinism allows (see
    /// [`RtController::replay_batch`]).
    pub(crate) fn replay_now(
        &mut self,
        dst: usize,
        events: impl Iterator<Item = WireEvent>,
    ) -> Result<usize, RtError> {
        Self::replay_batch(&self.ctrl_links, dst, events, &self.c_frames_encoded)
    }

    // ---- op journal & recovery ----

    /// Mints the next op id.
    pub(crate) fn mint_op(&mut self) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        id
    }

    /// Appends one phase boundary for `op` to the rt op journal, then runs
    /// the crash hook: returns `true` when the controller "crashed" right
    /// after this append. The caller must stop driving the op — its
    /// in-flight messages and timers die, while the journal and residue
    /// (struct fields, the durable store under the recovered-process crash
    /// model) survive for [`RtController::recover`].
    pub(crate) fn jlog(&mut self, op: OpId, phase: JournalPhase, report: &OpReport) -> bool {
        self.journal.append(JournalRecord {
            op,
            phase,
            t_ns: self.tel.now_ns(),
            report: report.clone(),
        });
        if self.crash_after == Some(phase) && !self.crashed {
            self.crash_after = None;
            self.crashed = true;
            self.tel.event("ctrl.crash", Some(format!("after={phase:?}")));
        }
        self.crashed
    }

    /// The rt op journal (the same ledger shape the sim controller keeps).
    pub fn journal(&self) -> &OpJournal {
        &self.journal
    }

    /// The journal serialized the way soak dumps expect.
    pub fn journal_json(&self) -> String {
        self.journal.to_json()
    }

    /// Test hook: "crash" the controller immediately after the next
    /// journal append of `phase` (fires once). Every op in flight at that
    /// instant fails with [`RtError::CtrlCrashed`] and stays journaled
    /// non-terminal until [`RtController::recover`] runs.
    pub fn crash_after(&mut self, phase: JournalPhase) {
        self.crash_after = Some(phase);
    }

    /// Whether the crash hook has fired and recovery has not yet run.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Recovery pass, mirroring the sim controller's restart path: bumps
    /// the fencing epoch, then drives every journal-in-flight op to a
    /// terminal phase in ascending op-id order. Ops at or past
    /// [`JournalPhase::Transferred`] (every flow confirmed at the
    /// destination) fail *forward*: the source copy is deleted under the
    /// fence, buffered events replay to the destination, and the route
    /// flips, ending in `Committed`. Earlier ops roll back: partial
    /// imports are purged at the destination (P2P rounds are tombstoned),
    /// buffered events replay to the source, and any replay failure is
    /// accounted in `abort_lost`, ending in `Aborted`. Queued messages in
    /// the worker → controller channel are *not* discarded — the channel
    /// models a network that lost nothing in the crash; stale responses
    /// are ignored by correlation id and straggler events are re-homed.
    /// Returns each recovered op with its terminal phase.
    pub fn recover(&mut self) -> Vec<(OpId, JournalPhase)> {
        self.crashed = false;
        self.crash_after = None;
        self.last_abort_lost.clear();
        self.fence_epoch += 1;
        self.journal.epoch = self.fence_epoch;
        let sp = self.tel.begin("recovery.rt");
        let mut outcomes = Vec::new();
        // Stragglers harvested while settling one op can belong to another
        // in-flight op's source; bucket by worker and hand them over.
        let mut stray: HashMap<usize, Vec<WireEvent>> = HashMap::new();
        for (op, phase) in self.journal.in_flight() {
            let Some(mut res) = self.residue.remove(&op.0) else { continue };
            let mut report = self
                .journal
                .records
                .iter()
                .rev()
                .find(|r| r.op == op)
                .map(|r| r.report.clone())
                .unwrap_or_else(|| OpReport::new(op, res.kind.name().into(), self.tel.now_ns()));
            if let Some(evs) = stray.remove(&res.src) {
                res.events.extend(evs);
            }
            let forward = phase >= JournalPhase::Transferred;
            let mut sink: Vec<(usize, WireEvent)> = Vec::new();
            if forward {
                // The source may still hold its copy (crash before the
                // delete acked): a fenced re-delete is harmless when the
                // original already ran. Only a move releases the source —
                // copies and shares are non-destructive, so fail-forward
                // leaves the source untouched.
                if res.kind == opennf_sched::OpClass::Move && !res.put_flows.is_empty() {
                    if let Ok(id) = self.call_fenced(
                        res.src,
                        WireCall::DelPerflow { flow_ids: res.put_flows.clone() },
                    ) {
                        self.await_done_tagged(id, &mut sink);
                    }
                }
            } else if let Some(through_id) = res.p2p_through {
                // P2P rollback: purge partial imports and tombstone the
                // round so chunk batches still in flight cannot resurrect
                // the deleted state.
                if let Ok(id) = self.call_fenced(
                    res.dst,
                    WireCall::AbortTransfer { flow_ids: res.put_flows.clone(), through_id },
                ) {
                    self.await_done_tagged(id, &mut sink);
                }
            } else if !res.put_flows.is_empty() {
                if let Ok(id) = self.call_fenced(
                    res.dst,
                    WireCall::DelPerflow { flow_ids: res.put_flows.clone() },
                ) {
                    self.await_done_tagged(id, &mut sink);
                }
            }
            // A copy never armed an event filter, so there is nothing to
            // settle at its source; moves and shares tear theirs down.
            if res.kind != opennf_sched::OpClass::Copy {
                sink.extend(self.settle_collect_tagged(res.src, res.filter));
            }
            for (w, ev) in sink {
                if w == res.src {
                    res.events.push(ev);
                } else {
                    stray.entry(w).or_default().push(ev);
                }
            }
            // Buffered events follow the state for a move; a share's
            // buffered updates always belong back at the source (the
            // replica only gets the initial sync).
            let replay_to = if forward && res.kind == opennf_sched::OpClass::Move {
                res.dst
            } else {
                res.src
            };
            let (replayed, lost) =
                self.replay_events_to(replay_to, std::mem::take(&mut res.events));
            report.events_released += replayed;
            self.last_abort_lost.extend(lost.iter().copied());
            let terminal = if forward {
                // Only a completed move redirects traffic.
                if res.kind == opennf_sched::OpClass::Move {
                    self.router.install(10, res.filter, res.dst);
                }
                report.end_ns = self.tel.now_ns();
                JournalPhase::Committed
            } else {
                report.abort(format!("controller crash at {phase:?}: rolled back"), None);
                report.abort_lost.extend(lost);
                report.end_ns = self.tel.now_ns();
                JournalPhase::Aborted
            };
            self.jlog(op, terminal, &report);
            outcomes.push((op, terminal));
        }
        // Stragglers whose source had no in-flight op: route each packet
        // wherever the table now points.
        for evs in stray.into_values() {
            for ev in evs {
                if let WireEvent::PacketReceived { ref packet } = ev {
                    if let Some(w) = self.router.route(packet) {
                        let _ = self.replay_one(w, ev);
                    }
                }
            }
        }
        self.tel.end(sp);
        outcomes
    }

    /// Waits for the reply to `id`, collecting events with their raising
    /// worker. Best-effort: timeouts, dead workers, and NF failures end
    /// the wait — recovery carries on with what it has.
    fn await_done_tagged(&mut self, id: u64, sink: &mut Vec<(usize, WireEvent)>) {
        let deadline = Instant::now() + self.reply_timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            match self.recv_msg(left) {
                Recv::Msg(WireMsg::Response { id: rid, .. }) if rid == id => return,
                Recv::Msg(WireMsg::Event { ev: WireEvent::NfFailed { .. }, .. }) => return,
                Recv::Msg(WireMsg::Event { worker, ev }) => {
                    self.c_events_pumped.fetch_add(1, Ordering::Relaxed);
                    sink.push((worker, ev));
                }
                Recv::Msg(_) | Recv::Bad(_) => {}
                Recv::Timeout | Recv::Disconnected => return,
            }
        }
    }

    /// Executes a loss-free move of per-flow state matching `filter` from
    /// worker `src` to worker `dst` (§5.1.1), while traffic keeps flowing:
    ///
    /// 1. `enableEvents(filter, drop)` at src;
    /// 2. streamed `getPerflow` at src pipelined into `putPerflow` batches
    ///    at dst, then `delPerflow` at src;
    /// 3. replay buffered event packets to dst (marked do-not-buffer);
    /// 4. flip the router to dst.
    ///
    /// This is the one-op form of [`RtController::run_moves`]: the same
    /// pipelined state machine drives it, so a single move and a k-move
    /// batch take exactly the same journaled path. On failure the error
    /// names the faulty worker; the router still points wherever it
    /// pointed before the failing step, so the caller can re-route
    /// (failover) or retry.
    pub fn move_flows_lossfree(
        &mut self,
        src: usize,
        dst: usize,
        filter: Filter,
    ) -> Result<MoveStats, RtError> {
        self.run_ops(vec![crate::engine::OpSpec::mv(src, dst, filter)])
            .pop()
            .expect("one spec in, one result out")
    }

    /// Clones per-flow state matching `filter` from worker `src` to
    /// worker `dst` without disturbing the source (§5.2): no event
    /// arming, no delete, no route change — the source keeps processing
    /// and keeps its state throughout. One-op form of
    /// [`RtController::run_ops`] with a copy spec.
    pub fn copy_flows(
        &mut self,
        src: usize,
        dst: usize,
        filter: Filter,
    ) -> Result<MoveStats, RtError> {
        self.run_ops(vec![crate::engine::OpSpec::copy(src, dst, filter)])
            .pop()
            .expect("one spec in, one result out")
    }

    /// Seeds a replica of per-flow state matching `filter` at worker
    /// `dst` (§5.2 share): events are armed at `src` for the duration of
    /// the initial sync and replayed back to `src` afterwards, so no
    /// update raised mid-sync is lost. One-op form of
    /// [`RtController::run_ops`] with a share spec.
    pub fn share_flows(
        &mut self,
        src: usize,
        dst: usize,
        filter: Filter,
    ) -> Result<MoveStats, RtError> {
        self.run_ops(vec![crate::engine::OpSpec::share(src, dst, filter)])
            .pop()
            .expect("one spec in, one result out")
    }

    /// Uids the last move explicitly gave up on (abort accounting).
    pub fn abort_lost(&self) -> &[u64] {
        &self.last_abort_lost
    }

    /// Executes a loss-free move whose bulk state transfer goes *directly*
    /// from `src` to `dst` (footnote 10), copy-then-delete:
    ///
    /// 1. `enableEvents(filter, drop)` at src;
    /// 2. `transferPerflow`: src streams chunk batches straight to dst and
    ///    summarizes to the controller; dst summarizes its imports;
    /// 3. the controller reconciles the two summaries, re-requesting any
    ///    unconfirmed flows (a dropped batch costs one narrower round, not
    ///    the move);
    /// 4. only once every exported flow is confirmed imported does src
    ///    delete — an abort before that never loses state;
    /// 5. replay buffered events to dst and flip the router.
    ///
    /// On failure the destination is told to discard partial imports and
    /// tombstone in-flight batches (`abortTransfer`), then the move settles
    /// like [`RtController::move_flows_lossfree`].
    pub fn move_flows_p2p(
        &mut self,
        src: usize,
        dst: usize,
        filter: Filter,
    ) -> Result<MoveStats, RtError> {
        self.last_abort_lost.clear();
        let op = self.mint_op();
        let mut report = OpReport::new(op, "move[LF p2p]".into(), self.tel.now_ns());
        self.residue
            .insert(op.0, OpResidue::new(src, dst, filter, opennf_sched::OpClass::Move));
        let mut events: Vec<WireEvent> = Vec::new();
        let mut flipped = false;
        let mut abort: Option<(u64, Vec<FlowId>)> = None;
        match self.try_move_p2p(
            op,
            &mut report,
            src,
            dst,
            filter,
            &mut events,
            &mut flipped,
            &mut abort,
        ) {
            Ok(mut stats) => {
                let (extra, lost) = self.settle(src, dst, filter, events);
                stats.events_replayed += extra;
                self.last_abort_lost = lost;
                report.events_released = stats.events_replayed;
                report.end_ns = self.tel.now_ns();
                self.jlog(op, JournalPhase::Committed, &report);
                self.residue.remove(&op.0);
                Ok(stats)
            }
            Err(RtError::CtrlCrashed) => {
                // The "process" died mid-op: no settle, no abort teardown —
                // only the struct fields survive. Spool the events collected
                // so far into the residue so recovery can still replay every
                // packet the source dropped on our instruction.
                if let Some(res) = self.residue.get_mut(&op.0) {
                    res.events.append(&mut events);
                }
                Err(RtError::CtrlCrashed)
            }
            Err(e) => {
                self.tel.event("move.abort", Some(e.to_string()));
                if let Some((through_id, imported)) = abort.take() {
                    // Best-effort teardown at the destination: delete the
                    // partial imports and tombstone every round so a chunk
                    // batch still in flight cannot resurrect them. Fenced:
                    // a duplicated abort must not re-delete flows a
                    // concurrent retry round re-imported.
                    if let Ok(id) = self
                        .call_fenced(dst, WireCall::AbortTransfer { flow_ids: imported, through_id })
                    {
                        let _ = self.await_reply(id, &mut events);
                    }
                }
                let replay_to = if flipped { dst } else { src };
                let (_, lost) = self.settle(src, replay_to, filter, events);
                report.abort(e.to_string(), None);
                report.abort_lost = lost.clone();
                report.end_ns = self.tel.now_ns();
                self.jlog(op, JournalPhase::Aborted, &report);
                self.residue.remove(&op.0);
                self.last_abort_lost = lost;
                Err(e)
            }
        }
    }

    /// Waits for a P2P round's two summaries — the source's
    /// `TransferExported` and the destination's `TransferDone`, both
    /// correlated to `id`. A timeout leaves the corresponding side `None`:
    /// that is a round outcome the caller reconciles, not an operation
    /// error. Mid-round [`WireReply::TransferProgress`] receipts (one per
    /// non-final chunk batch the destination imported) accumulate into
    /// `confirmed` as they land — so even a round whose final summary is
    /// lost leaves behind batch-granular knowledge of what arrived, and
    /// the retry re-requests only the genuinely unconfirmed flows.
    #[allow(clippy::type_complexity)]
    fn await_transfer(
        &mut self,
        id: u64,
        events: &mut Vec<WireEvent>,
        confirmed: &mut HashSet<FlowId>,
    ) -> Result<(Option<(Vec<FlowId>, u64)>, Option<Vec<FlowId>>), RtError> {
        let mut exported: Option<(Vec<FlowId>, u64)> = None;
        let mut done: Option<Vec<FlowId>> = None;
        let deadline = Instant::now() + self.reply_timeout;
        while exported.is_none() || done.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.recv_msg(left) {
                Recv::Timeout => break,
                Recv::Disconnected => return Err(RtError::ChannelClosed),
                Recv::Bad(e) => return Err(RtError::Wire(e)),
                Recv::Msg(WireMsg::Response { id: rid, reply }) if rid == id => match reply {
                    WireReply::TransferExported { flow_ids, bytes } => {
                        exported = Some((flow_ids, bytes));
                    }
                    WireReply::TransferDone { imported } => {
                        confirmed.extend(imported.iter().copied());
                        done = Some(imported);
                    }
                    WireReply::TransferProgress { flow_ids, .. } => {
                        confirmed.extend(flow_ids);
                    }
                    WireReply::Error { message } => return Err(RtError::Wire(message)),
                    _ => {}
                },
                Recv::Msg(WireMsg::Event { worker, ev: WireEvent::NfFailed { reason } }) => {
                    return Err(RtError::NfFailed { worker, reason });
                }
                Recv::Msg(WireMsg::Event { ev, .. }) => {
                    self.c_events_pumped.fetch_add(1, Ordering::Relaxed);
                    events.push(ev);
                }
                Recv::Msg(_) => {}
            }
        }
        Ok((exported, done))
    }

    #[allow(clippy::too_many_arguments)]
    fn try_move_p2p(
        &mut self,
        op: OpId,
        report: &mut OpReport,
        src: usize,
        dst: usize,
        filter: Filter,
        events: &mut Vec<WireEvent>,
        flipped: &mut bool,
        abort: &mut Option<(u64, Vec<FlowId>)>,
    ) -> Result<MoveStats, RtError> {
        const ATTEMPTS: u32 = 3;
        let start = Instant::now();

        // Same five phases (and names) as the relayed move; here
        // "transfer" is the direct src → dst reconcile loop and "import"
        // the copy-then-delete release.
        let sp = self.tel.begin("move.export");
        let id = self.call(src, WireCall::EnableEvents { filter, action: WireAction::Drop })?;
        Self::expect_done(self.await_reply(id, events)?)?;
        self.tel.end(sp);
        if self.jlog(op, JournalPhase::Armed, report) {
            return Err(RtError::CtrlCrashed);
        }

        let sp_transfer = self.tel.begin("move.transfer");
        let mut all_exported: Vec<FlowId> = Vec::new();
        let mut exported_set: HashSet<FlowId> = HashSet::new();
        // Flows confirmed at the destination: cumulative `TransferDone`
        // summaries plus batch-granular `TransferProgress` receipts. The
        // receipts are what make a half-confirmed round cheap — when the
        // final summary itself is lost, the retry re-requests only the
        // flows no batch ever confirmed.
        let mut confirmed: HashSet<FlowId> = HashSet::new();
        let mut bytes = 0usize;
        // Empty = the whole filter; retries narrow to the unconfirmed gap.
        let mut only: Vec<FlowId> = Vec::new();
        let mut complete = false;
        for round in 0..ATTEMPTS {
            if round > 0 {
                self.tel.counter("rt.p2p.retry_rounds").fetch_add(1, Ordering::Relaxed);
                self.tel
                    .counter("rt.p2p.refetch_flows")
                    .fetch_add(only.len() as u64, Ordering::Relaxed);
                report.retries += 1;
            }
            let id =
                self.call(src, WireCall::TransferPerflow { filter, peer: dst, only: only.clone() })?;
            *abort = Some((id, confirmed.iter().copied().collect()));
            let (round_exported, round_done) = self.await_transfer(id, events, &mut confirmed)?;
            let both_acked = round_exported.is_some() && round_done.is_some();
            if let Some((flow_ids, round_bytes)) = round_exported {
                bytes += round_bytes as usize;
                for f in flow_ids {
                    if exported_set.insert(f) {
                        all_exported.push(f);
                    }
                }
            }
            // Exported-order projection of the confirmed set: what the
            // destination is known to hold (recovery's rollback/fail-forward
            // scope, and the abort path's delete list).
            let put_flows: Vec<FlowId> =
                all_exported.iter().filter(|f| confirmed.contains(f)).copied().collect();
            if let Some(res) = self.residue.get_mut(&op.0) {
                res.put_flows = put_flows.clone();
                res.p2p_through = Some(id);
            }
            *abort = Some((id, put_flows));
            only = all_exported.iter().filter(|f| !confirmed.contains(f)).copied().collect();
            // Complete only when this round's *both* summaries landed and
            // every exported flow is confirmed — a missing summary retries
            // even with an empty gap, because the export list is then
            // possibly incomplete.
            if both_acked && only.is_empty() {
                complete = true;
                break;
            }
            self.tel.event(
                "move.p2p_round",
                Some(format!("xfer={id} missing={}", only.len())),
            );
        }
        if !complete {
            report.p2p_inflight = only.clone();
            return Err(RtError::Wire(format!(
                "P2P transfer incomplete after {ATTEMPTS} attempts ({} flows unconfirmed)",
                only.len()
            )));
        }
        self.tel.end(sp_transfer);
        report.chunks = all_exported.len();
        report.bytes = bytes as u64;
        // `||` short-circuits: a crash right after ExportDone leaves
        // Transferred unjournaled, exactly the boundary being modeled.
        if self.jlog(op, JournalPhase::ExportDone, report)
            || self.jlog(op, JournalPhase::Transferred, report)
        {
            return Err(RtError::CtrlCrashed);
        }
        // Copy-then-delete: the source lets go only now that every flow is
        // confirmed at the destination.
        let sp = self.tel.begin("move.import");
        if !all_exported.is_empty() {
            let id = self.call(src, WireCall::DelPerflow { flow_ids: all_exported.clone() })?;
            Self::expect_done(self.await_reply(id, events)?)?;
        }
        self.tel.end(sp);
        *abort = None;
        if self.jlog(op, JournalPhase::Imported, report) {
            return Err(RtError::CtrlCrashed);
        }

        let sp = self.tel.begin("move.flush");
        let mut replayed =
            Self::replay_batch(&self.ctrl_links, dst, events.drain(..), &self.c_frames_encoded)?;
        self.tel.end(sp);
        if self.jlog(op, JournalPhase::Flushed, report) {
            return Err(RtError::CtrlCrashed);
        }
        let sp = self.tel.begin("move.fwd_update");
        self.router.install(10, filter, dst);
        *flipped = true;
        let deadline = Instant::now() + Duration::from_millis(200);
        while Instant::now() < deadline {
            match self.recv_msg(Duration::from_millis(20)) {
                Recv::Msg(WireMsg::Event { worker, ev: WireEvent::NfFailed { reason } }) => {
                    return Err(RtError::NfFailed { worker, reason });
                }
                Recv::Msg(WireMsg::Event { ev, .. }) => {
                    replayed += Self::replay(&self.ctrl_links, dst, ev)?;
                }
                Recv::Msg(_) | Recv::Bad(_) => {}
                Recv::Timeout => break,
                Recv::Disconnected => return Err(RtError::ChannelClosed),
            }
        }
        self.tel.end(sp);

        Ok(MoveStats {
            chunks: all_exported.len(),
            bytes,
            events_replayed: replayed,
            duration: start.elapsed(),
        })
    }

    /// Tears the move's event filter down at `src` over the *management
    /// channel* (the raw, unshimmed worker channel — standing in for the
    /// reliable control connection the paper's controller keeps), waits for
    /// the ack while collecting the events the teardown flushes out, and
    /// replays every collected event to `replay_to` marked
    /// do-not-buffer/do-not-drop. The worker channel is FIFO, so once the
    /// disable acks, no further events can be raised by that filter.
    /// Returns `(replayed, lost_uids)`: uids whose replay failed (dead
    /// worker) are the move's explicit loss accounting.
    fn settle(
        &mut self,
        src: usize,
        replay_to: usize,
        filter: Filter,
        mut events: Vec<WireEvent>,
    ) -> (usize, Vec<u64>) {
        events.extend(self.settle_collect(src, filter));
        self.replay_events_to(replay_to, events)
    }

    /// The teardown half of [`RtController::settle`]: disables the move's
    /// event filter at `src` and collects the events the teardown flushes
    /// out, without replaying them anywhere. A sharded control plane uses
    /// this to harvest the stragglers locally and ship them east-west to
    /// the shard that owns the destination.
    pub(crate) fn settle_collect(&mut self, src: usize, filter: Filter) -> Vec<WireEvent> {
        self.settle_collect_tagged(src, filter).into_iter().map(|(_, ev)| ev).collect()
    }

    /// [`RtController::settle_collect`] keeping each event's raising
    /// worker. Multi-op paths need the tag: recovery tears several ops
    /// down in sequence, and a straggler harvested during one op's
    /// teardown may belong to another in-flight op's source.
    pub(crate) fn settle_collect_tagged(
        &mut self,
        src: usize,
        filter: Filter,
    ) -> Vec<(usize, WireEvent)> {
        let mut events = Vec::new();
        // Fenced: settle can run after an abort already issued a disable
        // for the same filter; the fence keeps a duplicated teardown from
        // double-applying at the worker.
        if let Ok(id) = self.send_fenced_mgmt(src, WireCall::DisableEvents { filter }) {
            // Collect events until the ack (or the worker dies / times out).
            let deadline = Instant::now() + self.reply_timeout;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                match self.recv_msg(left) {
                    Recv::Msg(WireMsg::Response { id: rid, .. }) if rid == id => break,
                    Recv::Msg(WireMsg::Event { ev: WireEvent::NfFailed { .. }, .. }) => break,
                    Recv::Msg(WireMsg::Event { worker, ev }) => {
                        self.c_events_pumped.fetch_add(1, Ordering::Relaxed);
                        events.push((worker, ev));
                    }
                    Recv::Msg(_) | Recv::Bad(_) => {}
                    Recv::Timeout | Recv::Disconnected => break,
                }
            }
        }
        events
    }

    /// The replay half of [`RtController::settle`]: ships every buffered
    /// event packet to local worker `replay_to` over the management
    /// channel (the abort path must converge even while the fault plan is
    /// hostile), coalesced into frames; a frame the dead worker never
    /// takes loses every packet inside it, and each uid is accounted.
    /// Returns `(replayed, lost_uids)`.
    pub(crate) fn replay_events_to(
        &mut self,
        replay_to: usize,
        events: Vec<WireEvent>,
    ) -> (usize, Vec<u64>) {
        let mut replayed = 0usize;
        let mut lost = Vec::new();
        let mut buf = FrameBuf::new();
        let mut pending: Vec<u64> = Vec::new();
        let flush =
            |buf: &mut FrameBuf, pending: &mut Vec<u64>, replayed: &mut usize, lost: &mut Vec<u64>| {
                if let Some(frame) = buf.finish() {
                    self.c_frames_encoded.fetch_add(1, Ordering::Relaxed);
                    if self.workers[replay_to].tx.send(frame).is_ok() {
                        *replayed += pending.len();
                    } else {
                        lost.append(pending);
                    }
                    pending.clear();
                }
            };
        for ev in events {
            if let WireEvent::PacketReceived { mut packet } = ev {
                packet.do_not_buffer = true;
                packet.do_not_drop = true;
                pending.push(packet.uid);
                buf.push(&WireMsg::Packet { packet });
                if buf.len() >= REPLAY_BATCH {
                    flush(&mut buf, &mut pending, &mut replayed, &mut lost);
                }
            }
        }
        flush(&mut buf, &mut pending, &mut replayed, &mut lost);
        lost.sort_unstable();
        lost.dedup();
        (replayed, lost)
    }

    /// Collects every event that arrives within `window`, without issuing
    /// any call. Used by the sharded control plane to drain stragglers
    /// (late buffered packets, processed-acks) after a cross-shard
    /// forwarding flip, before shipping them east-west.
    pub(crate) fn drain_events(
        &mut self,
        window: Duration,
    ) -> Result<Vec<WireEvent>, RtError> {
        let mut events = Vec::new();
        let deadline = Instant::now() + window;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.recv_msg(left.min(Duration::from_millis(20))) {
                Recv::Msg(WireMsg::Event { worker, ev: WireEvent::NfFailed { reason } }) => {
                    return Err(RtError::NfFailed { worker, reason });
                }
                Recv::Msg(WireMsg::Event { ev, .. }) => {
                    self.c_events_pumped.fetch_add(1, Ordering::Relaxed);
                    events.push(ev);
                }
                Recv::Msg(_) | Recv::Bad(_) | Recv::Timeout => {}
                Recv::Disconnected => break,
            }
        }
        Ok(events)
    }

    /// Shuts all workers down and returns their harnesses in index order.
    /// Shutdown bypasses the fault shim — teardown must not be droppable.
    pub fn shutdown(self) -> Vec<EventedNf> {
        // Drop the shimmed links first so the delay pump can drain and
        // exit once the workers join.
        drop(self.ctrl_links);
        drop(self.data_links);
        self.workers.into_iter().map(WorkerHandle::shutdown).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::PanicNf;
    use opennf_nfs::AssetMonitor;
    use opennf_packet::{FlowKey, Packet, TcpFlags};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pkt(uid: u64, flow: u16) -> Packet {
        Packet::builder(
            uid,
            FlowKey::tcp("10.0.0.1".parse().unwrap(), 2000 + flow, "1.1.1.1".parse().unwrap(), 80),
        )
        .flags(if uid <= 40 { TcpFlags::SYN } else { TcpFlags::ACK })
        .build()
    }

    #[test]
    fn lossfree_move_under_live_traffic() {
        let mut ctrl = RtController::new(vec![
            Box::new(AssetMonitor::new()),
            Box::new(AssetMonitor::new()),
        ]);

        // Generator thread: 2000 packets over 40 flows, ~50 µs apart,
        // routing through the shared router the whole time.
        let router = ctrl.router.clone();
        let tx0 = ctrl.worker_tx(0);
        let tx1 = ctrl.worker_tx(1);
        let sent = Arc::new(AtomicU64::new(0));
        let sent_gen = sent.clone();
        let gen = std::thread::spawn(move || {
            let txs = [tx0, tx1];
            for uid in 1..=2_000u64 {
                let p = pkt(uid, (uid % 40) as u16);
                if let Some(w) = router.route(&p) {
                    let _ = txs[w].send(WireMsg::Packet { packet: p }.to_json());
                }
                sent_gen.store(uid, Ordering::Release);
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        });

        // Rendezvous on packets actually sent, not wall time: once 200
        // packets are enqueued, every flow's SYN is queued ahead of the
        // move's first southbound request (the channel is FIFO), so all
        // 40 flows have state at the source when the export runs.
        while sent.load(Ordering::Acquire) < 200 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = ctrl.move_flows_lossfree(0, 1, Filter::any()).expect("move succeeds");
        assert_eq!(stats.chunks, 40, "all 40 flows moved");
        assert!(stats.bytes > 0);

        gen.join().unwrap();
        // Allow the last packets to drain.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let harnesses = ctrl.shutdown();

        // Loss-freedom: every generated packet was processed exactly once
        // (drops at src were replayed to dst via events).
        let h0 = &harnesses[0];
        let h1 = &harnesses[1];
        let mut all: Vec<u64> = h0.processed_log().iter().chain(h1.processed_log()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            h0.processed_log().len() + h1.processed_log().len(),
            "no packet processed twice"
        );
        assert_eq!(all.len(), 2_000, "every packet processed exactly once");
        assert!(!h1.processed_log().is_empty(), "destination took over");
        // The destination holds all flow state.
        let any: &dyn std::any::Any = h1.nf();
        let m1 = any.downcast_ref::<AssetMonitor>().unwrap();
        assert_eq!(m1.conn_count(), 40);
    }

    #[test]
    fn p2p_move_under_live_traffic_is_loss_free() {
        let mut ctrl = RtController::new(vec![
            Box::new(AssetMonitor::new()),
            Box::new(AssetMonitor::new()),
        ]);
        let router = ctrl.router.clone();
        let tx0 = ctrl.worker_tx(0);
        let tx1 = ctrl.worker_tx(1);
        let sent = Arc::new(AtomicU64::new(0));
        let sent_gen = sent.clone();
        let gen = std::thread::spawn(move || {
            let txs = [tx0, tx1];
            for uid in 1..=2_000u64 {
                let p = pkt(uid, (uid % 40) as u16);
                if let Some(w) = router.route(&p) {
                    let _ = txs[w].send(WireMsg::Packet { packet: p }.to_json());
                }
                sent_gen.store(uid, Ordering::Release);
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        });
        while sent.load(Ordering::Acquire) < 200 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = ctrl.move_flows_p2p(0, 1, Filter::any()).expect("p2p move succeeds");
        assert_eq!(stats.chunks, 40, "all 40 flows transferred directly");
        assert!(stats.bytes > 0);

        gen.join().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let harnesses = ctrl.shutdown();
        let (h0, h1) = (&harnesses[0], &harnesses[1]);
        let mut all: Vec<u64> =
            h0.processed_log().iter().chain(h1.processed_log()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            h0.processed_log().len() + h1.processed_log().len(),
            "no packet processed twice"
        );
        assert_eq!(all.len(), 2_000, "every packet processed exactly once");
        // Copy-then-delete completed: the source holds nothing, the
        // destination holds all 40 flows.
        let any: &dyn std::any::Any = h0.nf();
        assert_eq!(any.downcast_ref::<AssetMonitor>().unwrap().conn_count(), 0);
        let any: &dyn std::any::Any = h1.nf();
        assert_eq!(any.downcast_ref::<AssetMonitor>().unwrap().conn_count(), 40);
    }

    #[test]
    fn p2p_mesh_dials_lazily_and_counts_dials() {
        // Four workers could mean a 16-link mesh; one P2P move must dial
        // exactly one link (src → dst), observable via the dial counter.
        let tel = Telemetry::wall();
        let mut ctrl = RtController::new_with_telemetry(
            (0..4).map(|_| Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>).collect(),
            tel.clone(),
        );
        for uid in 1..=40u64 {
            ctrl.inject(pkt(uid, (uid % 8) as u16)).unwrap();
        }
        ctrl.quiesce(0).unwrap();
        ctrl.move_flows_p2p(0, 1, Filter::any()).expect("p2p move succeeds");
        assert_eq!(
            tel.counter("rt.p2p.dials").load(Ordering::Relaxed),
            1,
            "only the src → dst link is dialed"
        );
        assert!(
            tel.counter("rt.p2p.batches").load(Ordering::Relaxed) >= 1,
            "at least one chunk batch shipped on the dialed link"
        );
        ctrl.shutdown();
    }

    #[test]
    fn lossfree_move_emits_canonical_span_sequence() {
        let tel = Telemetry::wall();
        let mut ctrl = RtController::new_with_telemetry(
            vec![Box::new(AssetMonitor::new()), Box::new(AssetMonitor::new())],
            tel.clone(),
        );
        for uid in 1..=20u64 {
            ctrl.inject(pkt(uid, (uid % 4) as u16)).unwrap();
        }
        ctrl.quiesce(0).unwrap();
        ctrl.move_flows_lossfree(0, 1, Filter::any()).expect("move succeeds");
        assert_eq!(
            tel.span_sequence("move."),
            ["move.export", "move.transfer", "move.import", "move.flush", "move.fwd_update"],
            "the five phases tile the move in protocol order"
        );
        ctrl.shutdown();
    }

    #[test]
    fn move_surfaces_source_nf_failure_as_typed_error() {
        let mut ctrl = RtController::new(vec![
            Box::new(PanicNf::new(7)),
            Box::new(AssetMonitor::new()),
        ]);
        // The faulting packet is queued ahead of the move's requests, so
        // the source dies before (or while) answering them.
        for uid in 1..=7u64 {
            ctrl.inject(pkt(uid, (uid % 4) as u16)).expect("worker alive at enqueue time");
        }
        let res = ctrl.move_flows_lossfree(0, 1, Filter::any());
        match res {
            Err(RtError::NfFailed { worker: 0, reason }) => {
                assert!(reason.contains("injected NF bug"), "reason: {reason}");
            }
            // The worker may already have torn down its channel by the
            // time the first request is sent.
            Err(RtError::WorkerGone { worker: 0 }) => {}
            other => panic!("expected a source-failure error, got {other:?}"),
        }
        // The controller is not poisoned: the surviving worker still
        // answers southbound calls.
        let id = ctrl.call(1, WireCall::GetAllflows).unwrap();
        let mut events = Vec::new();
        assert!(matches!(ctrl.await_reply(id, &mut events), Ok(WireReply::Chunks { .. })));
    }
}
