//! The threaded controller: executes loss-free moves over the JSON wire
//! protocol while traffic keeps flowing from generator threads.
//!
//! Every southbound exchange is failure-aware: sends to dead workers,
//! missing replies, malformed wire messages, and NF panics all surface as
//! [`RtError`] instead of panicking the controller thread. A worker that
//! dies mid-operation produces [`RtError::NfFailed`] (its final
//! [`WireEvent::NfFailed`] report) or [`RtError::WorkerGone`], and the
//! caller — like the simulator's failover app — decides how to recover.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use opennf_nf::{EventedNf, NetworkFunction};
use opennf_packet::{Filter, FlowId};
use opennf_telemetry::Telemetry;

use crate::error::RtError;
use crate::faults::{worker_node, FaultyChannel, RtFaults, CTRL_NODE, ROUTER_NODE};
use crate::router::Router;
use crate::wire::{decode_frame, FrameBuf, WireAction, WireCall, WireEvent, WireMsg, WireReply};
use crate::worker::{spawn_worker_full, PeerMesh, WorkerHandle};
use opennf_util::FaultPlan;

/// Replayed packets are coalesced into frames of at most this many
/// messages: one channel send (and one fault verdict) per frame instead of
/// per packet, without unbounded frame sizes.
const REPLAY_BATCH: usize = 64;

/// How long the controller waits for any single southbound reply before
/// declaring the request dead.
const REPLY_TIMEOUT: Duration = Duration::from_secs(5);

/// Outcome of a threaded loss-free move.
#[derive(Debug, Clone)]
pub struct MoveStats {
    /// Flows moved (chunks).
    pub chunks: usize,
    /// Bytes of state moved.
    pub bytes: usize,
    /// Events buffered during the move and replayed to the destination.
    pub events_replayed: usize,
    /// Wall-clock duration of the operation.
    pub duration: std::time::Duration,
}

/// The controller: owns the workers and the router.
pub struct RtController {
    workers: Vec<WorkerHandle>,
    /// The shared rule table generators route through.
    pub router: Arc<Router>,
    from_workers: Receiver<String>,
    to_ctrl: Sender<String>,
    next_id: u64,
    /// Controller → worker links (shimmed when a fault plan is armed).
    ctrl_links: Vec<FaultyChannel>,
    /// Router → worker links (what fault-aware generators send through).
    data_links: Vec<FaultyChannel>,
    reply_timeout: Duration,
    /// Fencing epoch stamped on [`WireMsg::Fenced`] sends. The threaded
    /// controller lives for the whole run (no restart), so it stays 0; the
    /// simulator's controller bumps its epoch per recovery.
    fence_epoch: u64,
    /// Mint for fence sequence numbers (unique per send within an epoch).
    fence_seq: u64,
    /// Packet uids the last aborted move could not replay (its explicit
    /// loss accounting, mirroring the simulator's `abort_lost`).
    last_abort_lost: Vec<u64>,
    /// Messages decoded from a coalesced frame but not yet consumed: a
    /// frame's messages drain in order before the channel is polled again.
    inbox: VecDeque<WireMsg>,
    /// The run's telemetry (wall clock). Workers share it; its counters
    /// below are resolved once so the hot paths never touch the registry.
    tel: Telemetry,
    c_frames_decoded: Arc<AtomicU64>,
    c_frames_encoded: Arc<AtomicU64>,
    c_events_pumped: Arc<AtomicU64>,
}

/// What one controller-side receive produced.
enum Recv {
    /// The next message (possibly popped out of a coalesced frame).
    Msg(WireMsg),
    /// An undecodable channel payload (the wire-error text).
    Bad(String),
    /// Nothing arrived within the timeout.
    Timeout,
    /// Every sender is gone.
    Disconnected,
}

impl RtController {
    /// Spawns one worker per NF; installs a default route to worker 0.
    pub fn new(nfs: Vec<Box<dyn NetworkFunction>>) -> Self {
        Self::build(nfs, None, Telemetry::wall())
    }

    /// Like [`RtController::new`], but with a caller-supplied telemetry
    /// handle (keep a clone to read spans/metrics during and after the
    /// run).
    pub fn new_with_telemetry(nfs: Vec<Box<dyn NetworkFunction>>, tel: Telemetry) -> Self {
        Self::build(nfs, None, tel)
    }

    /// Like [`RtController::new`], but every channel — controller → worker,
    /// router → worker, worker → controller — runs through a
    /// [`FaultyChannel`] armed with `plan`. Returns the shared
    /// [`RtFaults`] so the caller can read the injected-fault ledger and
    /// join the delay pump after shutdown.
    pub fn new_with_faults(
        nfs: Vec<Box<dyn NetworkFunction>>,
        plan: FaultPlan,
    ) -> (Self, Arc<RtFaults>) {
        Self::new_with_faults_and_telemetry(nfs, plan, Telemetry::wall())
    }

    /// [`RtController::new_with_faults`] with a caller-supplied telemetry
    /// handle; injected faults also land in its flight recorder as
    /// `fault.*` events.
    pub fn new_with_faults_and_telemetry(
        nfs: Vec<Box<dyn NetworkFunction>>,
        plan: FaultPlan,
        tel: Telemetry,
    ) -> (Self, Arc<RtFaults>) {
        let (faults, pump) = RtFaults::arm(plan);
        faults.set_telemetry(tel.clone());
        let ctrl = Self::build(nfs, Some((faults.clone(), pump)), tel);
        (ctrl, faults)
    }

    fn build(
        nfs: Vec<Box<dyn NetworkFunction>>,
        faults: Option<(Arc<RtFaults>, crossbeam::channel::Sender<crate::faults::PumpJob>)>,
        tel: Telemetry,
    ) -> Self {
        let (to_ctrl, from_workers) = unbounded();
        let n = nfs.len();
        let dials = tel.counter("rt.p2p.dials");
        let meshes: Vec<Arc<PeerMesh>> =
            (0..n).map(|_| PeerMesh::new(n, dials.clone())).collect();
        let workers: Vec<WorkerHandle> = nfs
            .into_iter()
            .enumerate()
            .map(|(i, nf)| {
                let up = match &faults {
                    Some((f, pump)) => FaultyChannel::shimmed(
                        to_ctrl.clone(),
                        worker_node(i),
                        CTRL_NODE,
                        f.clone(),
                        pump.clone(),
                    ),
                    None => FaultyChannel::passthrough(to_ctrl.clone()),
                };
                spawn_worker_full(i, nf, up, meshes[i].clone(), tel.clone())
            })
            .collect();
        // Hand every mesh the ingredients for the direct worker ↔ worker
        // links now that every inbox exists — but dial nothing: worker i's
        // link to worker j is constructed on its first P2P transfer (and
        // runs through the fault shim for that link, so a plan can drop or
        // delay chunk batches on the direct path too).
        let peer_txs: Vec<Sender<String>> = workers.iter().map(|w| w.tx.clone()).collect();
        for (i, mesh) in meshes.iter().enumerate() {
            mesh.wire(i, peer_txs.clone(), faults.clone());
        }
        let link = |i: usize, src| match &faults {
            Some((f, pump)) => FaultyChannel::shimmed(
                workers[i].tx.clone(),
                src,
                worker_node(i),
                f.clone(),
                pump.clone(),
            ),
            None => FaultyChannel::passthrough(workers[i].tx.clone()),
        };
        let ctrl_links = (0..n).map(|i| link(i, CTRL_NODE)).collect();
        let data_links = (0..n).map(|i| link(i, ROUTER_NODE)).collect();
        let router = Arc::new(Router::new());
        router.install(0, Filter::any(), 0);
        let c_frames_decoded = tel.counter("rt.frames.decoded");
        let c_frames_encoded = tel.counter("rt.frames.encoded");
        let c_events_pumped = tel.counter("rt.events.pumped");
        RtController {
            workers,
            router,
            from_workers,
            to_ctrl,
            next_id: 1,
            ctrl_links,
            data_links,
            reply_timeout: REPLY_TIMEOUT,
            fence_epoch: 0,
            fence_seq: 0,
            last_abort_lost: Vec::new(),
            inbox: VecDeque::new(),
            tel,
            c_frames_decoded,
            c_frames_encoded,
            c_events_pumped,
        }
    }

    /// The run's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Pops the next controller-bound wire message, decoding coalesced
    /// frames as they arrive.
    fn recv_msg(&mut self, timeout: Duration) -> Recv {
        loop {
            if let Some(m) = self.inbox.pop_front() {
                return Recv::Msg(m);
            }
            match self.from_workers.recv_timeout(timeout) {
                Ok(raw) => match decode_frame(&raw) {
                    Ok(msgs) => {
                        self.c_frames_decoded.fetch_add(1, Ordering::Relaxed);
                        self.inbox.extend(msgs);
                    }
                    Err(e) => return Recv::Bad(e.to_string()),
                },
                Err(RecvTimeoutError::Timeout) => return Recv::Timeout,
                Err(RecvTimeoutError::Disconnected) => return Recv::Disconnected,
            }
        }
    }

    /// Overrides the per-reply southbound timeout (fault soaks use a short
    /// one so a dropped request fails the operation quickly).
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// Sends `msg` to worker `i` over the (possibly shimmed) controller
    /// link. An injected drop is a *successful* send — the message just
    /// never arrives, exactly as on a real network.
    fn send_to_worker(&self, i: usize, msg: &WireMsg) -> Result<(), RtError> {
        self.ctrl_links[i].send(msg).map_err(|_| RtError::WorkerGone { worker: i })
    }

    /// Injects a packet through the router (what generator threads do via
    /// a clone of [`RtController::router`] and worker senders — this
    /// method is the single-threaded convenience). Fails if the routed-to
    /// worker is dead. Runs through the router → worker fault shim.
    pub fn inject(&self, pkt: opennf_packet::Packet) -> Result<(), RtError> {
        if let Some(w) = self.router.route(&pkt) {
            self.data_links[w]
                .send(&WireMsg::Packet { packet: pkt })
                .map_err(|_| RtError::WorkerGone { worker: w })?;
        }
        Ok(())
    }

    /// A clone of worker `i`'s channel (for generator threads).
    pub fn worker_tx(&self, i: usize) -> Sender<String> {
        self.workers[i].tx.clone()
    }

    /// The router → worker `i` link, fault shim included (what generator
    /// threads in fault-armed runs should send packets through).
    pub fn data_tx(&self, i: usize) -> FaultyChannel {
        self.data_links[i].clone()
    }

    /// Sender for controller-bound messages (used by tests to emulate
    /// extra event sources).
    pub fn ctrl_tx(&self) -> Sender<String> {
        self.to_ctrl.clone()
    }

    /// Synchronization barrier: returns once worker `i` has drained every
    /// message queued on its channel before this call (FIFO ordering), and
    /// consumes the events those messages raised. Benchmarks use this to
    /// keep preload processing out of a measured move window.
    pub fn quiesce(&mut self, worker: usize) -> Result<(), RtError> {
        let id = self.call(worker, WireCall::DelPerflow { flow_ids: Vec::new() })?;
        let mut events = Vec::new();
        Self::expect_done(self.await_reply(id, &mut events)?)
    }

    pub(crate) fn call(&mut self, worker: usize, call: WireCall) -> Result<u64, RtError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_to_worker(worker, &WireMsg::Request { id, call })?;
        Ok(id)
    }

    /// Like [`RtController::call`], but wrapped in the idempotency fence:
    /// the worker applies the call at most once even if the channel (or a
    /// hostile fault plan) duplicates it. Used on reissue paths — calls
    /// that may race an earlier in-flight copy of themselves.
    fn call_fenced(&mut self, worker: usize, call: WireCall) -> Result<u64, RtError> {
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.fence_seq;
        self.fence_seq += 1;
        self.send_to_worker(
            worker,
            &WireMsg::Fenced { epoch: self.fence_epoch, seq, id, call },
        )?;
        Ok(id)
    }

    /// Waits for the response to `id`, buffering any events that arrive in
    /// the meantime into `events`. An [`WireEvent::NfFailed`] report from
    /// any worker aborts the wait — that reply is never coming.
    pub(crate) fn await_reply(
        &mut self,
        id: u64,
        events: &mut Vec<WireEvent>,
    ) -> Result<WireReply, RtError> {
        loop {
            match self.recv_msg(self.reply_timeout) {
                Recv::Timeout => return Err(RtError::Timeout { id }),
                Recv::Disconnected => return Err(RtError::ChannelClosed),
                Recv::Bad(e) => return Err(RtError::Wire(e)),
                Recv::Msg(WireMsg::Response { id: rid, reply }) if rid == id => return Ok(reply),
                Recv::Msg(WireMsg::Event { worker, ev: WireEvent::NfFailed { reason } }) => {
                    return Err(RtError::NfFailed { worker, reason });
                }
                Recv::Msg(WireMsg::Event { ev, .. }) => {
                    self.c_events_pumped.fetch_add(1, Ordering::Relaxed);
                    events.push(ev);
                }
                Recv::Msg(_) => {}
            }
        }
    }

    /// Checks a reply that should be a plain completion.
    pub(crate) fn expect_done(reply: WireReply) -> Result<(), RtError> {
        match reply {
            WireReply::Done => Ok(()),
            WireReply::Error { message } => Err(RtError::Wire(message)),
            other => Err(RtError::Wire(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Replays a buffered event packet to `dst` (marked do-not-buffer /
    /// do-not-drop, §4.3). Returns how many packets were sent (0 or 1).
    fn replay(links: &[FaultyChannel], dst: usize, ev: WireEvent) -> Result<usize, RtError> {
        if let WireEvent::PacketReceived { mut packet } = ev {
            packet.do_not_buffer = true;
            packet.do_not_drop = true;
            links[dst]
                .send(&WireMsg::Packet { packet })
                .map_err(|_| RtError::WorkerGone { worker: dst })?;
            Ok(1)
        } else {
            Ok(0)
        }
    }

    /// Replays a run of buffered event packets to `dst` as coalesced
    /// frames of at most [`REPLAY_BATCH`] packets each — one channel send
    /// per frame instead of per packet. Returns how many packets shipped.
    ///
    /// Shimmed links fall back to per-packet sends: how many events are
    /// buffered at replay time is timing-dependent, and a frame whose
    /// composition varies between reruns would get rerun-varying
    /// content-addressed fault verdicts (breaking ledger determinism).
    fn replay_batch(
        links: &[FaultyChannel],
        dst: usize,
        events: impl Iterator<Item = WireEvent>,
        frames_encoded: &AtomicU64,
    ) -> Result<usize, RtError> {
        if links[dst].is_shimmed() {
            let mut replayed = 0usize;
            for ev in events {
                replayed += Self::replay(links, dst, ev)?;
            }
            return Ok(replayed);
        }
        let mut buf = FrameBuf::new();
        let mut shipped = 0usize;
        let flush = |buf: &mut FrameBuf| -> Result<(), RtError> {
            if let Some(frame) = buf.finish() {
                frames_encoded.fetch_add(1, Ordering::Relaxed);
                links[dst].send_json(frame).map_err(|_| RtError::WorkerGone { worker: dst })?;
            }
            Ok(())
        };
        for ev in events {
            if let WireEvent::PacketReceived { mut packet } = ev {
                packet.do_not_buffer = true;
                packet.do_not_drop = true;
                buf.push(&WireMsg::Packet { packet });
                shipped += 1;
                if buf.len() >= REPLAY_BATCH {
                    flush(&mut buf)?;
                }
            }
        }
        flush(&mut buf)?;
        Ok(shipped)
    }

    /// Executes a loss-free move of per-flow state matching `filter` from
    /// worker `src` to worker `dst` (§5.1.1), while traffic keeps flowing:
    ///
    /// 1. `enableEvents(filter, drop)` at src;
    /// 2. `getPerflow` / `delPerflow` at src, `putPerflow` at dst;
    /// 3. replay buffered event packets to dst (marked do-not-buffer);
    /// 4. flip the router to dst.
    ///
    /// On failure the error names the faulty worker; the router still
    /// points wherever it pointed before the failing step, so the caller
    /// can re-route (failover) or retry.
    pub fn move_flows_lossfree(
        &mut self,
        src: usize,
        dst: usize,
        filter: Filter,
    ) -> Result<MoveStats, RtError> {
        self.last_abort_lost.clear();
        let mut events: Vec<WireEvent> = Vec::new();
        let mut flipped = false;
        match self.try_move(src, dst, filter, &mut events, &mut flipped) {
            Ok(mut stats) => {
                // Converge: tear the event filter down over the management
                // channel and replay whatever the teardown flushes out, so
                // no straggler is ever silently dropped at the source.
                let (extra, lost) = self.settle(src, dst, filter, events);
                stats.events_replayed += extra;
                self.last_abort_lost = lost;
                Ok(stats)
            }
            Err(e) => {
                // Abort: restore a quiescent source (no stale filter) and
                // replay buffered events back to wherever the route points;
                // anything unreplayable is recorded in `abort_lost`.
                self.tel.event("move.abort", Some(e.to_string()));
                let replay_to = if flipped { dst } else { src };
                let (_, lost) = self.settle(src, replay_to, filter, events);
                self.last_abort_lost = lost;
                Err(e)
            }
        }
    }

    /// Uids the last move explicitly gave up on (abort accounting).
    pub fn abort_lost(&self) -> &[u64] {
        &self.last_abort_lost
    }

    /// Executes a loss-free move whose bulk state transfer goes *directly*
    /// from `src` to `dst` (footnote 10), copy-then-delete:
    ///
    /// 1. `enableEvents(filter, drop)` at src;
    /// 2. `transferPerflow`: src streams chunk batches straight to dst and
    ///    summarizes to the controller; dst summarizes its imports;
    /// 3. the controller reconciles the two summaries, re-requesting any
    ///    unconfirmed flows (a dropped batch costs one narrower round, not
    ///    the move);
    /// 4. only once every exported flow is confirmed imported does src
    ///    delete — an abort before that never loses state;
    /// 5. replay buffered events to dst and flip the router.
    ///
    /// On failure the destination is told to discard partial imports and
    /// tombstone in-flight batches (`abortTransfer`), then the move settles
    /// like [`RtController::move_flows_lossfree`].
    pub fn move_flows_p2p(
        &mut self,
        src: usize,
        dst: usize,
        filter: Filter,
    ) -> Result<MoveStats, RtError> {
        self.last_abort_lost.clear();
        let mut events: Vec<WireEvent> = Vec::new();
        let mut flipped = false;
        let mut abort: Option<(u64, Vec<FlowId>)> = None;
        match self.try_move_p2p(src, dst, filter, &mut events, &mut flipped, &mut abort) {
            Ok(mut stats) => {
                let (extra, lost) = self.settle(src, dst, filter, events);
                stats.events_replayed += extra;
                self.last_abort_lost = lost;
                Ok(stats)
            }
            Err(e) => {
                self.tel.event("move.abort", Some(e.to_string()));
                if let Some((through_id, imported)) = abort.take() {
                    // Best-effort teardown at the destination: delete the
                    // partial imports and tombstone every round so a chunk
                    // batch still in flight cannot resurrect them. Fenced:
                    // a duplicated abort must not re-delete flows a
                    // concurrent retry round re-imported.
                    if let Ok(id) = self
                        .call_fenced(dst, WireCall::AbortTransfer { flow_ids: imported, through_id })
                    {
                        let _ = self.await_reply(id, &mut events);
                    }
                }
                let replay_to = if flipped { dst } else { src };
                let (_, lost) = self.settle(src, replay_to, filter, events);
                self.last_abort_lost = lost;
                Err(e)
            }
        }
    }

    /// Waits for a P2P round's two summaries — the source's
    /// `TransferExported` and the destination's `TransferDone`, both
    /// correlated to `id`. A timeout leaves the corresponding side `None`:
    /// that is a round outcome the caller reconciles, not an operation
    /// error.
    #[allow(clippy::type_complexity)]
    fn await_transfer(
        &mut self,
        id: u64,
        events: &mut Vec<WireEvent>,
    ) -> Result<(Option<(Vec<FlowId>, u64)>, Option<Vec<FlowId>>), RtError> {
        let mut exported: Option<(Vec<FlowId>, u64)> = None;
        let mut done: Option<Vec<FlowId>> = None;
        let deadline = Instant::now() + self.reply_timeout;
        while exported.is_none() || done.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.recv_msg(left) {
                Recv::Timeout => break,
                Recv::Disconnected => return Err(RtError::ChannelClosed),
                Recv::Bad(e) => return Err(RtError::Wire(e)),
                Recv::Msg(WireMsg::Response { id: rid, reply }) if rid == id => match reply {
                    WireReply::TransferExported { flow_ids, bytes } => {
                        exported = Some((flow_ids, bytes));
                    }
                    WireReply::TransferDone { imported } => done = Some(imported),
                    WireReply::Error { message } => return Err(RtError::Wire(message)),
                    _ => {}
                },
                Recv::Msg(WireMsg::Event { worker, ev: WireEvent::NfFailed { reason } }) => {
                    return Err(RtError::NfFailed { worker, reason });
                }
                Recv::Msg(WireMsg::Event { ev, .. }) => {
                    self.c_events_pumped.fetch_add(1, Ordering::Relaxed);
                    events.push(ev);
                }
                Recv::Msg(_) => {}
            }
        }
        Ok((exported, done))
    }

    #[allow(clippy::too_many_arguments)]
    fn try_move_p2p(
        &mut self,
        src: usize,
        dst: usize,
        filter: Filter,
        events: &mut Vec<WireEvent>,
        flipped: &mut bool,
        abort: &mut Option<(u64, Vec<FlowId>)>,
    ) -> Result<MoveStats, RtError> {
        const ATTEMPTS: u32 = 3;
        let start = Instant::now();

        // Same five phases (and names) as the relayed move; here
        // "transfer" is the direct src → dst reconcile loop and "import"
        // the copy-then-delete release.
        let sp = self.tel.begin("move.export");
        let id = self.call(src, WireCall::EnableEvents { filter, action: WireAction::Drop })?;
        Self::expect_done(self.await_reply(id, events)?)?;
        self.tel.end(sp);

        let sp_transfer = self.tel.begin("move.transfer");
        let mut all_exported: Vec<FlowId> = Vec::new();
        let mut exported_set: HashSet<FlowId> = HashSet::new();
        let mut imported: Vec<FlowId> = Vec::new();
        let mut bytes = 0usize;
        // Empty = the whole filter; retries narrow to the unconfirmed gap.
        let mut only: Vec<FlowId> = Vec::new();
        let mut complete = false;
        for _ in 0..ATTEMPTS {
            let id =
                self.call(src, WireCall::TransferPerflow { filter, peer: dst, only: only.clone() })?;
            *abort = Some((id, imported.clone()));
            let (round_exported, round_done) = self.await_transfer(id, events)?;
            let both_acked = round_exported.is_some() && round_done.is_some();
            if let Some((flow_ids, round_bytes)) = round_exported {
                bytes += round_bytes as usize;
                for f in flow_ids {
                    if exported_set.insert(f) {
                        all_exported.push(f);
                    }
                }
            }
            if let Some(cumulative) = round_done {
                imported = cumulative; // dst reports cumulatively across rounds
            }
            *abort = Some((id, imported.clone()));
            let have: HashSet<FlowId> = imported.iter().copied().collect();
            only = all_exported.iter().filter(|f| !have.contains(f)).copied().collect();
            // Complete only when this round's *both* summaries landed and
            // every exported flow is confirmed — a missing summary retries
            // even with an empty gap, because the gap is then unknown.
            if both_acked && only.is_empty() {
                complete = true;
                break;
            }
            self.tel.event(
                "move.p2p_round",
                Some(format!("xfer={id} missing={}", only.len())),
            );
        }
        if !complete {
            return Err(RtError::Wire(format!(
                "P2P transfer incomplete after {ATTEMPTS} attempts ({} flows unconfirmed)",
                only.len()
            )));
        }
        self.tel.end(sp_transfer);
        // Copy-then-delete: the source lets go only now that every flow is
        // confirmed at the destination.
        let sp = self.tel.begin("move.import");
        if !imported.is_empty() {
            let id = self.call(src, WireCall::DelPerflow { flow_ids: imported.clone() })?;
            Self::expect_done(self.await_reply(id, events)?)?;
        }
        self.tel.end(sp);
        *abort = None;

        let sp = self.tel.begin("move.flush");
        let mut replayed =
            Self::replay_batch(&self.ctrl_links, dst, events.drain(..), &self.c_frames_encoded)?;
        self.tel.end(sp);
        let sp = self.tel.begin("move.fwd_update");
        self.router.install(10, filter, dst);
        *flipped = true;
        let deadline = Instant::now() + Duration::from_millis(200);
        while Instant::now() < deadline {
            match self.recv_msg(Duration::from_millis(20)) {
                Recv::Msg(WireMsg::Event { worker, ev: WireEvent::NfFailed { reason } }) => {
                    return Err(RtError::NfFailed { worker, reason });
                }
                Recv::Msg(WireMsg::Event { ev, .. }) => {
                    replayed += Self::replay(&self.ctrl_links, dst, ev)?;
                }
                Recv::Msg(_) | Recv::Bad(_) => {}
                Recv::Timeout => break,
                Recv::Disconnected => return Err(RtError::ChannelClosed),
            }
        }
        self.tel.end(sp);

        Ok(MoveStats {
            chunks: all_exported.len(),
            bytes,
            events_replayed: replayed,
            duration: start.elapsed(),
        })
    }

    fn try_move(
        &mut self,
        src: usize,
        dst: usize,
        filter: Filter,
        events: &mut Vec<WireEvent>,
        flipped: &mut bool,
    ) -> Result<MoveStats, RtError> {
        let start = Instant::now();

        // Per-phase spans tile the move with the same names (and begin
        // order) the simulator's MoveOp emits: export → transfer → import
        // → flush → fwd_update. An error mid-phase leaves that span open —
        // the flight recorder then shows exactly where the move died.
        let sp = self.tel.begin("move.export");
        let id = self.call(src, WireCall::EnableEvents { filter, action: WireAction::Drop })?;
        Self::expect_done(self.await_reply(id, events)?)?;

        let id = self.call(src, WireCall::GetPerflow { filter })?;
        let chunks = match self.await_reply(id, events)? {
            WireReply::Chunks { chunks } => chunks,
            WireReply::Error { message } => return Err(RtError::Wire(message)),
            other => return Err(RtError::Wire(format!("unexpected reply: {other:?}"))),
        };
        let bytes: usize = chunks.iter().map(|c| c.len()).sum();
        let n_chunks = chunks.len();
        let flow_ids: Vec<_> = chunks.iter().map(|c| c.flow_id).collect();
        self.tel.end(sp);

        let sp = self.tel.begin("move.transfer");
        let id = self.call(src, WireCall::DelPerflow { flow_ids })?;
        Self::expect_done(self.await_reply(id, events)?)?;
        self.tel.end(sp);

        let sp = self.tel.begin("move.import");
        let id = self.call(dst, WireCall::PutPerflow { chunks })?;
        Self::expect_done(self.await_reply(id, events)?)?;
        self.tel.end(sp);

        // Replay everything buffered so far, then flip the route. Events
        // still in flight after the flip drain in the background loop
        // below (the real controller keeps its event thread running; here
        // we poll the channel briefly after flipping).
        let sp = self.tel.begin("move.flush");
        let mut replayed =
            Self::replay_batch(&self.ctrl_links, dst, events.drain(..), &self.c_frames_encoded)?;
        self.tel.end(sp);
        let sp = self.tel.begin("move.fwd_update");
        self.router.install(10, filter, dst);
        *flipped = true;
        // Drain stragglers: packets that were already queued toward src
        // when the route flipped still raise events.
        let deadline = Instant::now() + Duration::from_millis(200);
        while Instant::now() < deadline {
            match self.recv_msg(Duration::from_millis(20)) {
                Recv::Msg(WireMsg::Event { worker, ev: WireEvent::NfFailed { reason } }) => {
                    return Err(RtError::NfFailed { worker, reason });
                }
                Recv::Msg(WireMsg::Event { ev, .. }) => {
                    replayed += Self::replay(&self.ctrl_links, dst, ev)?;
                }
                Recv::Msg(_) | Recv::Bad(_) => {}
                Recv::Timeout => break,
                Recv::Disconnected => return Err(RtError::ChannelClosed),
            }
        }
        self.tel.end(sp);

        Ok(MoveStats { chunks: n_chunks, bytes, events_replayed: replayed, duration: start.elapsed() })
    }

    /// Tears the move's event filter down at `src` over the *management
    /// channel* (the raw, unshimmed worker channel — standing in for the
    /// reliable control connection the paper's controller keeps), waits for
    /// the ack while collecting the events the teardown flushes out, and
    /// replays every collected event to `replay_to` marked
    /// do-not-buffer/do-not-drop. The worker channel is FIFO, so once the
    /// disable acks, no further events can be raised by that filter.
    /// Returns `(replayed, lost_uids)`: uids whose replay failed (dead
    /// worker) are the move's explicit loss accounting.
    fn settle(
        &mut self,
        src: usize,
        replay_to: usize,
        filter: Filter,
        mut events: Vec<WireEvent>,
    ) -> (usize, Vec<u64>) {
        events.extend(self.settle_collect(src, filter));
        self.replay_events_to(replay_to, events)
    }

    /// The teardown half of [`RtController::settle`]: disables the move's
    /// event filter at `src` and collects the events the teardown flushes
    /// out, without replaying them anywhere. A sharded control plane uses
    /// this to harvest the stragglers locally and ship them east-west to
    /// the shard that owns the destination.
    pub(crate) fn settle_collect(&mut self, src: usize, filter: Filter) -> Vec<WireEvent> {
        let mut events = Vec::new();
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.fence_seq;
        self.fence_seq += 1;
        // Fenced: settle can run after an abort already issued a disable
        // for the same filter; the fence keeps a duplicated teardown from
        // double-applying at the worker.
        let disable = WireMsg::Fenced {
            epoch: self.fence_epoch,
            seq,
            id,
            call: WireCall::DisableEvents { filter },
        };
        if self.workers[src].send(&disable).is_ok() {
            // Collect events until the ack (or the worker dies / times out).
            let deadline = Instant::now() + self.reply_timeout;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                match self.recv_msg(left) {
                    Recv::Msg(WireMsg::Response { id: rid, .. }) if rid == id => break,
                    Recv::Msg(WireMsg::Event { ev: WireEvent::NfFailed { .. }, .. }) => break,
                    Recv::Msg(WireMsg::Event { ev, .. }) => {
                        self.c_events_pumped.fetch_add(1, Ordering::Relaxed);
                        events.push(ev);
                    }
                    Recv::Msg(_) | Recv::Bad(_) => {}
                    Recv::Timeout | Recv::Disconnected => break,
                }
            }
        }
        events
    }

    /// The replay half of [`RtController::settle`]: ships every buffered
    /// event packet to local worker `replay_to` over the management
    /// channel (the abort path must converge even while the fault plan is
    /// hostile), coalesced into frames; a frame the dead worker never
    /// takes loses every packet inside it, and each uid is accounted.
    /// Returns `(replayed, lost_uids)`.
    pub(crate) fn replay_events_to(
        &mut self,
        replay_to: usize,
        events: Vec<WireEvent>,
    ) -> (usize, Vec<u64>) {
        let mut replayed = 0usize;
        let mut lost = Vec::new();
        let mut buf = FrameBuf::new();
        let mut pending: Vec<u64> = Vec::new();
        let flush =
            |buf: &mut FrameBuf, pending: &mut Vec<u64>, replayed: &mut usize, lost: &mut Vec<u64>| {
                if let Some(frame) = buf.finish() {
                    self.c_frames_encoded.fetch_add(1, Ordering::Relaxed);
                    if self.workers[replay_to].tx.send(frame).is_ok() {
                        *replayed += pending.len();
                    } else {
                        lost.append(pending);
                    }
                    pending.clear();
                }
            };
        for ev in events {
            if let WireEvent::PacketReceived { mut packet } = ev {
                packet.do_not_buffer = true;
                packet.do_not_drop = true;
                pending.push(packet.uid);
                buf.push(&WireMsg::Packet { packet });
                if buf.len() >= REPLAY_BATCH {
                    flush(&mut buf, &mut pending, &mut replayed, &mut lost);
                }
            }
        }
        flush(&mut buf, &mut pending, &mut replayed, &mut lost);
        lost.sort_unstable();
        lost.dedup();
        (replayed, lost)
    }

    /// Collects every event that arrives within `window`, without issuing
    /// any call. Used by the sharded control plane to drain stragglers
    /// (late buffered packets, processed-acks) after a cross-shard
    /// forwarding flip, before shipping them east-west.
    pub(crate) fn drain_events(
        &mut self,
        window: Duration,
    ) -> Result<Vec<WireEvent>, RtError> {
        let mut events = Vec::new();
        let deadline = Instant::now() + window;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.recv_msg(left.min(Duration::from_millis(20))) {
                Recv::Msg(WireMsg::Event { worker, ev: WireEvent::NfFailed { reason } }) => {
                    return Err(RtError::NfFailed { worker, reason });
                }
                Recv::Msg(WireMsg::Event { ev, .. }) => {
                    self.c_events_pumped.fetch_add(1, Ordering::Relaxed);
                    events.push(ev);
                }
                Recv::Msg(_) | Recv::Bad(_) | Recv::Timeout => {}
                Recv::Disconnected => break,
            }
        }
        Ok(events)
    }

    /// Shuts all workers down and returns their harnesses in index order.
    /// Shutdown bypasses the fault shim — teardown must not be droppable.
    pub fn shutdown(self) -> Vec<EventedNf> {
        // Drop the shimmed links first so the delay pump can drain and
        // exit once the workers join.
        drop(self.ctrl_links);
        drop(self.data_links);
        self.workers.into_iter().map(WorkerHandle::shutdown).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::PanicNf;
    use opennf_nfs::AssetMonitor;
    use opennf_packet::{FlowKey, Packet, TcpFlags};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pkt(uid: u64, flow: u16) -> Packet {
        Packet::builder(
            uid,
            FlowKey::tcp("10.0.0.1".parse().unwrap(), 2000 + flow, "1.1.1.1".parse().unwrap(), 80),
        )
        .flags(if uid <= 40 { TcpFlags::SYN } else { TcpFlags::ACK })
        .build()
    }

    #[test]
    fn lossfree_move_under_live_traffic() {
        let mut ctrl = RtController::new(vec![
            Box::new(AssetMonitor::new()),
            Box::new(AssetMonitor::new()),
        ]);

        // Generator thread: 2000 packets over 40 flows, ~50 µs apart,
        // routing through the shared router the whole time.
        let router = ctrl.router.clone();
        let tx0 = ctrl.worker_tx(0);
        let tx1 = ctrl.worker_tx(1);
        let sent = Arc::new(AtomicU64::new(0));
        let sent_gen = sent.clone();
        let gen = std::thread::spawn(move || {
            let txs = [tx0, tx1];
            for uid in 1..=2_000u64 {
                let p = pkt(uid, (uid % 40) as u16);
                if let Some(w) = router.route(&p) {
                    let _ = txs[w].send(WireMsg::Packet { packet: p }.to_json());
                }
                sent_gen.store(uid, Ordering::Release);
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        });

        // Rendezvous on packets actually sent, not wall time: once 200
        // packets are enqueued, every flow's SYN is queued ahead of the
        // move's first southbound request (the channel is FIFO), so all
        // 40 flows have state at the source when the export runs.
        while sent.load(Ordering::Acquire) < 200 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = ctrl.move_flows_lossfree(0, 1, Filter::any()).expect("move succeeds");
        assert_eq!(stats.chunks, 40, "all 40 flows moved");
        assert!(stats.bytes > 0);

        gen.join().unwrap();
        // Allow the last packets to drain.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let harnesses = ctrl.shutdown();

        // Loss-freedom: every generated packet was processed exactly once
        // (drops at src were replayed to dst via events).
        let h0 = &harnesses[0];
        let h1 = &harnesses[1];
        let mut all: Vec<u64> = h0.processed_log().iter().chain(h1.processed_log()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            h0.processed_log().len() + h1.processed_log().len(),
            "no packet processed twice"
        );
        assert_eq!(all.len(), 2_000, "every packet processed exactly once");
        assert!(!h1.processed_log().is_empty(), "destination took over");
        // The destination holds all flow state.
        let any: &dyn std::any::Any = h1.nf();
        let m1 = any.downcast_ref::<AssetMonitor>().unwrap();
        assert_eq!(m1.conn_count(), 40);
    }

    #[test]
    fn p2p_move_under_live_traffic_is_loss_free() {
        let mut ctrl = RtController::new(vec![
            Box::new(AssetMonitor::new()),
            Box::new(AssetMonitor::new()),
        ]);
        let router = ctrl.router.clone();
        let tx0 = ctrl.worker_tx(0);
        let tx1 = ctrl.worker_tx(1);
        let sent = Arc::new(AtomicU64::new(0));
        let sent_gen = sent.clone();
        let gen = std::thread::spawn(move || {
            let txs = [tx0, tx1];
            for uid in 1..=2_000u64 {
                let p = pkt(uid, (uid % 40) as u16);
                if let Some(w) = router.route(&p) {
                    let _ = txs[w].send(WireMsg::Packet { packet: p }.to_json());
                }
                sent_gen.store(uid, Ordering::Release);
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        });
        while sent.load(Ordering::Acquire) < 200 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = ctrl.move_flows_p2p(0, 1, Filter::any()).expect("p2p move succeeds");
        assert_eq!(stats.chunks, 40, "all 40 flows transferred directly");
        assert!(stats.bytes > 0);

        gen.join().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let harnesses = ctrl.shutdown();
        let (h0, h1) = (&harnesses[0], &harnesses[1]);
        let mut all: Vec<u64> =
            h0.processed_log().iter().chain(h1.processed_log()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            h0.processed_log().len() + h1.processed_log().len(),
            "no packet processed twice"
        );
        assert_eq!(all.len(), 2_000, "every packet processed exactly once");
        // Copy-then-delete completed: the source holds nothing, the
        // destination holds all 40 flows.
        let any: &dyn std::any::Any = h0.nf();
        assert_eq!(any.downcast_ref::<AssetMonitor>().unwrap().conn_count(), 0);
        let any: &dyn std::any::Any = h1.nf();
        assert_eq!(any.downcast_ref::<AssetMonitor>().unwrap().conn_count(), 40);
    }

    #[test]
    fn p2p_mesh_dials_lazily_and_counts_dials() {
        // Four workers could mean a 16-link mesh; one P2P move must dial
        // exactly one link (src → dst), observable via the dial counter.
        let tel = Telemetry::wall();
        let mut ctrl = RtController::new_with_telemetry(
            (0..4).map(|_| Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>).collect(),
            tel.clone(),
        );
        for uid in 1..=40u64 {
            ctrl.inject(pkt(uid, (uid % 8) as u16)).unwrap();
        }
        ctrl.quiesce(0).unwrap();
        ctrl.move_flows_p2p(0, 1, Filter::any()).expect("p2p move succeeds");
        assert_eq!(
            tel.counter("rt.p2p.dials").load(Ordering::Relaxed),
            1,
            "only the src → dst link is dialed"
        );
        assert!(
            tel.counter("rt.p2p.batches").load(Ordering::Relaxed) >= 1,
            "at least one chunk batch shipped on the dialed link"
        );
        ctrl.shutdown();
    }

    #[test]
    fn lossfree_move_emits_canonical_span_sequence() {
        let tel = Telemetry::wall();
        let mut ctrl = RtController::new_with_telemetry(
            vec![Box::new(AssetMonitor::new()), Box::new(AssetMonitor::new())],
            tel.clone(),
        );
        for uid in 1..=20u64 {
            ctrl.inject(pkt(uid, (uid % 4) as u16)).unwrap();
        }
        ctrl.quiesce(0).unwrap();
        ctrl.move_flows_lossfree(0, 1, Filter::any()).expect("move succeeds");
        assert_eq!(
            tel.span_sequence("move."),
            ["move.export", "move.transfer", "move.import", "move.flush", "move.fwd_update"],
            "the five phases tile the move in protocol order"
        );
        ctrl.shutdown();
    }

    #[test]
    fn move_surfaces_source_nf_failure_as_typed_error() {
        let mut ctrl = RtController::new(vec![
            Box::new(PanicNf::new(7)),
            Box::new(AssetMonitor::new()),
        ]);
        // The faulting packet is queued ahead of the move's requests, so
        // the source dies before (or while) answering them.
        for uid in 1..=7u64 {
            ctrl.inject(pkt(uid, (uid % 4) as u16)).expect("worker alive at enqueue time");
        }
        let res = ctrl.move_flows_lossfree(0, 1, Filter::any());
        match res {
            Err(RtError::NfFailed { worker: 0, reason }) => {
                assert!(reason.contains("injected NF bug"), "reason: {reason}");
            }
            // The worker may already have torn down its channel by the
            // time the first request is sent.
            Err(RtError::WorkerGone { worker: 0 }) => {}
            other => panic!("expected a source-failure error, got {other:?}"),
        }
        // The controller is not poisoned: the surviving worker still
        // answers southbound calls.
        let id = ctrl.call(1, WireCall::GetAllflows).unwrap();
        let mut events = Vec::new();
        assert!(matches!(ctrl.await_reply(id, &mut events), Ok(WireReply::Chunks { .. })));
    }
}
