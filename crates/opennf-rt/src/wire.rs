//! The JSON wire protocol (§7: "The controller and NFs exchange JSON
//! messages to invoke southbound functions, provide function results, and
//! send events"). Every message crossing a channel is serialized to a JSON
//! string and parsed on the far side — exactly the cost profile the
//! paper's controller has (and §8.3 profiles).

use opennf_nf::Chunk;
use opennf_packet::{Filter, FlowId, Packet};
use serde::{Deserialize, Serialize};

/// Event actions on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum WireAction {
    /// Process normally.
    Process,
    /// Buffer until disable.
    Buffer,
    /// Drop (the packet survives in the event).
    Drop,
}

impl From<WireAction> for opennf_nf::EventAction {
    fn from(a: WireAction) -> Self {
        match a {
            WireAction::Process => opennf_nf::EventAction::Process,
            WireAction::Buffer => opennf_nf::EventAction::Buffer,
            WireAction::Drop => opennf_nf::EventAction::Drop,
        }
    }
}

/// Southbound calls on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "call", rename_all = "snake_case")]
pub enum WireCall {
    /// Export per-flow state.
    GetPerflow {
        /// Selector.
        filter: Filter,
    },
    /// Import per-flow chunks.
    PutPerflow {
        /// Chunks.
        chunks: Vec<Chunk>,
    },
    /// Delete per-flow state.
    DelPerflow {
        /// Flow ids.
        flow_ids: Vec<FlowId>,
    },
    /// Streamed export: like [`WireCall::GetPerflow`], but the worker
    /// answers with a run of [`WireReply::ChunkBatch`] responses of at
    /// most `batch` chunks each, all correlated to the request id, the
    /// final one flagged `last` (sent even when empty, so the stream
    /// always terminates). The concurrent op engine pipelines these:
    /// early batches are already being imported at the destination while
    /// later ones are still being serialized at the source.
    GetPerflowChunked {
        /// Selector.
        filter: Filter,
        /// Max chunks per batch reply.
        batch: usize,
    },
    /// Export multi-flow state.
    GetMultiflow {
        /// Selector.
        filter: Filter,
    },
    /// Import multi-flow chunks.
    PutMultiflow {
        /// Chunks.
        chunks: Vec<Chunk>,
    },
    /// Export all-flows state.
    GetAllflows,
    /// Import all-flows chunks.
    PutAllflows {
        /// Chunks.
        chunks: Vec<Chunk>,
    },
    /// `enableEvents(filter, action)`.
    EnableEvents {
        /// Selector.
        filter: Filter,
        /// Action.
        action: WireAction,
    },
    /// `disableEvents(filter)`.
    DisableEvents {
        /// Selector.
        filter: Filter,
    },
    /// P2P bulk transfer (footnote 10): export matching per-flow state and
    /// stream the chunk batches straight to worker `peer` — the controller
    /// only gets the export summary back. An empty `only` means every flow
    /// matching `filter`; a retry narrows it to the unconfirmed flows.
    TransferPerflow {
        /// Selector.
        filter: Filter,
        /// Destination worker index.
        peer: usize,
        /// Retry narrowing; empty = all matching flows.
        only: Vec<FlowId>,
    },
    /// Abort a P2P transfer at the destination: delete the listed imports
    /// and tombstone every round whose correlation id is `<= through_id`,
    /// so straggler chunk batches still in flight are discarded instead of
    /// resurrecting state.
    AbortTransfer {
        /// Flows to delete (the destination's confirmed imports).
        flow_ids: Vec<FlowId>,
        /// Highest transfer correlation id being aborted.
        through_id: u64,
    },
}

/// Replies on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "snake_case")]
pub enum WireReply {
    /// Exported chunks.
    Chunks {
        /// The chunks.
        chunks: Vec<Chunk>,
    },
    /// Completion.
    Done,
    /// Error string.
    Error {
        /// What went wrong.
        message: String,
    },
    /// P2P source summary: which flows were shipped to the peer, and how
    /// many chunk bytes. The controller reconciles this against the
    /// destination's [`WireReply::TransferDone`].
    TransferExported {
        /// Flows exported this round, in serialization order.
        flow_ids: Vec<FlowId>,
        /// Total chunk bytes shipped.
        bytes: u64,
    },
    /// P2P destination summary: the cumulative set of flows imported for
    /// this transfer, sent when the `last` chunk batch arrives.
    TransferDone {
        /// Every flow imported so far (across retries).
        imported: Vec<FlowId>,
    },
    /// One batch of a streamed export ([`WireCall::GetPerflowChunked`]).
    ChunkBatch {
        /// Batch sequence number within the stream.
        seq: u64,
        /// True on the stream's final batch.
        last: bool,
        /// The chunk payload.
        chunks: Vec<Chunk>,
    },
    /// P2P destination progress: the flows one *non-final* chunk batch
    /// imported, acked as it lands. The controller accumulates these so
    /// a retry after a dropped [`WireReply::TransferDone`] re-requests
    /// only the flows no batch ever confirmed — batch-granular partial
    /// recovery instead of refetching the whole scope.
    TransferProgress {
        /// Sequence number of the confirmed chunk batch.
        seq: u64,
        /// Flows that batch imported.
        flow_ids: Vec<FlowId>,
    },
}

/// Events on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum WireEvent {
    /// A packet matching an event filter arrived.
    PacketReceived {
        /// Copy of the packet.
        packet: Packet,
    },
    /// A `do-not-drop` packet finished processing.
    PacketProcessed {
        /// Copy of the packet.
        packet: Packet,
    },
    /// The NF crashed (panicked) while processing; this is the worker's
    /// last message before its thread exits.
    NfFailed {
        /// The panic payload, stringified.
        reason: String,
    },
}

/// Any message on a channel: always shipped as serialized JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum WireMsg {
    /// Data-plane packet toward an instance.
    Packet {
        /// The packet.
        packet: Packet,
    },
    /// Controller → NF request.
    Request {
        /// Correlation id.
        id: u64,
        /// The call.
        call: WireCall,
        /// Span link: raw id of the controller telemetry span that sent
        /// this request, if telemetry is on — the worker's frame-decode
        /// span adopts it as parent, tying both sides of the southbound
        /// exchange into one trace tree.
        span: Option<u64>,
    },
    /// Controller → NF request under an idempotency fence: the worker
    /// applies a given `(epoch, id, seq)` at most once and discards calls
    /// from an epoch older than the newest it has seen. Calls reissued
    /// after a controller recovery travel in this envelope, so
    /// channel-level duplication — or a reissue racing its pre-crash
    /// original — cannot double-apply.
    Fenced {
        /// Controller recovery epoch.
        epoch: u64,
        /// Fence sequence number (unique per send within an epoch).
        seq: u64,
        /// Correlation id.
        id: u64,
        /// The call.
        call: WireCall,
        /// Span link (see [`WireMsg::Request::span`]).
        span: Option<u64>,
    },
    /// NF → controller response.
    Response {
        /// Correlation id.
        id: u64,
        /// The reply.
        reply: WireReply,
    },
    /// NF → controller event.
    Event {
        /// Which worker raised it.
        worker: usize,
        /// The event.
        ev: WireEvent,
    },
    /// Worker → worker chunk batch of a P2P bulk transfer (footnote 10).
    /// Never crosses a controller link. `id` is the correlation id of the
    /// [`WireCall::TransferPerflow`] that started the round; the
    /// destination answers the controller with `Response { id,
    /// TransferDone }` once the `last` batch lands.
    P2pChunks {
        /// Correlation id of the originating transfer request.
        id: u64,
        /// Batch sequence number within the round (diagnostics).
        seq: u64,
        /// True on the round's final batch.
        last: bool,
        /// The chunk payload.
        chunks: Vec<Chunk>,
    },
    /// Stop the worker thread.
    Shutdown,
}

impl WireMsg {
    /// Serializes to the JSON wire form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("wire message serializes")
    }

    /// Serializes the JSON wire form appended to `out`, so callers can
    /// reuse one buffer across many messages instead of allocating a
    /// fresh `String` each time.
    pub fn write_json(&self, out: &mut String) {
        self.to_value().encode_json_into(out);
    }

    /// Parses from the JSON wire form.
    pub fn from_json(s: &str) -> Result<WireMsg, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// A reusable frame assembler: messages accumulated since the last
/// [`finish`](FrameBuf::finish) are coalesced into one channel payload.
///
/// Frames are length-prefixed netstring runs by default
/// (`#<len>:<json><len>:<json>…`), which skip the closing-bracket scan on
/// decode. The `json-wire` feature restores the original framing: a
/// single message byte-identical to [`WireMsg::to_json`], several
/// messages as a JSON array of wire objects. [`decode_frame`] understands
/// all three forms unconditionally, so mixed-feature peers interoperate
/// and old captures still parse. State digests are independent of the
/// framing either way (they hash NF chunks, not wire bytes).
///
/// The internal buffer keeps its capacity across frames, so steady-state
/// encoding does no per-message allocation.
#[derive(Default)]
pub struct FrameBuf {
    scratch: String,
    #[cfg(not(feature = "json-wire"))]
    tmp: String,
    count: usize,
}

impl FrameBuf {
    /// An empty assembler.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends one message to the frame under assembly.
    pub fn push(&mut self, msg: &WireMsg) {
        #[cfg(not(feature = "json-wire"))]
        {
            use std::fmt::Write;
            self.tmp.clear();
            msg.write_json(&mut self.tmp);
            if self.count == 0 {
                self.scratch.push('#');
            }
            let _ = write!(self.scratch, "{}:", self.tmp.len());
            self.scratch.push_str(&self.tmp);
        }
        #[cfg(feature = "json-wire")]
        {
            self.scratch.push(if self.count == 0 { '[' } else { ',' });
            msg.write_json(&mut self.scratch);
        }
        self.count += 1;
    }

    /// Messages accumulated since the last `finish`.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Takes the assembled frame, leaving the assembler empty (capacity
    /// retained). `None` when nothing was pushed.
    pub fn finish(&mut self) -> Option<String> {
        let out = match self.count {
            0 => None,
            // Single message: strip the array framing so the payload is
            // exactly the bare wire form (digest-stable).
            1 if cfg!(feature = "json-wire") => Some(self.scratch[1..].to_string()),
            _ => {
                if cfg!(feature = "json-wire") {
                    self.scratch.push(']');
                }
                Some(self.scratch.clone())
            }
        };
        self.scratch.clear();
        self.count = 0;
        out
    }
}

/// Decodes one channel payload into the messages it frames. Accepts every
/// form a [`FrameBuf`] can emit regardless of compile-time features: a
/// bare JSON object (single message), a JSON array batch, or a
/// `#`-prefixed netstring batch.
pub fn decode_frame(raw: &str) -> Result<Vec<WireMsg>, serde_json::Error> {
    match raw.as_bytes().first() {
        Some(b'[') => {
            let v = serde::Value::parse_json(raw).map_err(serde_json::Error)?;
            let arr = v
                .as_array()
                .ok_or_else(|| serde_json::Error("frame is not an array".into()))?;
            arr.iter()
                .map(|e| {
                    use serde::Deserialize;
                    WireMsg::from_value(e).map_err(serde_json::Error::from)
                })
                .collect()
        }
        Some(b'#') => {
            let mut rest = &raw[1..];
            let mut out = Vec::new();
            while !rest.is_empty() {
                let colon = rest
                    .find(':')
                    .ok_or_else(|| serde_json::Error("netstring missing ':'".into()))?;
                let len: usize = rest[..colon]
                    .parse()
                    .map_err(|_| serde_json::Error("netstring bad length".into()))?;
                let body = rest
                    .get(colon + 1..colon + 1 + len)
                    .ok_or_else(|| serde_json::Error("netstring truncated".into()))?;
                out.push(WireMsg::from_json(body)?);
                rest = &rest[colon + 1 + len..];
            }
            Ok(out)
        }
        _ => WireMsg::from_json(raw).map(|m| vec![m]),
    }
}

/// Encodes a run of messages into channel payloads the way the runtime
/// ships them: coalesced into frames of at most `batch` messages, through
/// one reused buffer.
pub fn encode_frames(msgs: &[WireMsg], batch: usize) -> Vec<String> {
    let batch = batch.max(1);
    let mut buf = FrameBuf::new();
    let mut out = Vec::with_capacity(msgs.len().div_ceil(batch));
    for m in msgs {
        buf.push(m);
        if buf.len() >= batch {
            out.extend(buf.finish());
        }
    }
    out.extend(buf.finish());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_packet::FlowKey;

    #[test]
    fn roundtrip_request() {
        let m = WireMsg::Request {
            id: 7,
            call: WireCall::GetPerflow { filter: Filter::any() },
            span: Some(12),
        };
        let js = m.to_json();
        assert!(js.contains("\"type\":\"request\""));
        assert!(js.contains("get_perflow"));
        match WireMsg::from_json(&js).unwrap() {
            WireMsg::Request { id: 7, call: WireCall::GetPerflow { .. }, span: Some(12) } => {}
            other => panic!("bad roundtrip: {other:?}"),
        }
        // A pre-span-link request (no `span` member) still parses: the
        // field is an Option, and missing means None.
        let legacy = js.replace(",\"span\":12", "");
        assert!(!legacy.contains("span"), "span member stripped: {legacy}");
        match WireMsg::from_json(&legacy).unwrap() {
            WireMsg::Request { id: 7, span: None, .. } => {}
            other => panic!("bad legacy parse: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_fenced_request() {
        let m = WireMsg::Fenced {
            epoch: 2,
            seq: 41,
            id: 7,
            call: WireCall::DisableEvents { filter: Filter::any() },
            span: None,
        };
        let js = m.to_json();
        assert!(js.contains("\"type\":\"fenced\""));
        match WireMsg::from_json(&js).unwrap() {
            WireMsg::Fenced {
                epoch: 2, seq: 41, id: 7, call: WireCall::DisableEvents { .. }, ..
            } => {}
            other => panic!("bad roundtrip: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_chunk_batch_and_progress() {
        let m = WireMsg::Response {
            id: 3,
            reply: WireReply::ChunkBatch { seq: 2, last: true, chunks: Vec::new() },
        };
        match WireMsg::from_json(&m.to_json()).unwrap() {
            WireMsg::Response {
                id: 3,
                reply: WireReply::ChunkBatch { seq: 2, last: true, chunks },
            } => assert!(chunks.is_empty()),
            other => panic!("bad roundtrip: {other:?}"),
        }
        let m = WireMsg::Response {
            id: 4,
            reply: WireReply::TransferProgress { seq: 1, flow_ids: vec![FlowId::host("9.9.9.9".parse().unwrap())] },
        };
        match WireMsg::from_json(&m.to_json()).unwrap() {
            WireMsg::Response {
                id: 4,
                reply: WireReply::TransferProgress { seq: 1, flow_ids },
            } => assert_eq!(flow_ids, vec![FlowId::host("9.9.9.9".parse().unwrap())]),
            other => panic!("bad roundtrip: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_event_with_packet() {
        let k = FlowKey::tcp("10.0.0.1".parse().unwrap(), 1, "2.2.2.2".parse().unwrap(), 80);
        let p = Packet::builder(9, k).payload(&b"x"[..]).build();
        let m = WireMsg::Event { worker: 1, ev: WireEvent::PacketReceived { packet: p.clone() } };
        match WireMsg::from_json(&m.to_json()).unwrap() {
            WireMsg::Event { worker: 1, ev: WireEvent::PacketReceived { packet } } => {
                assert_eq!(packet, p)
            }
            other => panic!("bad roundtrip: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_nf_failed() {
        let m = WireMsg::Event {
            worker: 2,
            ev: WireEvent::NfFailed { reason: "index out of bounds".into() },
        };
        match WireMsg::from_json(&m.to_json()).unwrap() {
            WireMsg::Event { worker: 2, ev: WireEvent::NfFailed { reason } } => {
                assert_eq!(reason, "index out of bounds")
            }
            other => panic!("bad roundtrip: {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(WireMsg::from_json("{not json").is_err());
        assert!(WireMsg::from_json("{\"type\":\"nope\"}").is_err());
    }

    fn sample_msgs(n: u64) -> Vec<WireMsg> {
        let k = FlowKey::tcp("10.0.0.1".parse().unwrap(), 1, "2.2.2.2".parse().unwrap(), 80);
        (1..=n)
            .map(|uid| WireMsg::Event {
                worker: 0,
                ev: WireEvent::PacketProcessed { packet: Packet::builder(uid, k).build() },
            })
            .collect()
    }

    #[test]
    #[cfg_attr(not(feature = "json-wire"), ignore = "compact frames are not bare JSON")]
    fn single_message_frame_is_byte_identical_to_to_json() {
        let msgs = sample_msgs(1);
        let mut buf = FrameBuf::new();
        buf.push(&msgs[0]);
        assert_eq!(buf.finish().unwrap(), msgs[0].to_json());
    }

    #[test]
    fn frames_roundtrip_in_order() {
        let msgs = sample_msgs(10);
        let frames = encode_frames(&msgs, 4);
        assert_eq!(frames.len(), 3, "10 msgs at batch=4 => 4+4+2");
        let mut got = Vec::new();
        for f in &frames {
            got.extend(decode_frame(f).unwrap());
        }
        assert_eq!(got.len(), 10);
        for (a, b) in got.iter().zip(&msgs) {
            assert_eq!(a.to_json(), b.to_json());
        }
    }

    #[test]
    fn decode_frame_accepts_all_wire_forms() {
        let msgs = sample_msgs(3);
        // Bare single object.
        let one = decode_frame(&msgs[0].to_json()).unwrap();
        assert_eq!(one.len(), 1);
        // JSON array batch.
        let arr = format!("[{},{}]", msgs[0].to_json(), msgs[1].to_json());
        assert_eq!(decode_frame(&arr).unwrap().len(), 2);
        // Netstring batch.
        let (a, b) = (msgs[1].to_json(), msgs[2].to_json());
        let net = format!("#{}:{}{}:{}", a.len(), a, b.len(), b);
        let got = decode_frame(&net).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].to_json(), a);
        // Truncated netstring is an error, not a panic.
        assert!(decode_frame("#999:{\"type\"").is_err());
        assert!(decode_frame("[{\"type\":\"nope\"}]").is_err());
    }

    #[test]
    fn frame_buf_reuses_capacity() {
        let msgs = sample_msgs(8);
        let mut buf = FrameBuf::new();
        for m in &msgs {
            buf.push(m);
        }
        let first = buf.finish().unwrap();
        assert!(buf.is_empty());
        for m in &msgs {
            buf.push(m);
        }
        assert_eq!(buf.finish().unwrap(), first, "assembler state fully resets");
    }
}
