//! The JSON wire protocol (§7: "The controller and NFs exchange JSON
//! messages to invoke southbound functions, provide function results, and
//! send events"). Every message crossing a channel is serialized to a JSON
//! string and parsed on the far side — exactly the cost profile the
//! paper's controller has (and §8.3 profiles).

use opennf_nf::Chunk;
use opennf_packet::{Filter, FlowId, Packet};
use serde::{Deserialize, Serialize};

/// Event actions on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum WireAction {
    /// Process normally.
    Process,
    /// Buffer until disable.
    Buffer,
    /// Drop (the packet survives in the event).
    Drop,
}

impl From<WireAction> for opennf_nf::EventAction {
    fn from(a: WireAction) -> Self {
        match a {
            WireAction::Process => opennf_nf::EventAction::Process,
            WireAction::Buffer => opennf_nf::EventAction::Buffer,
            WireAction::Drop => opennf_nf::EventAction::Drop,
        }
    }
}

/// Southbound calls on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "call", rename_all = "snake_case")]
pub enum WireCall {
    /// Export per-flow state.
    GetPerflow {
        /// Selector.
        filter: Filter,
    },
    /// Import per-flow chunks.
    PutPerflow {
        /// Chunks.
        chunks: Vec<Chunk>,
    },
    /// Delete per-flow state.
    DelPerflow {
        /// Flow ids.
        flow_ids: Vec<FlowId>,
    },
    /// Export multi-flow state.
    GetMultiflow {
        /// Selector.
        filter: Filter,
    },
    /// Import multi-flow chunks.
    PutMultiflow {
        /// Chunks.
        chunks: Vec<Chunk>,
    },
    /// Export all-flows state.
    GetAllflows,
    /// Import all-flows chunks.
    PutAllflows {
        /// Chunks.
        chunks: Vec<Chunk>,
    },
    /// `enableEvents(filter, action)`.
    EnableEvents {
        /// Selector.
        filter: Filter,
        /// Action.
        action: WireAction,
    },
    /// `disableEvents(filter)`.
    DisableEvents {
        /// Selector.
        filter: Filter,
    },
}

/// Replies on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "snake_case")]
pub enum WireReply {
    /// Exported chunks.
    Chunks {
        /// The chunks.
        chunks: Vec<Chunk>,
    },
    /// Completion.
    Done,
    /// Error string.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// Events on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum WireEvent {
    /// A packet matching an event filter arrived.
    PacketReceived {
        /// Copy of the packet.
        packet: Packet,
    },
    /// A `do-not-drop` packet finished processing.
    PacketProcessed {
        /// Copy of the packet.
        packet: Packet,
    },
    /// The NF crashed (panicked) while processing; this is the worker's
    /// last message before its thread exits.
    NfFailed {
        /// The panic payload, stringified.
        reason: String,
    },
}

/// Any message on a channel: always shipped as serialized JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum WireMsg {
    /// Data-plane packet toward an instance.
    Packet {
        /// The packet.
        packet: Packet,
    },
    /// Controller → NF request.
    Request {
        /// Correlation id.
        id: u64,
        /// The call.
        call: WireCall,
    },
    /// NF → controller response.
    Response {
        /// Correlation id.
        id: u64,
        /// The reply.
        reply: WireReply,
    },
    /// NF → controller event.
    Event {
        /// Which worker raised it.
        worker: usize,
        /// The event.
        ev: WireEvent,
    },
    /// Stop the worker thread.
    Shutdown,
}

impl WireMsg {
    /// Serializes to the JSON wire form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("wire message serializes")
    }

    /// Parses from the JSON wire form.
    pub fn from_json(s: &str) -> Result<WireMsg, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_packet::FlowKey;

    #[test]
    fn roundtrip_request() {
        let m = WireMsg::Request {
            id: 7,
            call: WireCall::GetPerflow { filter: Filter::any() },
        };
        let js = m.to_json();
        assert!(js.contains("\"type\":\"request\""));
        assert!(js.contains("get_perflow"));
        match WireMsg::from_json(&js).unwrap() {
            WireMsg::Request { id: 7, call: WireCall::GetPerflow { .. } } => {}
            other => panic!("bad roundtrip: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_event_with_packet() {
        let k = FlowKey::tcp("10.0.0.1".parse().unwrap(), 1, "2.2.2.2".parse().unwrap(), 80);
        let p = Packet::builder(9, k).payload(&b"x"[..]).build();
        let m = WireMsg::Event { worker: 1, ev: WireEvent::PacketReceived { packet: p.clone() } };
        match WireMsg::from_json(&m.to_json()).unwrap() {
            WireMsg::Event { worker: 1, ev: WireEvent::PacketReceived { packet } } => {
                assert_eq!(packet, p)
            }
            other => panic!("bad roundtrip: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_nf_failed() {
        let m = WireMsg::Event {
            worker: 2,
            ev: WireEvent::NfFailed { reason: "index out of bounds".into() },
        };
        match WireMsg::from_json(&m.to_json()).unwrap() {
            WireMsg::Event { worker: 2, ev: WireEvent::NfFailed { reason } } => {
                assert_eq!(reason, "index out of bounds")
            }
            other => panic!("bad roundtrip: {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(WireMsg::from_json("{not json").is_err());
        assert!(WireMsg::from_json("{\"type\":\"nope\"}").is_err());
    }
}
