//! A sharded threaded control plane: one [`RtController`] per shard, a
//! shared global rule table, and an east-west message channel between
//! shards — the runtime mirror of the simulator's sharded controller.
//!
//! Each shard owns a contiguous run of workers and runs the ordinary
//! single-controller protocol against them. A move whose source and
//! destination live in the *same* shard delegates to that shard's
//! [`RtController`] unchanged. A move that *crosses* shards executes as a
//! two-shard handoff: the owning shard (the source's) drives the §5.1
//! phase sequence, and everything destined for the peer shard — imported
//! chunks, buffered-event replays, the commit/abort release — travels as
//! serialized [`EwMsg`] frames over the east-west link, never by touching
//! the peer's workers directly. That boundary is the point: a shard only
//! ever talks southbound to its own workers.
//!
//! Cross-shard transfers relay through the controllers: the P2P mesh is
//! a per-shard resource, so a direct NF → NF stream across the shard
//! boundary would bypass the ownership model the sharding exists to
//! enforce. The relay rides the same machinery as the in-shard op engine
//! (`opennf-rt::engine`): the source streams bounded `ChunkBatch` frames
//! that are forwarded east-west while later batches are still exporting,
//! the source's copy is deleted only after the peer confirms the import
//! (safe because `enableEvents(drop)` already quiesced the source), and
//! every phase boundary is journaled through the owning shard's
//! [`opennf_controller::JournalPhase`] ledger.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use opennf_controller::{JournalPhase, OpId, OpReport};
use opennf_nf::{Chunk, EventedNf, NetworkFunction};
use opennf_packet::{Filter, FlowId, Packet};
use opennf_telemetry::Telemetry;
use opennf_util::FaultPlan;
use serde::{Deserialize, Serialize};

use crate::controller::{MoveStats, RtController};
use crate::error::RtError;
use crate::faults::{FaultyChannel, RtFaults};
use crate::router::Router;
use crate::wire::{WireAction, WireCall, WireEvent, WireMsg, WireReply};

/// Replayed packets are coalesced into east-west frames of at most this
/// many packets, mirroring the southbound replay batching.
const EW_BATCH: usize = 64;

/// How long the owning shard polls its own workers for straggler events
/// after the global route flips.
const STRAGGLER_WINDOW: Duration = Duration::from_millis(200);

/// The east-west vocabulary between shard controllers. Every message is
/// serialized to JSON on the sending shard and parsed on the receiving
/// one — same cost profile as the southbound wire. The three messages
/// mirror the simulator's `EwWatch`/`EwForward`/`EwRelease` handoff.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "ew", rename_all = "snake_case")]
pub enum EwMsg {
    /// Imported state for a cross-shard move: the receiving shard applies
    /// `putPerflow(chunks)` at its local `worker`.
    PutChunks {
        /// Cross-shard operation id (for journaling/diagnostics).
        op: u64,
        /// Local worker index *within the receiving shard*.
        worker: usize,
        /// The state being handed over.
        chunks: Vec<Chunk>,
    },
    /// Buffered packets harvested on the owning shard, to be replayed at
    /// the receiving shard's local `worker` marked do-not-buffer /
    /// do-not-drop.
    Replay {
        /// Cross-shard operation id.
        op: u64,
        /// Local worker index within the receiving shard.
        worker: usize,
        /// The packets, in buffer order.
        packets: Vec<Packet>,
    },
    /// Abort purge for a cross-shard op: the receiving shard deletes the
    /// listed flows at its local `worker` — partial imports from a failed
    /// handoff must not survive as shadow state.
    DelFlows {
        /// Cross-shard operation id.
        op: u64,
        /// Local worker index within the receiving shard.
        worker: usize,
        /// Flows to purge.
        flow_ids: Vec<FlowId>,
    },
    /// Terminal release for a cross-shard op: the peer learns the outcome
    /// and drops any armed watch state.
    Release {
        /// Cross-shard operation id.
        op: u64,
        /// `true` for commit, `false` for abort.
        committed: bool,
    },
}

/// The sharded control plane: one [`RtController`] per shard plus the
/// global router and the east-west links.
///
/// Worker indices on this type are *global* (shard-major: shard 0's
/// workers first, then shard 1's, …); the internal map translates to
/// `(shard, local)` pairs.
pub struct ShardedRt {
    shards: Vec<RtController>,
    /// Global worker index → (shard, local worker index).
    map: Vec<(usize, usize)>,
    /// The global rule table generators route through. Rules installed
    /// here carry *global* worker indices.
    pub router: Arc<Router>,
    ew_tx: Vec<Sender<String>>,
    ew_rx: Vec<Receiver<String>>,
    tel: Telemetry,
    last_abort_lost: Vec<u64>,
}

impl ShardedRt {
    /// Spawns one [`RtController`] per entry of `shard_nfs` (each inner
    /// vector is one shard's workers) and installs a global default route
    /// to global worker 0. Wall-clock telemetry.
    pub fn new(shard_nfs: Vec<Vec<Box<dyn NetworkFunction>>>) -> Self {
        Self::new_with_telemetry(shard_nfs, Telemetry::wall())
    }

    /// Like [`ShardedRt::new`] with a caller-supplied telemetry handle,
    /// shared by every shard (keep a clone to read spans/metrics).
    pub fn new_with_telemetry(
        shard_nfs: Vec<Vec<Box<dyn NetworkFunction>>>,
        tel: Telemetry,
    ) -> Self {
        Self::build(shard_nfs, None, tel).0
    }

    /// Like [`ShardedRt::new_with_telemetry`], with shard 0's channels
    /// running through a [`FaultyChannel`] armed with `plan`. See
    /// [`ShardedRt::new_with_faults_on`] for targeting another shard.
    pub fn new_with_faults_and_telemetry(
        shard_nfs: Vec<Vec<Box<dyn NetworkFunction>>>,
        plan: FaultPlan,
        tel: Telemetry,
    ) -> (Self, Arc<RtFaults>) {
        Self::new_with_faults_on(shard_nfs, plan, 0, tel)
    }

    /// Arms `plan` on shard `fault_shard`'s channels (only). Faults stay
    /// confined to one shard: the plan's node ids name that shard's
    /// *local* workers, and mapping them across shard boundaries would
    /// silently re-target them. Returns the shared [`RtFaults`] ledger.
    pub fn new_with_faults_on(
        shard_nfs: Vec<Vec<Box<dyn NetworkFunction>>>,
        plan: FaultPlan,
        fault_shard: usize,
        tel: Telemetry,
    ) -> (Self, Arc<RtFaults>) {
        assert!(fault_shard < shard_nfs.len(), "fault shard exists");
        let (me, faults) = Self::build(shard_nfs, Some((plan, fault_shard)), tel);
        (me, faults.expect("fault plan was supplied"))
    }

    fn build(
        shard_nfs: Vec<Vec<Box<dyn NetworkFunction>>>,
        plan: Option<(FaultPlan, usize)>,
        tel: Telemetry,
    ) -> (Self, Option<Arc<RtFaults>>) {
        assert!(!shard_nfs.is_empty(), "at least one shard");
        let mut map = Vec::new();
        for (k, nfs) in shard_nfs.iter().enumerate() {
            for l in 0..nfs.len() {
                map.push((k, l));
            }
        }
        let mut shards = Vec::with_capacity(shard_nfs.len());
        let mut faults_out = None;
        for (k, nfs) in shard_nfs.into_iter().enumerate() {
            if let Some((plan, fault_shard)) = &plan {
                if k == *fault_shard {
                    let (ctrl, faults) = RtController::new_with_faults_and_telemetry(
                        nfs,
                        plan.clone(),
                        tel.clone(),
                    );
                    shards.push(ctrl);
                    faults_out = Some(faults);
                    continue;
                }
            }
            shards.push(RtController::new_with_telemetry(nfs, tel.clone()));
        }
        let router = Arc::new(Router::new());
        router.install(0, Filter::any(), 0);
        let mut ew_tx = Vec::new();
        let mut ew_rx = Vec::new();
        for _ in 0..shards.len() {
            let (tx, rx) = unbounded::<String>();
            ew_tx.push(tx);
            ew_rx.push(rx);
        }
        let me = Self {
            shards,
            map,
            router,
            ew_tx,
            ew_rx,
            tel,
            last_abort_lost: Vec::new(),
        };
        (me, faults_out)
    }

    /// Applies a southbound reply timeout to every shard.
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.shards =
            self.shards.into_iter().map(|s| s.with_reply_timeout(timeout)).collect();
        self
    }

    /// Applies an op-scheduling policy to every shard's engine
    /// ([`RtController::set_sched_policy`]).
    pub fn set_sched_policy(&mut self, policy: opennf_sched::SchedPolicy) {
        for s in &mut self.shards {
            s.set_sched_policy(policy);
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of workers across all shards.
    pub fn worker_count(&self) -> usize {
        self.map.len()
    }

    /// The shared telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Packet uids the last move could not replay (dead-worker frames),
    /// mirroring [`RtController::abort_lost`].
    pub fn abort_lost(&self) -> &[u64] {
        &self.last_abort_lost
    }

    /// Data-plane sender toward *global* worker `g` (fault-shimmed on
    /// shard 0 when a plan is armed).
    pub fn data_tx(&self, g: usize) -> FaultyChannel {
        let (k, l) = self.map[g];
        self.shards[k].data_tx(l)
    }

    /// Routes `pkt` through the global rule table and delivers it to the
    /// matching worker, if any.
    pub fn inject(&self, pkt: Packet) -> Result<(), RtError> {
        if let Some(g) = self.router.route(&pkt) {
            let (k, l) = self.map[g];
            self.shards[k]
                .data_tx(l)
                .send(&WireMsg::Packet { packet: pkt })
                .map_err(|_| RtError::WorkerGone { worker: g })?;
        }
        Ok(())
    }

    /// Drains global worker `g`'s data queue (see
    /// [`RtController::quiesce`]).
    pub fn quiesce(&mut self, g: usize) -> Result<(), RtError> {
        let (k, l) = self.map[g];
        self.shards[k].quiesce(l)
    }

    /// Shard `k`'s controller (fault hooks, crash/recovery test knobs).
    pub fn shard_mut(&mut self, k: usize) -> &mut RtController {
        &mut self.shards[k]
    }

    /// Shard `k`'s op journal: each shard keeps the same
    /// [`opennf_controller::JournalPhase`] ledger a single controller
    /// does, so a sharded soak can audit every shard's op history.
    pub fn journal(&self, k: usize) -> &opennf_controller::OpJournal {
        self.shards[k].journal()
    }

    /// Every shard's journal as JSON, newline-joined — the same capture
    /// shape the sim's sharded control plane exposes.
    pub fn journal_json(&self) -> String {
        self.shards.iter().map(|s| s.journal_json()).collect::<Vec<_>>().join("\n")
    }

    /// Runs a batch of *same-shard* moves through each owning shard's
    /// concurrent op engine ([`RtController::run_moves`]): specs are
    /// `(src, dst, filter)` in global worker indices, results come back
    /// in spec order, and committed routes are mirrored into the global
    /// table. Specs whose endpoints straddle a shard boundary fail with
    /// a wire error — cross-shard moves keep the two-shard handoff path
    /// ([`ShardedRt::move_flows_cross`]).
    pub fn run_moves(
        &mut self,
        specs: Vec<(usize, usize, Filter)>,
    ) -> Vec<Result<MoveStats, RtError>> {
        self.last_abort_lost.clear();
        let mut results: Vec<Option<Result<MoveStats, RtError>>> =
            specs.iter().map(|_| None).collect();
        // Group by owning shard, preserving submission order within each.
        let mut per_shard: Vec<Vec<(usize, crate::engine::OpSpec)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, &(src, dst, filter)) in specs.iter().enumerate() {
            let (sa, a_l) = self.map[src];
            let (sb, b_l) = self.map[dst];
            if sa != sb {
                results[i] = Some(Err(RtError::Wire(format!(
                    "run_moves is same-shard only: {src} is on shard {sa}, {dst} on {sb}"
                ))));
                continue;
            }
            per_shard[sa].push((i, crate::engine::OpSpec::mv(a_l, b_l, filter)));
        }
        for (k, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (idxs, shard_specs): (Vec<usize>, Vec<crate::engine::OpSpec>) =
                batch.into_iter().unzip();
            let outcomes = self.shards[k].run_moves(shard_specs);
            self.last_abort_lost.extend(self.shards[k].abort_lost().iter().copied());
            for (i, r) in idxs.into_iter().zip(outcomes) {
                if r.is_ok() {
                    let (_, dst, filter) = specs[i];
                    self.router.install(10, filter, dst);
                }
                results[i] = Some(r);
            }
        }
        results.into_iter().map(|r| r.expect("every spec resolved")).collect()
    }

    /// Shuts every shard down, shard-major — harness order matches the
    /// global worker order.
    pub fn shutdown(self) -> Vec<EventedNf> {
        self.shards.into_iter().flat_map(RtController::shutdown).collect()
    }

    /// Moves all flows matching `filter` from global worker `src` to
    /// global worker `dst`, loss-free.
    ///
    /// * Same shard: delegates to that shard's
    ///   [`RtController::move_flows_p2p`] (when `p2p`) or
    ///   [`RtController::move_flows_lossfree`], then mirrors the committed
    ///   route into the global table.
    /// * Cross shard: the source's shard drives the five-phase handoff;
    ///   chunks and replays reach the destination's shard as [`EwMsg`]
    ///   frames. `p2p` is accepted but the transfer still relays through
    ///   the controllers — the shard boundary owns connectivity.
    pub fn move_flows_cross(
        &mut self,
        src: usize,
        dst: usize,
        filter: Filter,
        p2p: bool,
    ) -> Result<MoveStats, RtError> {
        let (sa, a_l) = self.map[src];
        let (sb, b_l) = self.map[dst];
        self.last_abort_lost.clear();
        if sa == sb {
            let r = if p2p {
                self.shards[sa].move_flows_p2p(a_l, b_l, filter)
            } else {
                self.shards[sa].move_flows_lossfree(a_l, b_l, filter)
            };
            self.last_abort_lost = self.shards[sa].abort_lost().to_vec();
            if r.is_ok() {
                self.router.install(10, filter, dst);
            }
            return r;
        }

        // The op id comes from the owning shard's mint so the handoff's
        // journal records share one id space with that shard's in-shard
        // ops; it also tags the east-west frames.
        let op = self.shards[sa].mint_op();
        // Shard-tagged so the happens-before oracle can pair this with the
        // peer's `ew.release` per shard pair and bound transport latency.
        self.tel.event(
            "ew.handoff",
            Some(format!("op={} {src}->{dst} shard={sa} peer={sb}", op.0)),
        );
        let mut report = OpReport::new(op, "move[LF ew]".into(), self.tel.now_ns());

        let mut events: Vec<WireEvent> = Vec::new();
        let mut flipped = false;
        // Flows already forwarded east-west, and whether the source's copy
        // was deleted: an abort in between purges the peer's partial
        // import so the state never exists in two places.
        let mut shipped: Vec<FlowId> = Vec::new();
        let mut deleted = false;
        let r = self.try_cross(
            op, &mut report, sa, a_l, sb, b_l, dst, filter, &mut events, &mut flipped,
            &mut shipped, &mut deleted,
        );
        match r {
            Ok(mut stats) => {
                // Settle: tear the event filter down at the source, ship
                // the tail east-west, release the peer.
                let tail = self.shards[sa].settle_collect(a_l, filter);
                events.extend(tail);
                let (extra, lost) = self.ew_replay(op.0, sb, b_l, std::mem::take(&mut events))?;
                stats.events_replayed += extra;
                self.last_abort_lost = lost;
                self.ew_send(sb, &EwMsg::Release { op: op.0, committed: true });
                self.drain_ew(sb)?;
                report.events_released = stats.events_replayed;
                report.end_ns = self.tel.now_ns();
                self.shards[sa].jlog(op, JournalPhase::Committed, &report);
                Ok(stats)
            }
            // A journal crash hook fired mid-handoff: stop driving — no
            // more sends — and leave the op non-terminal for recovery.
            Err(RtError::CtrlCrashed) => Err(RtError::CtrlCrashed),
            Err(e) => {
                self.tel.event("move.abort", Some(e.to_string()));
                // Purge: batches the peer already imported are deleted
                // there — the route still points at the source, which
                // kept its copy until the peer confirmed.
                if !shipped.is_empty() && !deleted {
                    self.ew_send(
                        sb,
                        &EwMsg::DelFlows { op: op.0, worker: b_l, flow_ids: shipped },
                    );
                    let _ = self.drain_ew(sb);
                }
                let tail = self.shards[sa].settle_collect(a_l, filter);
                events.extend(tail);
                let lost = if flipped {
                    let (_, lost) = self.ew_replay(op.0, sb, b_l, std::mem::take(&mut events))?;
                    lost
                } else {
                    let (_, lost) =
                        self.shards[sa].replay_events_to(a_l, std::mem::take(&mut events));
                    lost
                };
                self.last_abort_lost = lost.clone();
                self.ew_send(sb, &EwMsg::Release { op: op.0, committed: false });
                self.drain_ew(sb)?;
                report.abort(e.to_string(), None);
                report.abort_lost.extend(lost);
                report.end_ns = self.tel.now_ns();
                self.shards[sa].jlog(op, JournalPhase::Aborted, &report);
                Err(e)
            }
        }
    }

    /// The happy path of a cross-shard move: the same five phases (and
    /// span names) as the in-shard op engine, with the transfer leg
    /// crossing the east-west link. Journal phases are appended through
    /// the owning shard's ledger at each boundary; a fired crash hook
    /// stops the handoff with [`RtError::CtrlCrashed`].
    #[allow(clippy::too_many_arguments)]
    fn try_cross(
        &mut self,
        op: OpId,
        report: &mut OpReport,
        sa: usize,
        a_l: usize,
        sb: usize,
        b_l: usize,
        dst_global: usize,
        filter: Filter,
        events: &mut Vec<WireEvent>,
        flipped: &mut bool,
        shipped: &mut Vec<FlowId>,
        deleted: &mut bool,
    ) -> Result<MoveStats, RtError> {
        let start = std::time::Instant::now();

        // Export: quiesce the source, then stream bounded chunk batches —
        // each one forwarded east-west as it lands, while later batches
        // are still exporting (the engine's pipelining, stretched across
        // the shard boundary).
        let sp = self.tel.begin("move.export");
        let id = self.shards[sa]
            .call(a_l, WireCall::EnableEvents { filter, action: WireAction::Drop })?;
        RtController::expect_done(self.shards[sa].await_reply(id, events)?)?;
        if self.shards[sa].jlog(op, JournalPhase::Armed, report) {
            return Err(RtError::CtrlCrashed);
        }
        let id = self.shards[sa]
            .call(a_l, WireCall::GetPerflowChunked { filter, batch: crate::engine::STREAM_BATCH })?;
        let mut n_chunks = 0usize;
        let mut bytes = 0usize;
        let mut next_seq = 0u64;
        loop {
            match self.shards[sa].await_reply(id, events)? {
                WireReply::ChunkBatch { seq, last, chunks } => {
                    // A sequence gap means a dropped batch: abort rather
                    // than hand over a silently partial export.
                    if seq != next_seq {
                        return Err(RtError::Wire(format!(
                            "chunk batch gap: got seq {seq}, expected {next_seq}"
                        )));
                    }
                    next_seq += 1;
                    n_chunks += chunks.len();
                    bytes += chunks.iter().map(|c| c.len()).sum::<usize>();
                    shipped.extend(chunks.iter().map(|c| c.flow_id));
                    if !chunks.is_empty() {
                        self.ew_send(sb, &EwMsg::PutChunks { op: op.0, worker: b_l, chunks });
                    }
                    if last {
                        break;
                    }
                }
                WireReply::Error { message } => return Err(RtError::Wire(message)),
                other => return Err(RtError::Wire(format!("unexpected reply: {other:?}"))),
            }
        }
        self.tel.end(sp);
        report.chunks = n_chunks;
        report.bytes = bytes as u64;
        if self.shards[sa].jlog(op, JournalPhase::ExportDone, report) {
            return Err(RtError::CtrlCrashed);
        }

        // Transfer: the peer shard applies the queued frames southbound.
        let sp = self.tel.begin("move.transfer");
        self.drain_ew(sb)?;
        self.tel.end(sp);
        if self.shards[sa].jlog(op, JournalPhase::Transferred, report) {
            return Err(RtError::CtrlCrashed);
        }

        // Import boundary: only now — with the peer's copy confirmed —
        // delete at the source. No double-processing window: the source
        // has been buffer-and-dropping since enableEvents.
        let sp = self.tel.begin("move.import");
        let id = self.shards[sa].call(a_l, WireCall::DelPerflow { flow_ids: shipped.clone() })?;
        RtController::expect_done(self.shards[sa].await_reply(id, events)?)?;
        *deleted = true;
        self.tel.end(sp);
        if self.shards[sa].jlog(op, JournalPhase::Imported, report) {
            return Err(RtError::CtrlCrashed);
        }

        let sp = self.tel.begin("move.flush");
        let (mut replayed, mut lost) = self.ew_replay(op.0, sb, b_l, std::mem::take(events))?;
        self.tel.end(sp);
        if self.shards[sa].jlog(op, JournalPhase::Flushed, report) {
            return Err(RtError::CtrlCrashed);
        }

        let sp = self.tel.begin("move.fwd_update");
        self.router.install(10, filter, dst_global);
        *flipped = true;
        // Stragglers: packets already queued toward the source when the
        // route flipped still raise events there. Ship each batch east-west
        // *as it surfaces* — waiting out the whole window first would queue
        // the replays behind the live tail at the destination, processing
        // old-ingress packets last.
        let deadline = std::time::Instant::now() + STRAGGLER_WINDOW;
        while std::time::Instant::now() < deadline {
            let tail = self.shards[sa].drain_events(Duration::from_millis(20))?;
            if tail.is_empty() {
                continue;
            }
            let (r, l) = self.ew_replay(op.0, sb, b_l, tail)?;
            replayed += r;
            lost.extend(l);
        }
        self.tel.end(sp);

        if !lost.is_empty() {
            lost.sort_unstable();
            lost.dedup();
            self.last_abort_lost = lost;
        }
        Ok(MoveStats { chunks: n_chunks, bytes, events_replayed: replayed, duration: start.elapsed() })
    }

    /// Serializes `msg` onto shard `k`'s east-west mailbox.
    fn ew_send(&self, k: usize, msg: &EwMsg) {
        let frame = serde_json::to_string(msg).expect("EwMsg serializes");
        self.tel.counter("rt.ew.frames").fetch_add(1, Ordering::Relaxed);
        self.tel.counter("rt.ew.bytes").fetch_add(frame.len() as u64, Ordering::Relaxed);
        let _ = self.ew_tx[k].send(frame);
    }

    /// Processes every east-west frame queued at shard `k`, acting as that
    /// shard's controller: imports land as `putPerflow` at the named local
    /// worker, replays go out marked do-not-buffer/do-not-drop, releases
    /// are journaled to telemetry. Returns `(replayed, lost_uids)`.
    fn drain_ew(&mut self, k: usize) -> Result<(usize, Vec<u64>), RtError> {
        let mut replayed = 0usize;
        let mut lost = Vec::new();
        while let Ok(frame) = self.ew_rx[k].try_recv() {
            let msg: EwMsg =
                serde_json::from_str(&frame).map_err(|e| RtError::Wire(e.to_string()))?;
            match msg {
                EwMsg::PutChunks { worker, chunks, .. } => {
                    let sh = &mut self.shards[k];
                    let id = sh.call(worker, WireCall::PutPerflow { chunks })?;
                    let mut evs = Vec::new();
                    RtController::expect_done(sh.await_reply(id, &mut evs)?)?;
                    let (r, l) = sh.replay_events_to(worker, evs);
                    replayed += r;
                    lost.extend(l);
                }
                EwMsg::DelFlows { worker, flow_ids, .. } => {
                    let sh = &mut self.shards[k];
                    let id = sh.call(worker, WireCall::DelPerflow { flow_ids })?;
                    let mut evs = Vec::new();
                    RtController::expect_done(sh.await_reply(id, &mut evs)?)?;
                    let (r, l) = sh.replay_events_to(worker, evs);
                    replayed += r;
                    lost.extend(l);
                }
                EwMsg::Replay { worker, packets, .. } => {
                    let evs: Vec<WireEvent> = packets
                        .into_iter()
                        .map(|packet| WireEvent::PacketReceived { packet })
                        .collect();
                    let (r, l) = self.shards[k].replay_events_to(worker, evs);
                    replayed += r;
                    lost.extend(l);
                }
                EwMsg::Release { op, committed } => {
                    self.tel.event(
                        "ew.release",
                        Some(format!("op={op} committed={committed} shard={k}")),
                    );
                }
            }
        }
        Ok((replayed, lost))
    }

    /// Ships the packet events in `events` east-west to shard `k` as
    /// [`EwMsg::Replay`] frames of at most [`EW_BATCH`] packets, then
    /// drains the peer so they are applied. Returns `(replayed,
    /// lost_uids)`.
    fn ew_replay(
        &mut self,
        op: u64,
        k: usize,
        worker: usize,
        events: Vec<WireEvent>,
    ) -> Result<(usize, Vec<u64>), RtError> {
        let mut batch: Vec<Packet> = Vec::new();
        for ev in events {
            if let WireEvent::PacketReceived { packet } = ev {
                batch.push(packet);
                if batch.len() >= EW_BATCH {
                    self.ew_send(k, &EwMsg::Replay { op, worker, packets: std::mem::take(&mut batch) });
                }
            }
        }
        if !batch.is_empty() {
            self.ew_send(k, &EwMsg::Replay { op, worker, packets: batch });
        }
        self.drain_ew(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_nfs::AssetMonitor;
    use opennf_packet::{FlowKey, TcpFlags};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pkt(uid: u64, flow: u16) -> Packet {
        Packet::builder(
            uid,
            FlowKey::tcp("10.0.0.1".parse().unwrap(), 2000 + flow, "1.1.1.1".parse().unwrap(), 80),
        )
        .flags(if uid <= 40 { TcpFlags::SYN } else { TcpFlags::ACK })
        .build()
    }

    fn two_shards() -> ShardedRt {
        ShardedRt::new(vec![
            vec![Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>],
            vec![Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>],
        ])
    }

    #[test]
    fn cross_shard_move_under_live_traffic_is_loss_free() {
        let mut ctrl = two_shards();
        let router = ctrl.router.clone();
        let txs = [ctrl.data_tx(0), ctrl.data_tx(1)];
        let sent = Arc::new(AtomicU64::new(0));
        let sent_gen = sent.clone();
        let gen = std::thread::spawn(move || {
            for uid in 1..=2_000u64 {
                let p = pkt(uid, (uid % 40) as u16);
                if let Some(w) = router.route(&p) {
                    let _ = txs[w].send(&WireMsg::Packet { packet: p });
                }
                sent_gen.store(uid, Ordering::Release);
                std::thread::sleep(Duration::from_micros(50));
            }
        });
        while sent.load(Ordering::Acquire) < 200 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = ctrl.move_flows_cross(0, 1, Filter::any(), false).expect("handoff succeeds");
        assert_eq!(stats.chunks, 40, "all 40 flows handed over");
        assert!(stats.bytes > 0);
        assert!(
            ctrl.telemetry().counter("rt.ew.frames").load(Ordering::Relaxed) > 0,
            "state crossed the east-west link"
        );

        gen.join().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(ctrl.abort_lost().is_empty(), "no replay frames lost");
        let harnesses = ctrl.shutdown();
        let (h0, h1) = (&harnesses[0], &harnesses[1]);
        let mut all: Vec<u64> =
            h0.processed_log().iter().chain(h1.processed_log()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            h0.processed_log().len() + h1.processed_log().len(),
            "no packet processed twice"
        );
        assert_eq!(all.len(), 2_000, "every packet processed exactly once");
        let any: &dyn std::any::Any = h0.nf();
        assert_eq!(any.downcast_ref::<AssetMonitor>().unwrap().conn_count(), 0, "source deleted");
        let any: &dyn std::any::Any = h1.nf();
        assert_eq!(any.downcast_ref::<AssetMonitor>().unwrap().conn_count(), 40);
    }

    #[test]
    fn cross_shard_move_emits_canonical_span_sequence() {
        let tel = Telemetry::wall();
        let mut ctrl = ShardedRt::new_with_telemetry(
            vec![
                vec![Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>],
                vec![Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>],
            ],
            tel.clone(),
        );
        for uid in 1..=20u64 {
            ctrl.inject(pkt(uid, (uid % 4) as u16)).unwrap();
        }
        ctrl.quiesce(0).unwrap();
        ctrl.move_flows_cross(0, 1, Filter::any(), true).expect("handoff succeeds");
        assert_eq!(
            tel.span_sequence("move."),
            ["move.export", "move.transfer", "move.import", "move.flush", "move.fwd_update"],
            "the cross-shard handoff tiles the same five phases"
        );
        ctrl.shutdown();
    }

    #[test]
    fn same_shard_move_delegates_and_mirrors_global_route() {
        let mut ctrl = ShardedRt::new(vec![vec![
            Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>,
            Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>,
        ]]);
        for uid in 1..=20u64 {
            ctrl.inject(pkt(uid, (uid % 4) as u16)).unwrap();
        }
        ctrl.quiesce(0).unwrap();
        let stats = ctrl.move_flows_cross(0, 1, Filter::any(), true).expect("p2p move succeeds");
        assert_eq!(stats.chunks, 4);
        // The committed route is visible in the *global* table.
        assert_eq!(ctrl.router.route(&pkt(99, 1)), Some(1));
        let harnesses = ctrl.shutdown();
        let any: &dyn std::any::Any = harnesses[1].nf();
        assert_eq!(any.downcast_ref::<AssetMonitor>().unwrap().conn_count(), 4);
    }
}
