//! The software switch of the threaded runtime: an atomically-updated
//! priority rule table mapping packets to worker indices. Generator
//! threads call [`Router::route`] on every packet; the controller swaps
//! rules during a move.

use parking_lot::RwLock;

use opennf_packet::{Filter, Packet};

/// One rule: priority, match, worker index.
#[derive(Debug, Clone)]
struct Rule {
    priority: u16,
    filter: Filter,
    worker: usize,
}

/// The rule table. Cheap reads (every packet), rare writes (moves).
#[derive(Default)]
pub struct Router {
    rules: RwLock<Vec<Rule>>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a rule. Higher priority wins; equal priority, later
    /// install wins.
    pub fn install(&self, priority: u16, filter: Filter, worker: usize) {
        let mut rules = self.rules.write();
        let pos = rules.iter().position(|r| r.priority <= priority).unwrap_or(rules.len());
        rules.insert(pos, Rule { priority, filter, worker });
    }

    /// Routes a packet to a worker index, if any rule matches.
    pub fn route(&self, pkt: &Packet) -> Option<usize> {
        let rules = self.rules.read();
        rules.iter().find(|r| r.filter.matches_packet(pkt)).map(|r| r.worker)
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.read().len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_packet::FlowKey;

    fn pkt(src: &str) -> Packet {
        Packet::builder(
            1,
            FlowKey::tcp(src.parse().unwrap(), 1, "1.1.1.1".parse().unwrap(), 80),
        )
        .build()
    }

    #[test]
    fn priority_routing() {
        let r = Router::new();
        r.install(0, Filter::any(), 0);
        r.install(10, Filter::from_src("10.0.0.0/8".parse().unwrap()), 1);
        assert_eq!(r.route(&pkt("10.1.1.1")), Some(1));
        assert_eq!(r.route(&pkt("11.1.1.1")), Some(0));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_router_routes_nothing() {
        let r = Router::new();
        assert!(r.is_empty());
        assert_eq!(r.route(&pkt("10.0.0.1")), None);
    }

    #[test]
    fn concurrent_reads_during_write() {
        use std::sync::Arc;
        let r = Arc::new(Router::new());
        r.install(0, Filter::any(), 0);
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let _ = r.route(&pkt("10.0.0.1"));
                    }
                })
            })
            .collect();
        for i in 0..50 {
            r.install(1 + i, Filter::any(), (i % 2) as usize);
        }
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(r.len(), 51);
    }
}
