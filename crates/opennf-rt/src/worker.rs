//! NF worker threads: each wraps an [`EventedNf`] and speaks the JSON wire
//! protocol over crossbeam channels.
//!
//! Workers are failure-contained: a panic inside the NF is caught per
//! message, reported to the controller as [`WireEvent::NfFailed`], and the
//! thread exits cleanly — it never unwinds across the channel and never
//! leaves the controller blocked on a reply that will not come.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use opennf_nf::{Chunk, EventedNf, NetworkFunction, NfEvent};
use opennf_packet::{Filter, FlowId};
use opennf_telemetry::Telemetry;

use crate::error::RtError;
use crate::faults::{worker_node, FaultyChannel, PumpJob, RtFaults};
use crate::wire::{decode_frame, FrameBuf, WireCall, WireEvent, WireMsg, WireReply};

/// Chunks per direct worker → worker frame in a P2P bulk transfer.
const P2P_BATCH_CHUNKS: usize = 64;

/// The ingredients for dialing a direct worker → worker link, installed by
/// the controller once every worker inbox exists.
struct MeshWiring {
    /// The worker this mesh belongs to (fault plans address links by
    /// source node).
    src: usize,
    /// Every worker's inbox, by index (including our own — self-transfers
    /// are rejected upstream).
    peer_txs: Vec<Sender<String>>,
    /// Fault shim to thread each dialed link through, if a plan is armed.
    faults: Option<(Arc<RtFaults>, Sender<PumpJob>)>,
}

/// Lazily dialed direct worker → worker links for P2P bulk transfer.
///
/// The controller installs the wiring (inboxes + fault shim) after
/// spawning every worker, but no link exists until a transfer actually
/// targets that peer: the first use dials it (constructing the possibly
/// shimmed channel) and every dial is counted, so an O(n²) mesh is never
/// materialized for workloads that move state between a handful of peers.
pub struct PeerMesh {
    wiring: OnceLock<MeshWiring>,
    links: Vec<OnceLock<FaultyChannel>>,
    dials: Arc<AtomicU64>,
}

impl PeerMesh {
    /// A mesh over `n` workers whose dials increment `dials` (the shared
    /// `rt.p2p.dials` telemetry counter).
    pub fn new(n: usize, dials: Arc<AtomicU64>) -> Arc<Self> {
        Arc::new(PeerMesh {
            wiring: OnceLock::new(),
            links: (0..n).map(|_| OnceLock::new()).collect(),
            dials,
        })
    }

    /// A mesh that was never wired: every transfer request fails (workers
    /// spawned outside a controller have no peers).
    pub fn unwired() -> Arc<Self> {
        Self::new(0, Arc::new(AtomicU64::new(0)))
    }

    /// Installs the dialing ingredients. Called once by the controller
    /// after all workers are spawned; later calls are ignored.
    pub fn wire(
        &self,
        src: usize,
        peer_txs: Vec<Sender<String>>,
        faults: Option<(Arc<RtFaults>, Sender<PumpJob>)>,
    ) {
        let _ = self.wiring.set(MeshWiring { src, peer_txs, faults });
    }

    /// The link to `peer`, dialing it on first use.
    fn link(&self, peer: usize) -> Result<&FaultyChannel, String> {
        let Some(w) = self.wiring.get() else {
            return Err("peer links not wired (no P2P mesh)".into());
        };
        let Some(cell) = self.links.get(peer) else {
            return Err(format!("no peer link to worker {peer}"));
        };
        Ok(cell.get_or_init(|| {
            self.dials.fetch_add(1, Ordering::Relaxed);
            match &w.faults {
                Some((f, pump)) => FaultyChannel::shimmed(
                    w.peer_txs[peer].clone(),
                    worker_node(w.src),
                    worker_node(peer),
                    f.clone(),
                    pump.clone(),
                ),
                None => FaultyChannel::passthrough(w.peer_txs[peer].clone()),
            }
        }))
    }

    /// How many peer links this mesh has dialed so far.
    pub fn dials(&self) -> u64 {
        self.dials.load(Ordering::Relaxed)
    }
}

/// Shared handle to a worker's peer mesh.
pub type PeerLinks = Arc<PeerMesh>;

/// Handle to a running worker.
pub struct WorkerHandle {
    /// Worker index (used in events it raises).
    pub index: usize,
    /// Channel into the worker (JSON strings).
    pub tx: Sender<String>,
    join: Option<JoinHandle<EventedNf>>,
}

impl WorkerHandle {
    /// Sends a wire message to the worker. Fails with
    /// [`RtError::WorkerGone`] when the worker thread has exited (shut
    /// down, or dead after an NF failure).
    pub fn send(&self, msg: &WireMsg) -> Result<(), RtError> {
        self.tx
            .send(msg.to_json())
            .map_err(|_| RtError::WorkerGone { worker: self.index })
    }

    /// Shuts the worker down and returns its harness (for inspection).
    /// Also the way to recover the harness of a worker that already died:
    /// the failed thread still hands its state back.
    pub fn shutdown(mut self) -> EventedNf {
        // If the thread already exited, the send fails — that's fine.
        let _ = self.tx.send(WireMsg::Shutdown.to_json());
        self.join.take().expect("not yet joined").join().expect("worker thread")
    }
}

/// Spawns a worker thread for `nf`. All controller-bound traffic
/// (responses and events) goes to `to_ctrl` as JSON — a plain sender,
/// unshimmed. Fault-armed runs use [`spawn_worker_faulty`].
pub fn spawn_worker(
    index: usize,
    nf: Box<dyn NetworkFunction>,
    to_ctrl: Sender<String>,
) -> WorkerHandle {
    spawn_worker_faulty(index, nf, FaultyChannel::passthrough(to_ctrl))
}

/// Spawns a worker whose controller-bound link runs through the fault
/// shim (or a passthrough). No peer links: P2P transfer requests fail.
pub fn spawn_worker_faulty(
    index: usize,
    nf: Box<dyn NetworkFunction>,
    to_ctrl: FaultyChannel,
) -> WorkerHandle {
    spawn_worker_full(index, nf, to_ctrl, PeerMesh::unwired(), Telemetry::disabled())
}

/// Spawns a worker with a (late-bound) peer mesh for P2P bulk transfer and
/// a telemetry handle for its hot-path counters.
pub fn spawn_worker_full(
    index: usize,
    nf: Box<dyn NetworkFunction>,
    to_ctrl: FaultyChannel,
    peers: PeerLinks,
    tel: Telemetry,
) -> WorkerHandle {
    let (tx, rx): (Sender<String>, Receiver<String>) = unbounded();
    let join = std::thread::Builder::new()
        .name(format!("nf-worker-{index}"))
        .spawn(move || worker_loop(index, nf, rx, to_ctrl, peers, tel))
        .expect("spawn worker");
    WorkerHandle { index, tx, join: Some(join) }
}

/// Counter handles a worker resolves once at startup so the hot loop never
/// touches the registry (one relaxed `fetch_add` per count).
struct WorkerCounters {
    frames_encoded: Arc<AtomicU64>,
    frames_decoded: Arc<AtomicU64>,
    p2p_batches: Arc<AtomicU64>,
    fenced_dropped: Arc<AtomicU64>,
}

impl WorkerCounters {
    fn resolve(tel: &Telemetry) -> Self {
        WorkerCounters {
            frames_encoded: tel.counter("rt.frames.encoded"),
            frames_decoded: tel.counter("rt.frames.decoded"),
            p2p_batches: tel.counter("rt.p2p.batches"),
            fenced_dropped: tel.counter("rt.fenced.dropped"),
        }
    }
}

/// Ships every event one packet raised as a single coalesced frame (one
/// channel send, one fault verdict), through the reused assembler.
fn send_events(
    index: usize,
    to_ctrl: &FaultyChannel,
    buf: &mut FrameBuf,
    events: Vec<NfEvent>,
    frames_encoded: &AtomicU64,
) {
    for ev in events {
        let wire = match ev {
            NfEvent::Received(packet) => WireEvent::PacketReceived { packet },
            NfEvent::Processed(packet) => WireEvent::PacketProcessed { packet },
        };
        buf.push(&WireMsg::Event { worker: index, ev: wire });
    }
    if let Some(frame) = buf.finish() {
        frames_encoded.fetch_add(1, Ordering::Relaxed);
        let _ = to_ctrl.send_json(frame);
    }
}

/// Stringifies a panic payload (`&str` and `String` payloads cover
/// `panic!`; anything else gets a generic description).
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "NF panicked with a non-string payload".to_string()
    }
}

/// Destination-side bookkeeping of a P2P bulk transfer: the cumulative
/// imports (what `TransferDone` reports) and the abort tombstone.
#[derive(Default)]
struct P2pIn {
    imported: Vec<FlowId>,
    seen: HashSet<FlowId>,
    /// Chunk batches whose correlation id is `<=` this are from aborted
    /// rounds: discard them instead of resurrecting deleted state.
    aborted_through: u64,
}

/// Source side of a P2P transfer: export the matching per-flow state and
/// stream it to the peer in chunk batches, then summarize for the
/// controller. The state is NOT deleted here — copy-then-delete means the
/// controller sends `DelPerflow` only after the destination confirmed
/// every flow.
fn do_transfer(
    harness: &mut EventedNf,
    peers: &PeerLinks,
    id: u64,
    filter: &Filter,
    peer: usize,
    only: &[FlowId],
    p2p_batches: &AtomicU64,
) -> WireReply {
    let link = match peers.link(peer) {
        Ok(link) => link,
        Err(message) => return WireReply::Error { message },
    };
    let mut chunks = harness.nf_mut().get_perflow(filter);
    if !only.is_empty() {
        let keep: HashSet<FlowId> = only.iter().copied().collect();
        chunks.retain(|c| keep.contains(&c.flow_id));
    }
    let mut flow_ids = Vec::new();
    let mut listed = HashSet::new();
    let mut bytes = 0u64;
    for c in &chunks {
        bytes += c.len() as u64;
        if listed.insert(c.flow_id) {
            flow_ids.push(c.flow_id);
        }
    }
    // Ship in bounded batches; the final one carries `last` (and goes out
    // even when there is nothing to ship, so the destination always acks).
    let mut seq = 0u64;
    let mut remaining = chunks;
    loop {
        let rest = if remaining.len() > P2P_BATCH_CHUNKS {
            remaining.split_off(P2P_BATCH_CHUNKS)
        } else {
            Vec::new()
        };
        let last = rest.is_empty();
        // A dead peer is not the source's problem: the controller sees the
        // missing TransferDone and retries or aborts.
        p2p_batches.fetch_add(1, Ordering::Relaxed);
        let _ = link.send(&WireMsg::P2pChunks { id, seq, last, chunks: remaining });
        seq += 1;
        if last {
            break;
        }
        remaining = rest;
    }
    WireReply::TransferExported { flow_ids, bytes }
}

fn worker_loop(
    index: usize,
    nf: Box<dyn NetworkFunction>,
    rx: Receiver<String>,
    to_ctrl: FaultyChannel,
    peers: PeerLinks,
    tel: Telemetry,
) -> EventedNf {
    let mut harness = EventedNf::new(nf);
    let mut ev_buf = FrameBuf::new();
    let mut p2p = P2pIn::default();
    let counters = WorkerCounters::resolve(&tel);
    // Idempotency fence: highest controller epoch seen and the
    // (epoch, id, seq) keys already applied (see [`WireMsg::Fenced`]).
    let mut fence_epoch = 0u64;
    let mut fence_seen: HashSet<(u64, u64, u64)> = HashSet::new();
    'recv: while let Ok(raw) = rx.recv() {
        // A payload may frame several messages (batched packets/chunks);
        // process them in frame order.
        let msgs = match decode_frame(&raw) {
            Ok(m) => {
                counters.frames_decoded.fetch_add(1, Ordering::Relaxed);
                m
            }
            Err(e) => {
                let _ = to_ctrl.send(&WireMsg::Response {
                    id: 0,
                    reply: WireReply::Error { message: e.to_string() },
                });
                continue;
            }
        };
        // Span link: if the frame carries a request stamped with the
        // sending controller span's id, open a decode span under that
        // parent — the cross-boundary tie the trace viewer follows from a
        // controller phase into the worker that served it. Packet frames
        // carry no link, so the hot path never pays for this.
        let frame_span = msgs
            .iter()
            .find_map(|m| match m {
                WireMsg::Request { span, .. } | WireMsg::Fenced { span, .. } => *span,
                _ => None,
            })
            .filter(|_| tel.enabled())
            .map(|link| {
                tel.begin_linked_arg(link, "rt.frame.decode", Some(format!("link={link}")))
            });
        for msg in msgs {
            // Unwrap the fence envelope first: a stale-epoch or
            // already-applied call is dropped here, everything else is
            // handled exactly like the bare request it wraps.
            let msg = match msg {
                WireMsg::Fenced { epoch, seq, id, call, span } => {
                    if epoch < fence_epoch || !fence_seen.insert((epoch, id, seq)) {
                        counters.fenced_dropped.fetch_add(1, Ordering::Relaxed);
                        // Point event for the happens-before oracle: the
                        // wire fence envelope carries no op id, so the
                        // analyzer attributes by time window.
                        tel.event(
                            "fence.dup",
                            Some(format!("worker={index} epoch={epoch} id={id} seq={seq}")),
                        );
                        continue;
                    }
                    fence_epoch = epoch;
                    WireMsg::Request { id, call, span }
                }
                m => m,
            };
            match msg {
                WireMsg::Shutdown => break 'recv,
                WireMsg::Packet { packet } => {
                    match catch_unwind(AssertUnwindSafe(|| harness.handle_packet(&packet))) {
                        Ok((_outcome, events)) => send_events(
                            index,
                            &to_ctrl,
                            &mut ev_buf,
                            events,
                            &counters.frames_encoded,
                        ),
                        Err(payload) => {
                            let reason = panic_reason(payload);
                            let _ = to_ctrl
                                .send(&WireMsg::Event { worker: index, ev: WireEvent::NfFailed { reason } });
                            break 'recv;
                        }
                    }
                }
                WireMsg::Request {
                    id,
                    call: WireCall::GetPerflowChunked { filter, batch },
                    ..
                } => {
                    match catch_unwind(AssertUnwindSafe(|| harness.nf_mut().get_perflow(&filter)))
                    {
                        Ok(chunks) => {
                            stream_chunks(index, &to_ctrl, id, chunks, batch);
                        }
                        Err(payload) => {
                            let reason = panic_reason(payload);
                            let _ = to_ctrl
                                .send(&WireMsg::Event { worker: index, ev: WireEvent::NfFailed { reason } });
                            break 'recv;
                        }
                    }
                }
                WireMsg::Request {
                    id, call: WireCall::TransferPerflow { filter, peer, only }, ..
                } => {
                    let reply = match catch_unwind(AssertUnwindSafe(|| {
                        do_transfer(&mut harness, &peers, id, &filter, peer, &only, &counters.p2p_batches)
                    })) {
                        Ok(reply) => reply,
                        Err(payload) => {
                            let reason = panic_reason(payload);
                            let _ = to_ctrl
                                .send(&WireMsg::Event { worker: index, ev: WireEvent::NfFailed { reason } });
                            break 'recv;
                        }
                    };
                    let _ = to_ctrl.send(&WireMsg::Response { id, reply });
                }
                WireMsg::Request {
                    id, call: WireCall::AbortTransfer { flow_ids, through_id }, ..
                } => {
                    p2p.aborted_through = p2p.aborted_through.max(through_id);
                    harness.nf_mut().del_perflow(&flow_ids);
                    for f in &flow_ids {
                        p2p.seen.remove(f);
                    }
                    let gone: HashSet<FlowId> = flow_ids.into_iter().collect();
                    p2p.imported.retain(|f| !gone.contains(f));
                    let _ = to_ctrl.send(&WireMsg::Response { id, reply: WireReply::Done });
                }
                WireMsg::Request { id, call, .. } => {
                    match catch_unwind(AssertUnwindSafe(|| handle_call(&mut harness, call))) {
                        Ok(reply) => {
                            let _ = to_ctrl.send(&WireMsg::Response { id, reply });
                        }
                        Err(payload) => {
                            let reason = panic_reason(payload);
                            let _ = to_ctrl
                                .send(&WireMsg::Event { worker: index, ev: WireEvent::NfFailed { reason } });
                            break 'recv;
                        }
                    }
                }
                WireMsg::P2pChunks { id, seq, last, chunks } => {
                    if id <= p2p.aborted_through {
                        // Straggler from an aborted round: the state it
                        // carries was already rolled back at the source.
                        continue;
                    }
                    let ids: Vec<FlowId> = chunks.iter().map(|c| c.flow_id).collect();
                    match harness.nf_mut().put_perflow(chunks) {
                        Ok(()) => {
                            for f in &ids {
                                if p2p.seen.insert(*f) {
                                    p2p.imported.push(*f);
                                }
                            }
                            if last {
                                let _ = to_ctrl.send(&WireMsg::Response {
                                    id,
                                    reply: WireReply::TransferDone {
                                        imported: p2p.imported.clone(),
                                    },
                                });
                            } else {
                                // Batch-granular progress ack: even if the
                                // round's final TransferDone is lost, the
                                // controller knows these flows landed and a
                                // retry re-requests only the rest.
                                let _ = to_ctrl.send(&WireMsg::Response {
                                    id,
                                    reply: WireReply::TransferProgress { seq, flow_ids: ids },
                                });
                            }
                        }
                        Err(e) => {
                            let _ = to_ctrl.send(&WireMsg::Response {
                                id,
                                reply: WireReply::Error { message: e.to_string() },
                            });
                        }
                    }
                }
                // Workers never receive responses or events; Fenced was
                // unwrapped above.
                WireMsg::Response { .. } | WireMsg::Event { .. } | WireMsg::Fenced { .. } => {}
            }
        }
        if let Some(sp) = frame_span {
            tel.end(sp);
        }
    }
    harness
}

/// Streams an export as [`WireReply::ChunkBatch`] responses of at most
/// `batch` chunks, all under one correlation id; the final batch carries
/// `last` and goes out even when empty, so the stream always terminates.
fn stream_chunks(
    _index: usize,
    to_ctrl: &FaultyChannel,
    id: u64,
    chunks: Vec<Chunk>,
    batch: usize,
) {
    let batch = batch.max(1);
    let mut seq = 0u64;
    let mut remaining = chunks;
    loop {
        let rest =
            if remaining.len() > batch { remaining.split_off(batch) } else { Vec::new() };
        let last = rest.is_empty();
        let _ = to_ctrl.send(&WireMsg::Response {
            id,
            reply: WireReply::ChunkBatch { seq, last, chunks: remaining },
        });
        seq += 1;
        if last {
            break;
        }
        remaining = rest;
    }
}

fn handle_call(harness: &mut EventedNf, call: WireCall) -> WireReply {
    match call {
        WireCall::GetPerflow { filter } => {
            WireReply::Chunks { chunks: harness.nf_mut().get_perflow(&filter) }
        }
        WireCall::PutPerflow { chunks } => match harness.nf_mut().put_perflow(chunks) {
            Ok(()) => WireReply::Done,
            Err(e) => WireReply::Error { message: e.to_string() },
        },
        WireCall::DelPerflow { flow_ids } => {
            harness.nf_mut().del_perflow(&flow_ids);
            WireReply::Done
        }
        WireCall::GetMultiflow { filter } => {
            WireReply::Chunks { chunks: harness.nf_mut().get_multiflow(&filter) }
        }
        WireCall::PutMultiflow { chunks } => match harness.nf_mut().put_multiflow(chunks) {
            Ok(()) => WireReply::Done,
            Err(e) => WireReply::Error { message: e.to_string() },
        },
        WireCall::GetAllflows => WireReply::Chunks { chunks: harness.nf_mut().get_allflows() },
        WireCall::PutAllflows { chunks } => match harness.nf_mut().put_allflows(chunks) {
            Ok(()) => WireReply::Done,
            Err(e) => WireReply::Error { message: e.to_string() },
        },
        WireCall::EnableEvents { filter, action } => {
            harness.enable_events(filter, action.into());
            WireReply::Done
        }
        WireCall::DisableEvents { filter } => {
            harness.disable_events(&filter);
            WireReply::Done
        }
        // Intercepted in `worker_loop` (they need the peer links, the
        // per-transfer bookkeeping, or the streaming reply channel).
        WireCall::TransferPerflow { .. }
        | WireCall::AbortTransfer { .. }
        | WireCall::GetPerflowChunked { .. } => {
            WireReply::Error { message: "streaming calls are handled by the worker loop".into() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::PanicNf;
    use opennf_nfs::AssetMonitor;
    use opennf_packet::{Filter, FlowKey, Packet, TcpFlags};

    fn pkt(uid: u64) -> Packet {
        Packet::builder(
            uid,
            FlowKey::tcp("10.0.0.1".parse().unwrap(), 4000, "1.1.1.1".parse().unwrap(), 80),
        )
        .flags(TcpFlags::SYN)
        .build()
    }

    #[test]
    fn worker_processes_and_exports() {
        let (to_ctrl, from_workers) = unbounded();
        let w = spawn_worker(0, Box::new(AssetMonitor::new()), to_ctrl);
        w.send(&WireMsg::Packet { packet: pkt(1) }).unwrap();
        w.send(&WireMsg::Request {
            id: 5,
            call: WireCall::GetPerflow { filter: Filter::any() },
            span: None,
        })
        .unwrap();
        let resp = WireMsg::from_json(&from_workers.recv().unwrap()).unwrap();
        match resp {
            WireMsg::Response { id: 5, reply: WireReply::Chunks { chunks } } => {
                assert_eq!(chunks.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let harness = w.shutdown();
        assert_eq!(harness.processed_log(), &[1]);
    }

    #[test]
    fn worker_raises_events_for_drop_filter() {
        let (to_ctrl, from_workers) = unbounded();
        let w = spawn_worker(3, Box::new(AssetMonitor::new()), to_ctrl);
        w.send(&WireMsg::Request {
            id: 1,
            call: WireCall::EnableEvents {
                filter: Filter::any(),
                action: crate::wire::WireAction::Drop,
            },
            span: None,
        })
        .unwrap();
        let _ack = from_workers.recv().unwrap();
        w.send(&WireMsg::Packet { packet: pkt(9) }).unwrap();
        // The event pump frames its sends, so decode with the
        // framing-aware path rather than the bare single-message parser.
        let ev = crate::wire::decode_frame(&from_workers.recv().unwrap()).unwrap().remove(0);
        match ev {
            WireMsg::Event { worker: 3, ev: WireEvent::PacketReceived { packet } } => {
                assert_eq!(packet.uid, 9)
            }
            other => panic!("unexpected {other:?}"),
        }
        let harness = w.shutdown();
        assert_eq!(harness.drop_count(), 1);
    }

    #[test]
    fn fenced_requests_dedup_and_reject_stale_epochs() {
        let (to_ctrl, from_workers) = unbounded();
        let w = spawn_worker(0, Box::new(AssetMonitor::new()), to_ctrl);
        let fenced = WireMsg::Fenced {
            epoch: 1,
            seq: 0,
            id: 4,
            call: WireCall::GetPerflow { filter: Filter::any() },
            span: None,
        };
        w.send(&fenced).unwrap();
        // Exact duplicate: dropped, no second reply.
        w.send(&fenced).unwrap();
        // Stale epoch (older than the 1 just seen): dropped.
        w.send(&WireMsg::Fenced {
            epoch: 0,
            seq: 9,
            id: 5,
            call: WireCall::GetPerflow { filter: Filter::any() },
            span: None,
        })
        .unwrap();
        w.send(&WireMsg::Request {
            id: 6,
            call: WireCall::GetPerflow { filter: Filter::any() },
            span: None,
        })
        .unwrap();
        // The fenced get answers once, then the plain get — proving both
        // the duplicate and the stale-epoch call were fenced out between.
        match WireMsg::from_json(&from_workers.recv().unwrap()).unwrap() {
            WireMsg::Response { id: 4, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        match WireMsg::from_json(&from_workers.recv().unwrap()).unwrap() {
            WireMsg::Response { id: 6, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        w.shutdown();
    }

    #[test]
    fn malformed_json_yields_error_response() {
        let (to_ctrl, from_workers) = unbounded();
        let w = spawn_worker(0, Box::new(AssetMonitor::new()), to_ctrl);
        w.tx.send("garbage".to_string()).unwrap();
        let resp = WireMsg::from_json(&from_workers.recv().unwrap()).unwrap();
        assert!(matches!(resp, WireMsg::Response { reply: WireReply::Error { .. }, .. }));
        w.shutdown();
    }

    #[test]
    fn panicking_nf_reports_failure_and_hands_back_state() {
        let (to_ctrl, from_workers) = unbounded();
        let w = spawn_worker(2, Box::new(PanicNf::new(5)), to_ctrl);
        w.send(&WireMsg::Packet { packet: pkt(1) }).unwrap();
        w.send(&WireMsg::Packet { packet: pkt(5) }).unwrap();
        // The panic is caught, reported, and the thread exits — no
        // unwinding across the channel.
        match WireMsg::from_json(&from_workers.recv().unwrap()).unwrap() {
            WireMsg::Event { worker: 2, ev: WireEvent::NfFailed { reason } } => {
                assert!(reason.contains("injected NF bug"), "reason: {reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The dead worker's harness is still recoverable (it processed
        // everything before the faulting packet).
        let harness = w.shutdown();
        assert_eq!(harness.processed_log(), &[1]);
    }

    #[test]
    fn send_to_dead_worker_is_a_typed_error() {
        let (to_ctrl, _from_workers) = unbounded();
        let w = spawn_worker(1, Box::new(AssetMonitor::new()), to_ctrl);
        w.send(&WireMsg::Shutdown).unwrap();
        // The channel stays writable until the thread drops its receiver;
        // poll until the death is observable.
        let mut err = None;
        for _ in 0..2_000 {
            if let Err(e) = w.send(&WireMsg::Packet { packet: pkt(1) }) {
                err = Some(e);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(err, Some(RtError::WorkerGone { worker: 1 }));
        w.shutdown();
    }
}
