//! Typed failures of the threaded runtime.
//!
//! Channel sends/receives, wire parsing, and worker health all surface
//! here instead of panicking: a dead NF thread must never poison the
//! controller — it becomes an [`RtError`] the caller can act on (the
//! failover pattern of Figure 9).

use std::fmt;

/// What can go wrong in the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// The worker's channel is closed: its thread has exited (shut down,
    /// or died after reporting [`NfFailed`](RtError::NfFailed)).
    WorkerGone {
        /// Worker index.
        worker: usize,
    },
    /// The controller-bound channel is closed: every worker is gone.
    ChannelClosed,
    /// No reply to a southbound request within the reply timeout.
    Timeout {
        /// Correlation id of the unanswered request.
        id: u64,
    },
    /// A malformed wire message or an error reply from a worker.
    Wire(String),
    /// A worker's NF panicked while processing; the worker reported the
    /// failure and exited instead of poisoning its channels.
    NfFailed {
        /// Worker index.
        worker: usize,
        /// The panic payload (or failure description).
        reason: String,
    },
    /// The controller crashed between two op-journal phase transitions
    /// (test hook: [`crate::RtController::crash_after`]). Every in-flight
    /// op fails with this; [`crate::RtController::recover`] then drives
    /// each one to a terminal phase from its journal.
    CtrlCrashed,
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::WorkerGone { worker } => write!(f, "worker {worker} is gone"),
            RtError::ChannelClosed => write!(f, "controller channel closed (all workers gone)"),
            RtError::Timeout { id } => write!(f, "no reply to request {id} within the timeout"),
            RtError::Wire(msg) => write!(f, "wire error: {msg}"),
            RtError::NfFailed { worker, reason } => {
                write!(f, "NF at worker {worker} failed: {reason}")
            }
            RtError::CtrlCrashed => write!(f, "controller crashed mid-operation"),
        }
    }
}

impl std::error::Error for RtError {}
