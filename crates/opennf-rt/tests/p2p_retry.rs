//! Partial P2P recovery: when the destination's batch acks are lost on
//! the worker → controller uplink, the retry round must re-request only
//! the flows no `TransferProgress` receipt ever confirmed — not the whole
//! population — and the move must still land every flow exactly once.

use std::net::Ipv4Addr;
use std::sync::atomic::Ordering;
use std::time::Duration;

use opennf_nf::NetworkFunction;
use opennf_nfs::AssetMonitor;
use opennf_packet::{Filter, FlowKey, Packet, TcpFlags};
use opennf_rt::{worker_node, RtController, CTRL_NODE};
use opennf_telemetry::Telemetry;
use opennf_util::{FaultKind, FaultPlan, Time};

/// More than one 64-chunk batch frame, so mid-round `TransferProgress`
/// receipts exist to survive a lost final summary.
const FLOWS: u32 = 200;

fn pkt(uid: u64, flow: u32) -> Packet {
    let key = FlowKey::tcp(
        Ipv4Addr::new(10, 0, (flow >> 8) as u8, flow as u8),
        2000 + (flow % 60_000) as u16,
        Ipv4Addr::new(93, 184, 216, 34),
        80,
    );
    Packet::builder(uid, key).flags(TcpFlags::SYN).build()
}

/// Verdicts are a pure function of `(seed, link, bytes)`, so whether a
/// given seed drops an ack frame is fixed but not chosen by us: search a
/// bounded seed range for a run where the destination's summary was lost
/// mid-round, then assert the retry was partial.
#[test]
fn dropped_batch_ack_retries_only_unconfirmed_flows() {
    for seed in 0..32u64 {
        // Drop ~25% of frames on the dst-worker → controller uplink only:
        // `TransferProgress` receipts and the final `TransferDone` ride
        // that link; the source's summaries and all southbound calls are
        // untouched.
        let plan = FaultPlan::new(seed).link(
            Some(worker_node(1)),
            Some(CTRL_NODE),
            Time::ZERO,
            Time(u64::MAX),
            250,
            FaultKind::Drop,
        );
        let tel = Telemetry::wall();
        let (ctrl, faults) = RtController::new_with_faults_and_telemetry(
            vec![
                Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>,
                Box::new(AssetMonitor::new()),
            ],
            plan,
            tel.clone(),
        );
        let mut ctrl = ctrl.with_reply_timeout(Duration::from_millis(400));
        for f in 0..FLOWS {
            ctrl.inject(pkt(f as u64 + 1, f)).expect("worker alive");
        }
        ctrl.quiesce(0).expect("worker alive");

        let res = ctrl.move_flows_p2p(0, 1, Filter::any());
        let retries = tel.counter("rt.p2p.retry_rounds").load(Ordering::Relaxed);
        let refetched = tel.counter("rt.p2p.refetch_flows").load(Ordering::Relaxed);
        let hit = res.is_ok() && retries >= 1 && refetched >= 1;
        if !hit {
            // This seed either dropped nothing relevant (clean round) or
            // lost every ack three rounds running (accounted abort);
            // neither exercises the partial-retry path — next seed.
            ctrl.shutdown();
            faults.join_pump();
            continue;
        }

        let stats = res.expect("checked Ok above");
        assert_eq!(stats.chunks, FLOWS as usize, "seed {seed}: every flow transferred");
        // The retry narrowed to the unconfirmed gap: strictly fewer flows
        // were re-requested than the population, because the batch-granular
        // receipts that did arrive count as confirmed.
        assert!(
            refetched < FLOWS as u64 * retries,
            "seed {seed}: refetched {refetched} over {retries} round(s) — not partial"
        );
        assert!(
            !faults.ledger().log.is_empty(),
            "seed {seed}: the plan must actually have fired"
        );

        // Copy-then-delete completed exactly once despite the retry.
        let harnesses = ctrl.shutdown();
        faults.join_pump();
        let count = |i: usize| {
            let any: &dyn std::any::Any = harnesses[i].nf();
            any.downcast_ref::<AssetMonitor>().unwrap().conn_count()
        };
        assert_eq!(count(0), 0, "seed {seed}: source released");
        assert_eq!(count(1), FLOWS as usize, "seed {seed}: destination holds all flows");
        return;
    }
    panic!("no seed in 0..32 produced a dropped ack with a successful partial retry");
}
