//! Crash-tolerance of the threaded controller: the op engine is killed
//! right after each journal append of an in-flight move, and
//! [`RtController::recover`] must drive the op to the correct terminal
//! phase — forward to `Committed` once every flow is confirmed at the
//! destination (`Transferred` and later), rollback to `Aborted` before
//! that — leaving the flow state whole at exactly one endpoint and the
//! controller healthy enough to run the next move.
//!
//! This mirrors `opennf-controller/tests/recovery.rs` (the simulator's
//! restart path) under the rt crash model: the struct — and with it the
//! journal and residue — survives, in-flight requests and timers die.

use std::net::Ipv4Addr;

use opennf_controller::JournalPhase;
use opennf_nf::NetworkFunction;
use opennf_nfs::AssetMonitor;
use opennf_packet::{Filter, FlowKey, Packet, TcpFlags};
use opennf_rt::{OpSpec, RtController, RtError};

const FLOWS: u32 = 30;

fn pkt(uid: u64, flow: u32) -> Packet {
    let key = FlowKey::tcp(
        Ipv4Addr::new(10, 0, (flow >> 8) as u8, flow as u8),
        2000 + (flow % 60_000) as u16,
        Ipv4Addr::new(93, 184, 216, 34),
        80,
    );
    Packet::builder(uid, key).flags(TcpFlags::SYN).build()
}

fn loaded_controller() -> RtController {
    let mut ctrl = RtController::new(vec![
        Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>,
        Box::new(AssetMonitor::new()),
    ]);
    for f in 0..FLOWS {
        ctrl.inject(pkt(f as u64 + 1, f)).expect("worker alive");
    }
    ctrl.quiesce(0).expect("worker alive");
    ctrl
}

fn conn_counts(ctrl: RtController) -> (usize, usize) {
    let harnesses = ctrl.shutdown();
    let count = |i: usize| {
        let any: &dyn std::any::Any = harnesses[i].nf();
        any.downcast_ref::<AssetMonitor>().unwrap().conn_count()
    };
    (count(0), count(1))
}

/// Crash the engine right after each of the five non-terminal journal
/// appends. Every run must surface `CtrlCrashed`, recover to the phase's
/// mandated terminal (fail forward at `Transferred`+, roll back before),
/// and leave all 30 flows intact at exactly the endpoint that terminal
/// implies — then complete a fresh move, proving the controller is not
/// poisoned.
#[test]
fn crash_at_every_phase_recovers_to_the_mandated_terminal() {
    let phases = [
        (JournalPhase::Armed, false),
        (JournalPhase::ExportDone, false),
        (JournalPhase::Transferred, true),
        (JournalPhase::Imported, true),
        (JournalPhase::Flushed, true),
    ];
    for (phase, forward) in phases {
        let mut ctrl = loaded_controller();
        ctrl.crash_after(phase);
        let res = ctrl.run_moves(vec![OpSpec::mv(0, 1, Filter::any())]);
        assert!(
            matches!(res[0], Err(RtError::CtrlCrashed)),
            "{phase:?}: crashed op must fail with CtrlCrashed, got {:?}",
            res[0]
        );
        assert!(ctrl.is_crashed(), "{phase:?}: crash hook fired");

        let outcomes = ctrl.recover();
        let expected = if forward { JournalPhase::Committed } else { JournalPhase::Aborted };
        assert_eq!(outcomes.len(), 1, "{phase:?}: one op recovered");
        assert_eq!(outcomes[0].1, expected, "{phase:?}: terminal phase");
        let last = ctrl.journal().records.last().expect("journal non-empty");
        assert_eq!(last.phase, expected, "{phase:?}: journal ends terminal");
        assert!(!ctrl.is_crashed(), "{phase:?}: recovery clears the crash flag");

        // The controller survives recovery: the follow-up move (from
        // wherever recovery left the state) completes normally.
        let (src, dst) = if forward { (1, 0) } else { (0, 1) };
        let stats = ctrl
            .run_moves(vec![OpSpec::mv(src, dst, Filter::any())])
            .remove(0)
            .unwrap_or_else(|e| panic!("{phase:?}: post-recovery move failed: {e}"));
        assert_eq!(stats.chunks, FLOWS as usize, "{phase:?}: post-recovery move is whole");

        // The follow-up move put everything at `dst`; nothing was lost or
        // duplicated by the crash + recovery + re-move sequence.
        let (m0, m1) = conn_counts(ctrl);
        let (at_dst, at_src) = if dst == 1 { (m1, m0) } else { (m0, m1) };
        assert_eq!(at_dst, FLOWS as usize, "{phase:?}: all flows at final dst");
        assert_eq!(at_src, 0, "{phase:?}: final src fully released");
    }
}

/// A copy journals three boundaries — `Armed`, `ExportDone`,
/// `Transferred` (nothing is deleted and no route flips, so there is no
/// import or flush) — and the engine must crash-recover at each exactly
/// like a move: roll back before `Transferred` (purging the partial
/// clone), fail forward at it. Either way the copy is non-destructive:
/// the source keeps all 30 flows.
#[test]
fn copy_crash_at_each_boundary_recovers_nondestructively() {
    let phases = [
        (JournalPhase::Armed, false),
        (JournalPhase::ExportDone, false),
        (JournalPhase::Transferred, true),
    ];
    for (phase, forward) in phases {
        let mut ctrl = loaded_controller();
        ctrl.crash_after(phase);
        let res = ctrl.run_ops(vec![OpSpec::copy(0, 1, Filter::any())]);
        assert!(
            matches!(res[0], Err(RtError::CtrlCrashed)),
            "{phase:?}: crashed copy must fail with CtrlCrashed, got {:?}",
            res[0]
        );

        let outcomes = ctrl.recover();
        let expected = if forward { JournalPhase::Committed } else { JournalPhase::Aborted };
        assert_eq!(outcomes.len(), 1, "{phase:?}: one op recovered");
        assert_eq!(outcomes[0].1, expected, "{phase:?}: terminal phase");
        assert!(!ctrl.is_crashed(), "{phase:?}: recovery clears the crash flag");

        // The controller survives: a fresh full copy completes.
        let stats = ctrl
            .copy_flows(0, 1, Filter::any())
            .unwrap_or_else(|e| panic!("{phase:?}: post-recovery copy failed: {e}"));
        assert_eq!(stats.chunks, FLOWS as usize, "{phase:?}: post-recovery copy is whole");

        // Non-destructive at every boundary: the source never lost a
        // flow, and the destination holds the (re-)copied clone.
        let (m0, m1) = conn_counts(ctrl);
        assert_eq!(m0, FLOWS as usize, "{phase:?}: source kept every flow");
        assert_eq!(m1, FLOWS as usize, "{phase:?}: destination holds the clone");
    }
}

/// A share's journal boundaries match a move's transfer leg (`Armed` on
/// the enable ack, `ExportDone`, `Transferred` when the initial sync
/// lands). Recovery must tear the sync filter down, purge a partial
/// replica on rollback, keep it on fail-forward — and never touch the
/// source's state.
#[test]
fn share_crash_at_each_boundary_recovers_nondestructively() {
    let phases = [
        (JournalPhase::Armed, false),
        (JournalPhase::ExportDone, false),
        (JournalPhase::Transferred, true),
    ];
    for (phase, forward) in phases {
        let mut ctrl = loaded_controller();
        ctrl.crash_after(phase);
        let res = ctrl.run_ops(vec![OpSpec::share(0, 1, Filter::any())]);
        assert!(
            matches!(res[0], Err(RtError::CtrlCrashed)),
            "{phase:?}: crashed share must fail with CtrlCrashed, got {:?}",
            res[0]
        );

        let outcomes = ctrl.recover();
        let expected = if forward { JournalPhase::Committed } else { JournalPhase::Aborted };
        assert_eq!(outcomes.len(), 1, "{phase:?}: one op recovered");
        assert_eq!(outcomes[0].1, expected, "{phase:?}: terminal phase");
        let last = ctrl.journal().records.last().expect("journal non-empty");
        assert_eq!(last.phase, expected, "{phase:?}: journal ends terminal");

        // The event filter is torn down either way: a follow-up move
        // (which arms its own filter at the same source) runs clean.
        let stats = ctrl
            .run_moves(vec![OpSpec::mv(0, 1, Filter::any())])
            .remove(0)
            .unwrap_or_else(|e| panic!("{phase:?}: post-recovery move failed: {e}"));
        assert_eq!(stats.chunks, FLOWS as usize, "{phase:?}: post-recovery move is whole");

        // The move put everything at worker 1; a committed share's
        // replica held the same flows, so state is exactly-once per
        // endpoint view either way.
        let (m0, m1) = conn_counts(ctrl);
        assert_eq!(m0, 0, "{phase:?}: source released by the follow-up move");
        assert_eq!(m1, FLOWS as usize, "{phase:?}: destination holds every flow");
    }
}

/// A crash with two ops in flight: recovery settles *both* — each to the
/// terminal its own journal prefix mandates — in op-id order.
#[test]
fn crash_with_two_inflight_ops_recovers_both() {
    let mut ctrl = RtController::new(
        (0..4).map(|_| Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>).collect(),
    );
    // Two disjoint flow populations, one per source worker.
    for f in 0..FLOWS {
        let tx0 = ctrl.worker_tx(0);
        tx0.send(opennf_rt::WireMsg::Packet { packet: pkt(f as u64 + 1, f) }.to_json())
            .expect("worker alive");
        let tx1 = ctrl.worker_tx(1);
        tx1.send(
            opennf_rt::WireMsg::Packet { packet: pkt(1_000 + f as u64, 256 + f) }.to_json(),
        )
        .expect("worker alive");
    }
    ctrl.quiesce(0).expect("worker alive");
    ctrl.quiesce(1).expect("worker alive");

    // The first Armed append kills the engine: both admitted ops die
    // mid-flight (the second may not even have journaled yet).
    ctrl.crash_after(JournalPhase::Armed);
    let specs = vec![
        OpSpec::mv(
            0,
            2,
            Filter::from_src(opennf_packet::Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 24)),
        ),
        OpSpec::mv(
            1,
            3,
            Filter::from_src(opennf_packet::Ipv4Prefix::new(Ipv4Addr::new(10, 0, 1, 0), 24)),
        ),
    ];
    let res = ctrl.run_moves(specs);
    assert!(res.iter().all(|r| matches!(r, Err(RtError::CtrlCrashed))));

    let outcomes = ctrl.recover();
    assert!(!outcomes.is_empty(), "at least the journaled op recovers");
    assert!(
        outcomes.iter().all(|(_, t)| t.is_terminal()),
        "every recovered op reaches a terminal phase: {outcomes:?}"
    );
    // Whatever mix of commit/rollback recovery chose, no flow state may
    // be lost or duplicated across the four instances.
    let harnesses = ctrl.shutdown();
    let total: usize = harnesses
        .iter()
        .map(|h| {
            let any: &dyn std::any::Any = h.nf();
            any.downcast_ref::<AssetMonitor>().unwrap().conn_count()
        })
        .sum();
    assert_eq!(total, 2 * FLOWS as usize, "flow state conserved across recovery");
}
