//! Fairness of the op scheduler, measured end-to-end through the engine:
//! four copies contending on one source under `WeightedFair` must be
//! admitted with comparable waits — the `engine.admission_wait.*`
//! histogram's exact min/max bound the spread.

use std::net::Ipv4Addr;

use opennf_nf::NetworkFunction;
use opennf_nfs::AssetMonitor;
use opennf_packet::{Filter, FlowKey, Packet, TcpFlags};
use opennf_rt::{OpSpec, RtController, SchedConfig, SchedPolicy};
use opennf_telemetry::Telemetry;

const FLOWS: u32 = 30;

fn pkt(uid: u64, flow: u32) -> Packet {
    let key = FlowKey::tcp(
        Ipv4Addr::new(10, 0, (flow >> 8) as u8, flow as u8),
        2000 + (flow % 60_000) as u16,
        Ipv4Addr::new(93, 184, 216, 34),
        80,
    );
    Packet::builder(uid, key).flags(TcpFlags::SYN).build()
}

/// A move holds the write lock on worker 0 while four copies from that
/// same source queue behind it. When the move commits, the scheduler
/// admits all four in the same sweep (the default stream cap allows four
/// concurrent readers), so each copy's admission wait is dominated by the
/// same blocking-move duration: max/min ≤ 2 is the fairness bound the
/// subsystem promises, with lots of headroom over scheduling jitter.
#[test]
fn four_contending_copies_admit_with_bounded_wait_spread() {
    let tel = Telemetry::wall();
    let mut ctrl = RtController::new_with_telemetry(
        (0..6).map(|_| Box::new(AssetMonitor::new()) as Box<dyn NetworkFunction>).collect(),
        tel.clone(),
    );
    // Equal op-class costs: the first DRR pass admits the move (submitted
    // first, so its source heads the rotation) before any copy — with the
    // default costs a 64-cost move never fits the first 32-deficit pass
    // and the copies would jump the queue instead of contending.
    let cfg = SchedConfig { move_cost: 32, copy_cost: 32, share_cost: 32, ..SchedConfig::default() };
    ctrl.set_sched_config(SchedPolicy::WeightedFair, cfg);

    // Load both endpoints of the blocking move so it streams real state
    // (the longer it runs, the more the four waits converge relatively).
    for f in 0..FLOWS {
        let tx0 = ctrl.worker_tx(0);
        tx0.send(opennf_rt::WireMsg::Packet { packet: pkt(f as u64 + 1, f) }.to_json())
            .expect("worker alive");
        let tx1 = ctrl.worker_tx(1);
        tx1.send(opennf_rt::WireMsg::Packet { packet: pkt(1_000 + f as u64, 256 + f) }.to_json())
            .expect("worker alive");
    }
    ctrl.quiesce(0).expect("worker alive");
    ctrl.quiesce(1).expect("worker alive");

    // One batch: the move (1 → 0) write-locks worker 0; the four copies
    // (0 → 2..=5) all need a read lock on it and must wait it out.
    let specs = vec![
        OpSpec::mv(1, 0, Filter::any()),
        OpSpec::copy(0, 2, Filter::any()),
        OpSpec::copy(0, 3, Filter::any()),
        OpSpec::copy(0, 4, Filter::any()),
        OpSpec::copy(0, 5, Filter::any()),
    ];
    let results = ctrl.run_ops(specs);
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "op {i} failed: {r:?}");
    }

    // The four copies observe into the source's wait histogram (the move
    // observes into w1's); exact extremes bound the spread.
    let snap = tel.hist_snapshot("engine.admission_wait.w0").expect("histogram recorded");
    assert_eq!(snap.count, 4, "all four copies admitted");
    assert!(snap.min > 0, "every copy waited out the blocking move");
    let ratio = snap.max as f64 / snap.min as f64;
    assert!(
        ratio <= 2.0,
        "admission-wait spread under WeightedFair: max={} min={} ratio={ratio:.3}",
        snap.max,
        snap.min
    );

    // All five ops really ran: every destination holds its clone, and the
    // move emptied worker 1 into worker 0.
    let harnesses = ctrl.shutdown();
    let count = |i: usize| {
        let any: &dyn std::any::Any = harnesses[i].nf();
        any.downcast_ref::<AssetMonitor>().unwrap().conn_count()
    };
    assert_eq!(count(1), 0, "move released its source");
    for w in 2..6 {
        assert_eq!(count(w), 2 * FLOWS as usize, "copy destination {w} holds the merged clone");
    }
}
