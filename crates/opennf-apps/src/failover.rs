//! Figure 9 — fast failure recovery.
//!
//! ```text
//! initStandby (normInst, stbyInst)
//!   notify ({nw_proto: TCP, tcp_flags: SYN}, normInst, true, updateStandby)
//!   notify ({nw_proto: TCP, tcp_flags: RST}, normInst, true, updateStandby)
//!   notify ({nw_src: 10.0.0.0/8, nw_proto: TCP, tp_dst: 80}, normInst, true, updateStandby)
//! updateStandby (event)
//!   copy (normInst, stbyInst, extractFlowId(event.pkt), PER)
//! ```
//!
//! "The copy is made eventually consistent when these key packets are
//! processed, rather than recopying state for every packet" — SYN,
//! SYN+ACK, RST, and local HTTP requests are the packets whose state
//! updates matter for scan detection and browser identification. On
//! failure, the switch is re-pointed at the standby.

use opennf_controller::controller::{Api, ControlApp};
use opennf_controller::{Command, ScopeSet};
use opennf_packet::{Filter, Ipv4Prefix, Packet, Proto, TcpFlags};
use opennf_sim::{Dur, NodeId};

/// The failure-recovery application.
pub struct FailoverApp {
    /// The instance being protected.
    pub norm_inst: NodeId,
    /// Its hot standby.
    pub stby_inst: NodeId,
    /// Local network prefix (for the HTTP-request filter and re-route).
    pub local_prefix: Ipv4Prefix,
    /// If set, the normal instance "fails" at this time and traffic is
    /// re-routed to the standby.
    pub fail_at: Option<Dur>,
    armed_failure: bool,
    /// Copies triggered so far (test observability).
    pub updates: u32,
    /// Whether failover has been executed.
    pub failed_over: bool,
}

impl FailoverApp {
    /// Creates the application.
    pub fn new(
        norm_inst: NodeId,
        stby_inst: NodeId,
        local_prefix: Ipv4Prefix,
        fail_at: Option<Dur>,
    ) -> Self {
        FailoverApp {
            norm_inst,
            stby_inst,
            local_prefix,
            fail_at,
            armed_failure: false,
            updates: 0,
            failed_over: false,
        }
    }
}

impl ControlApp for FailoverApp {
    fn on_start(&mut self, api: &mut Api<'_>) {
        // initStandby: subscribe to the key packets.
        api.issue(Command::Notify {
            inst: self.norm_inst,
            filter: Filter::any().proto(Proto::Tcp).with_tcp_flags(TcpFlags::SYN),
            enable: true,
        });
        api.issue(Command::Notify {
            inst: self.norm_inst,
            filter: Filter::any().proto(Proto::Tcp).with_tcp_flags(TcpFlags::RST),
            enable: true,
        });
        api.issue(Command::Notify {
            inst: self.norm_inst,
            filter: Filter::from_src(self.local_prefix).proto(Proto::Tcp).dst_port(80),
            enable: true,
        });
        if let Some(at) = self.fail_at {
            api.set_tick(Some(at));
            self.armed_failure = true;
        }
    }

    fn on_notify(&mut self, api: &mut Api<'_>, inst: NodeId, pkt: &Packet) {
        if inst != self.norm_inst || self.failed_over {
            return;
        }
        // updateStandby: copy the per-flow state for this packet's flow.
        self.updates += 1;
        api.issue(Command::Copy {
            src: self.norm_inst,
            dst: self.stby_inst,
            filter: Filter::from_flow_id(pkt.flow_id()),
            scope: ScopeSet::per_flow(),
        });
    }

    fn on_tick(&mut self, api: &mut Api<'_>) {
        if self.armed_failure && !self.failed_over {
            self.execute_failover(api);
        }
    }

    fn on_nf_failed(&mut self, api: &mut Api<'_>, inst: NodeId, _reason: &str) {
        // An operation aborted blaming an instance. If it is the one we
        // protect, the standby (kept warm by updateStandby copies) takes
        // over immediately — no timer needed.
        if inst == self.norm_inst && !self.failed_over {
            self.execute_failover(api);
        }
    }
}

impl FailoverApp {
    fn execute_failover(&mut self, api: &mut Api<'_>) {
        self.failed_over = true;
        // The normal instance failed: steer everything to the standby.
        api.issue(Command::Route {
            filter: Filter::any(),
            priority: 1000,
            inst: self.stby_inst,
        });
        api.set_tick(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_controller::ScenarioBuilder;
    use opennf_nfs::AssetMonitor;
    use opennf_trace::steady_flows;

    fn build(fail_at: Option<Dur>) -> opennf_controller::Scenario {
        let app = FailoverApp::new(
            NodeId(2),
            NodeId(3),
            "10.0.0.0/8".parse().unwrap(),
            fail_at,
        );
        ScenarioBuilder::new()
            .app(Box::new(app))
            .nf("norm", Box::new(AssetMonitor::new()))
            .nf("stby", Box::new(AssetMonitor::new()))
            .host(steady_flows(30, 2_000, Dur::millis(800), 9))
            .route(0, Filter::any(), 0)
            .build()
    }

    #[test]
    fn standby_tracks_flow_state() {
        let mut s = build(None);
        s.run_to_completion();
        // Each flow's SYN triggered a per-flow copy.
        let copies = s.controller().reports_of("copy").len();
        assert!(copies >= 25, "SYN-triggered copies: {copies}");
        let stby = s.nf(1).nf_as::<AssetMonitor>();
        assert!(
            stby.conn_count() >= 25,
            "standby holds flow state: {}",
            stby.conn_count()
        );
        // The standby processed no packets itself.
        assert!(s.nf(1).processed_log().is_empty());
    }

    #[test]
    fn nf_failure_during_move_triggers_failover() {
        use opennf_controller::{Command, MoveProps, NetConfig};
        use opennf_sim::{FaultPlan, Time};

        // Short phase timeout so the abort (and thus the failover) happens
        // while traffic is still flowing.
        let mut cfg = NetConfig::default();
        cfg.op.phase_timeout = Dur::millis(50);
        let app = FailoverApp::new(NodeId(2), NodeId(3), "10.0.0.0/8".parse().unwrap(), None);
        let mut s = ScenarioBuilder::new()
            .config(cfg)
            .app(Box::new(app))
            .nf("norm", Box::new(AssetMonitor::new()))
            .nf("stby", Box::new(AssetMonitor::new()))
            .host(steady_flows(30, 2_000, Dur::millis(800), 9))
            .route(0, Filter::any(), 0)
            // The protected instance dies just after the move starts.
            .fault_plan(FaultPlan::new(7).crash(NodeId(2), Time(310_000_000)))
            .build();
        s.issue_at(
            Dur::millis(300),
            Command::Move {
                src: NodeId(2),
                dst: NodeId(3),
                filter: Filter::any(),
                scope: ScopeSet::per_flow(),
                props: MoveProps::lf_pl(),
            },
        );
        s.run_to_completion();

        let reports = s.controller().reports_of("move");
        assert_eq!(reports.len(), 1);
        assert!(reports[0].outcome.is_aborted(), "move aborted: {:?}", reports[0].outcome);
        assert_eq!(reports[0].failed_inst, Some(NodeId(2)), "abort blames the crashed source");
        // The abort's failure event drove on_nf_failed: traffic was
        // re-routed and the standby picked it up.
        assert!(
            !s.nf(1).processed_log().is_empty(),
            "standby processes traffic after failure-driven failover"
        );
        // Every packet is processed exactly once or explicitly accounted
        // for (lost at the crashed node, or listed in the abort report).
        let check = s.oracle_with_faults().check();
        assert!(
            check.is_exactly_once_or_accounted(),
            "exactly-once-or-accounted: {check:?}"
        );
    }

    #[test]
    fn failover_reroutes_and_standby_continues_with_state() {
        let mut s = build(Some(Dur::millis(400)));
        s.run_to_completion();
        let stby = s.nf(1);
        assert!(
            !stby.processed_log().is_empty(),
            "standby processes traffic after failover"
        );
        // Because the standby already had per-flow state, continuing flows
        // did not register as brand new there: its conn count stays at the
        // flow total, not double.
        assert_eq!(stby.nf_as::<AssetMonitor>().conn_count(), 30);
    }
}
