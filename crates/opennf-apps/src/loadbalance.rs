//! Figure 8 — load-balanced network monitoring.
//!
//! ```text
//! movePrefix (prefix, oldInst, newInst)
//!   copy (oldInst, newInst, {nw_src: prefix}, MULTI)
//!   move (oldInst, newInst, {nw_src: prefix}, PER, LOSSFREE)
//!   while true:
//!     sleep (60)
//!     copy (oldInst, newInst, {nw_src: prefix}, MULTI)
//!     copy (newInst, oldInst, {nw_src: prefix}, MULTI)
//! ```
//!
//! Multi-flow state is *copied*, not moved, "because the counters for port
//! scan detection are maintained on the basis of ⟨external IP, destination
//! port⟩ pairs, and connections may exist between a single external host
//! and hosts in multiple local subnets". An order-preserving move is
//! unnecessary (a reordered counter update only delays scan detection),
//! and bidirectional periodic copies keep the counters eventually
//! consistent.

use opennf_controller::controller::{Api, ControlApp};
use opennf_controller::{Command, MoveProps, ScopeSet};
use opennf_packet::{Filter, Ipv4Prefix};
use opennf_sim::{Dur, NodeId, Time};

/// The load-balancer application: rebalances `prefix` from `old_inst` to
/// `new_inst` at `rebalance_at`, then keeps multi-flow state eventually
/// consistent with bidirectional copies every `sync_period`.
pub struct LoadBalancerApp {
    /// Prefix to rebalance.
    pub prefix: Ipv4Prefix,
    /// Instance currently handling the prefix.
    pub old_inst: NodeId,
    /// Instance to move it to.
    pub new_inst: NodeId,
    /// When to trigger the rebalance.
    pub rebalance_at: Dur,
    /// Period of the eventual-consistency copies (paper: 60 s).
    pub sync_period: Dur,
    moved: bool,
    /// Completed `movePrefix` invocations (observable for tests).
    pub move_count: u32,
    /// Sync rounds performed.
    pub sync_rounds: u32,
}

impl LoadBalancerApp {
    /// Creates the application.
    pub fn new(
        prefix: Ipv4Prefix,
        old_inst: NodeId,
        new_inst: NodeId,
        rebalance_at: Dur,
        sync_period: Dur,
    ) -> Self {
        LoadBalancerApp {
            prefix,
            old_inst,
            new_inst,
            rebalance_at,
            sync_period,
            moved: false,
            move_count: 0,
            sync_rounds: 0,
        }
    }

    fn filter(&self) -> Filter {
        Filter::from_src(self.prefix).bidi()
    }
}

impl ControlApp for LoadBalancerApp {
    fn on_start(&mut self, api: &mut Api<'_>) {
        // Drive the app off a tick timer; the first tick at/after
        // `rebalance_at` performs movePrefix, subsequent ticks run the
        // eventual-consistency loop.
        api.set_tick(Some(self.rebalance_at));
    }

    fn on_tick(&mut self, api: &mut Api<'_>) {
        if !self.moved {
            self.moved = true;
            self.move_count += 1;
            // movePrefix: copy multi-flow, then loss-free move of per-flow.
            api.issue(Command::Copy {
                src: self.old_inst,
                dst: self.new_inst,
                filter: self.filter(),
                scope: ScopeSet::multi_flow(),
            });
            api.issue(Command::Move {
                src: self.old_inst,
                dst: self.new_inst,
                filter: self.filter(),
                scope: ScopeSet::per_flow(),
                props: MoveProps::lf_pl_er(),
            });
            api.set_tick(Some(self.sync_period));
        } else {
            self.sync_rounds += 1;
            api.issue(Command::Copy {
                src: self.old_inst,
                dst: self.new_inst,
                filter: self.filter(),
                scope: ScopeSet::multi_flow(),
            });
            api.issue(Command::Copy {
                src: self.new_inst,
                dst: self.old_inst,
                filter: self.filter(),
                scope: ScopeSet::multi_flow(),
            });
        }
        let _ = Time::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_controller::ScenarioBuilder;
    use opennf_nfs::ids::{Ids, IdsConfig};
    use opennf_sim::NodeId;
    use opennf_trace::{univ_cloud, UnivCloudConfig};

    #[test]
    fn move_prefix_keeps_scan_detection_working() {
        // Scanner probes hosts in two subnets; subnet 10.0.1.0/24 is
        // rebalanced to IDS 2 mid-scan. Without the multi-flow copy the
        // scan would go undetected; with the app it fires.
        let cfg = UnivCloudConfig {
            flows: 40,
            pps: 2_000,
            duration: opennf_sim::Dur::secs(2),
            subnets: 2,
            scanners: 1,
            scan_ports: 30, // threshold is 10; split across 2 subnets
            malware_fraction: 0.0,
            https_fraction: 0.0,
            outdated_ua_fraction: 0.0,
            seed: 11,
        };
        let trace = univ_cloud(&cfg);
        let app = LoadBalancerApp::new(
            "10.0.1.0/24".parse().unwrap(),
            NodeId(2),
            NodeId(3),
            opennf_sim::Dur::millis(400),
            opennf_sim::Dur::millis(500),
        );
        let mut s = ScenarioBuilder::new()
            .app(Box::new(app))
            .nf("ids1", Box::new(Ids::new(IdsConfig::default())))
            .nf("ids2", Box::new(Ids::new(IdsConfig::default())))
            .host(trace.packets)
            .route(0, opennf_packet::Filter::any(), 0)
            .build();
        s.run_until(opennf_sim::Time::ZERO + opennf_sim::Dur::secs(3));

        // The move happened (copy + move reports exist).
        assert!(!s.controller().reports_of("copy").is_empty());
        assert_eq!(s.controller().reports_of("move[LF").len(), 1);

        // Scan alert fired on at least one instance: the scanner's counters
        // were copied so the combined evidence crossed the threshold.
        let alerts1 = s.nf(0).logs_of("alert.scan").len();
        let alerts2 = s.nf(1).logs_of("alert.scan").len();
        assert!(
            alerts1 + alerts2 >= 1,
            "scan must be detected despite rebalancing (got {alerts1}+{alerts2})"
        );

        // Loss-freedom held through the app's move.
        let oracle = s.oracle().check();
        assert!(oracle.is_loss_free(), "{:?}", oracle.lost);
    }

    #[test]
    fn periodic_sync_rounds_run() {
        let app = LoadBalancerApp::new(
            "10.0.0.0/24".parse().unwrap(),
            NodeId(2),
            NodeId(3),
            opennf_sim::Dur::millis(50),
            opennf_sim::Dur::millis(100),
        );
        let mut s = ScenarioBuilder::new()
            .app(Box::new(app))
            .nf("ids1", Box::new(Ids::new(IdsConfig::default())))
            .nf("ids2", Box::new(Ids::new(IdsConfig::default())))
            .host(opennf_trace::steady_flows(10, 1_000, opennf_sim::Dur::millis(900), 3))
            .route(0, opennf_packet::Filter::any(), 0)
            .build();
        s.run_until(opennf_sim::Time::ZERO + opennf_sim::Dur::secs(1));
        // ≈ (1000 ms - 50 ms) / 100 ms ≈ 9 sync rounds → 18 copies + 1 initial.
        let copies = s.controller().reports_of("copy").len();
        assert!(copies >= 10, "bidirectional copies every period: {copies}");
    }
}
