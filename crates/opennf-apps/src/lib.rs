//! The control applications of §6, written against the northbound API
//! exactly as the paper's Floodlight applications are:
//!
//! * [`loadbalance::LoadBalancerApp`] — Figure 8: high-performance network
//!   monitoring. `movePrefix` copies scan-detection multi-flow state, does
//!   a loss-free move of the prefix's per-flow state, and keeps multi-flow
//!   state eventually consistent with periodic bidirectional copies.
//! * [`failover::FailoverApp`] — Figure 9: fast failure recovery. A hot
//!   standby is kept eventually consistent by `notify`-driven copies
//!   triggered by TCP SYN/RST and HTTP-request packets; on failure, traffic
//!   is re-routed to the standby.
//! * [`offload::OffloadApp`] — selectively invoking advanced remote
//!   processing: when a local IDS raises an outdated-browser alert, the
//!   flow's per-flow state is loss-free-moved to a cloud instance that
//!   additionally checks for malware.

pub mod failover;
pub mod loadbalance;
pub mod offload;

pub use failover::FailoverApp;
pub use loadbalance::LoadBalancerApp;
pub use offload::OffloadApp;
