//! Selectively invoking advanced remote processing (§2.1, §6).
//!
//! "When a local IDS instance (locInst) raises an alert for a specific
//! flow (flowid), the application calls
//! move(locInst, cloudInst, flowid, perflow, lossfree) to transfer the
//! flow's per-flow state and forward the flow's packets to the IDS
//! instance running in the cloud. The move must be loss-free to ensure all
//! data packets contained in the HTTP reply are received and included in
//! the md5sum that is compared against a malware database."
//!
//! Multi-flow state (scan counters) is deliberately *not* moved: it is
//! irrelevant to the cloud instance's malware check.

use std::collections::HashSet;

use opennf_controller::controller::{Api, ControlApp};
use opennf_controller::{Command, MoveProps, ScopeSet};
use opennf_nf::LogRecord;
use opennf_packet::{ConnKey, Filter};
use opennf_sim::NodeId;

/// The remote-processing application.
pub struct OffloadApp {
    /// The local IDS.
    pub local_inst: NodeId,
    /// The cloud IDS (with the big signature corpus).
    pub cloud_inst: NodeId,
    /// Alert kind that triggers offload.
    pub trigger_kind: String,
    moved: HashSet<ConnKey>,
    /// Offload moves issued (test observability).
    pub offloads: u32,
}

impl OffloadApp {
    /// Creates the application, triggering on outdated-browser alerts as
    /// in the paper's Figure 7 deployment.
    pub fn new(local_inst: NodeId, cloud_inst: NodeId) -> Self {
        OffloadApp {
            local_inst,
            cloud_inst,
            trigger_kind: "alert.outdated_browser".to_string(),
            moved: HashSet::new(),
            offloads: 0,
        }
    }
}

impl ControlApp for OffloadApp {
    fn on_alert(&mut self, api: &mut Api<'_>, inst: NodeId, alert: &LogRecord) {
        if inst != self.local_inst || alert.kind != self.trigger_kind {
            return;
        }
        let Some(conn) = alert.conn else {
            return;
        };
        if !self.moved.insert(conn) {
            return; // already offloaded
        }
        self.offloads += 1;
        api.issue(Command::Move {
            src: self.local_inst,
            dst: self.cloud_inst,
            filter: Filter::from_flow_id(conn.flow_id()),
            scope: ScopeSet::per_flow(),
            props: MoveProps::lf_pl(), // loss-free, as the md5 demands
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_controller::ScenarioBuilder;
    use opennf_nfs::ids::{Ids, IdsConfig};
    use opennf_trace::http::{malware_body, malware_signatures, HttpFlowSpec};
    use opennf_trace::merge_schedules;

    /// One outdated-browser flow that also carries malware, plus benign
    /// background flows.
    fn workload() -> Vec<(u64, opennf_packet::Packet)> {
        let mut parts = Vec::new();
        // The interesting flow: outdated UA, malware body, slow-paced so
        // the offload completes mid-flow.
        parts.push(
            HttpFlowSpec {
                client: "10.0.0.5".parse().unwrap(),
                client_port: 4000,
                server: "93.184.216.34".parse().unwrap(),
                server_port: 80,
                url: "/payload".into(),
                user_agent: "Mozilla/4.0 (compatible; MSIE 6.0)".into(),
                body: malware_body(0, 2_048),
                segment: 200,
                start_ns: 1_000_000,
                gap_ns: 20_000_000, // 20 ms between packets: plenty of time to move
            }
            .render(),
        );
        for i in 0..5u32 {
            parts.push(
                HttpFlowSpec {
                    client: format!("10.0.0.{}", 10 + i).parse().unwrap(),
                    client_port: 5000 + i as u16,
                    server: "93.184.216.34".parse().unwrap(),
                server_port: 80,
                    url: format!("/benign{i}"),
                    user_agent: "Firefox/115".into(),
                    body: vec![0x11; 600],
                    segment: 200,
                    start_ns: 2_000_000 + i as u64 * 1_000_000,
                    gap_ns: 5_000_000,
                }
                .render(),
            );
        }
        merge_schedules(parts)
    }

    #[test]
    fn alert_triggers_offload_and_cloud_detects_malware() {
        // Local IDS: browser checks only (no signatures). Cloud IDS: full
        // malware corpus — Figure 7's split.
        let local = Ids::new(IdsConfig::default());
        let cloud = Ids::with_signatures(malware_signatures(8, 2_048));
        let app = OffloadApp::new(NodeId(2), NodeId(3));
        let mut s = ScenarioBuilder::new()
            .app(Box::new(app))
            .nf("local", Box::new(local))
            .nf("cloud", Box::new(cloud))
            .host(workload())
            .route(0, Filter::any(), 0)
            .build();
        s.run_to_completion();

        // The outdated-browser alert fired locally…
        assert_eq!(s.nf(0).logs_of("alert.outdated_browser").len(), 1);
        // …the app moved the flow…
        assert_eq!(s.controller().reports_of("move[LF").len(), 1);
        // …and the cloud instance, which received the partially
        // reassembled HTTP state, caught the malware.
        assert_eq!(
            s.nf(1).logs_of("alert.malware").len(),
            1,
            "cloud IDS must detect the payload after a loss-free mid-flow move"
        );
        // Benign flows stayed local.
        let local_conns = s.nf(0).nf_as::<Ids>().conn_count()
            + s.nf(0).logs_of("conn_log").len();
        assert!(local_conns >= 5, "background flows processed locally");
        // Loss-freedom held.
        let oracle = s.oracle().check();
        assert!(oracle.is_loss_free(), "{:?}", oracle.lost);
    }

    #[test]
    fn without_offload_malware_is_missed() {
        // Same workload, no app: the local IDS has no signatures, so the
        // malware goes undetected anywhere.
        let local = Ids::new(IdsConfig::default());
        let cloud = Ids::with_signatures(malware_signatures(8, 2_048));
        let mut s = ScenarioBuilder::new()
            .nf("local", Box::new(local))
            .nf("cloud", Box::new(cloud))
            .host(workload())
            .route(0, Filter::any(), 0)
            .build();
        s.run_to_completion();
        assert_eq!(s.nf(0).logs_of("alert.malware").len(), 0);
        assert_eq!(s.nf(1).logs_of("alert.malware").len(), 0);
    }
}
