//! Telemetry-facing accounting checks: operation reports must survive a
//! JSON round-trip with their abort bookkeeping intact (the conformance
//! soak and CI artifacts persist them), and the per-phase spans a move
//! emits must tile inside the duration the report claims.

use opennf_controller::{
    Command, MoveProps, OpId, OpOutcome, OpReport, ScenarioBuilder, ScopeSet,
};
use opennf_nfs::AssetMonitor;
use opennf_packet::{Filter, FlowId, FlowKey, Packet, TcpFlags};
use opennf_sim::Dur;
use opennf_telemetry::{Kind, Telemetry};

#[test]
fn op_report_round_trips_through_json() {
    let mut report = OpReport::new(OpId(42), "move[LF PL]".into(), 1_000_000);
    report.end_ns = 9_500_000;
    report.chunks = 17;
    report.bytes = 4096;
    report.events_buffered = 5;
    report.events_released = 5;
    report.retries = 2;
    report.abort_lost = vec![101, 202, 303];
    report.p2p_inflight = vec![
        FlowId::host("10.0.0.1".parse().unwrap()),
        FlowId::host_port("10.0.0.2".parse().unwrap(), 443),
    ];
    report.abort("transfer timed out", None);

    let json = serde_json::to_string(&report).expect("serialize");
    let back: OpReport = serde_json::from_str(&json).expect("deserialize");

    assert_eq!(back.op, report.op);
    assert_eq!(back.kind, report.kind);
    assert_eq!(back.abort_lost, vec![101, 202, 303], "abort accounting survives");
    assert_eq!(back.p2p_inflight, report.p2p_inflight, "in-flight flow ids survive");
    assert_eq!(back.retries, 2);
    assert!(matches!(back.outcome, OpOutcome::Aborted { ref reason } if reason == "transfer timed out"));
    assert!((back.duration_ms() - report.duration_ms()).abs() < 1e-9);
}

fn schedule(flows: u32, pps: u64, dur: Dur) -> Vec<(u64, Packet)> {
    let mut out = Vec::new();
    let gap_ns = 1_000_000_000 / pps;
    let total = (dur.as_nanos() / gap_ns) as u32;
    for i in 0..total {
        let uid = i as u64 + 1;
        let flow = i % flows;
        let key = FlowKey::tcp(
            format!("10.0.0.{}", flow + 1).parse().unwrap(),
            2000 + flow as u16,
            "93.184.216.34".parse().unwrap(),
            80,
        );
        let flags = if i < flows { TcpFlags::SYN } else { TcpFlags::ACK };
        out.push((i as u64 * gap_ns, Packet::builder(uid, key).flags(flags).build()));
    }
    out
}

#[test]
fn move_phase_spans_tile_inside_the_reported_duration() {
    let tel = Telemetry::manual();
    let mut s = ScenarioBuilder::new()
        .telemetry(tel.clone())
        .nf("m1", Box::new(AssetMonitor::new()))
        .nf("m2", Box::new(AssetMonitor::new()))
        .host(schedule(20, 2_500, Dur::millis(400)))
        .route(0, Filter::any(), 0)
        .build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(100),
        Command::Move {
            src,
            dst,
            filter: Filter::any(),
            scope: ScopeSet::per_flow(),
            props: MoveProps::lfop_pl_er(),
        },
    );
    s.run_to_completion();

    let reports = s.controller().reports_of("move[LF+OP PL+ER]");
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert!(!report.outcome.is_aborted());
    let total_ns = report.end_ns - report.start_ns;

    // Reconstruct each move.* span's duration from the flight recorder:
    // Begin and End records pair by span id.
    let recs = tel.records();
    let mut sum_ns = 0u64;
    let mut phases = Vec::new();
    for b in recs.iter().filter(|r| r.kind == Kind::Begin && r.name.starts_with("move.")) {
        let e = recs
            .iter()
            .find(|r| r.kind == Kind::End && r.id == b.id)
            .unwrap_or_else(|| panic!("span {} never ended", b.name));
        assert!(e.t_ns >= b.t_ns, "{} ends after it begins", b.name);
        sum_ns += e.t_ns - b.t_ns;
        phases.push(b.name);
    }
    assert_eq!(
        phases,
        ["move.export", "move.transfer", "move.import", "move.flush", "move.fwd_update"],
        "the five phases tile the move in protocol order"
    );
    // The phases are disjoint sub-intervals of the op window, so their
    // durations sum to at most the reported total (and a completed LF+OP
    // move does real work in at least one phase).
    assert!(sum_ns > 0, "phases measured no time");
    assert!(
        sum_ns <= total_ns,
        "phase durations ({sum_ns} ns) exceed the reported op duration ({total_ns} ns)"
    );
    // Ending a span feeds the per-phase histogram; every phase shows up.
    for name in ["move.export", "move.transfer", "move.import", "move.flush", "move.fwd_update"] {
        let snap = tel.hist_snapshot(name).unwrap_or_else(|| panic!("no histogram for {name}"));
        assert_eq!(snap.count, 1, "{name} recorded once");
    }
}
