//! Crash-tolerance of the control plane: the controller is killed at
//! every phase boundary of an in-flight move and must recover to a
//! deterministic outcome that matches the crash-free run modulo the
//! losses its abort path explicitly accounts.
//!
//! The crash model is the simulator's: the controller *struct* (and with
//! it the op journal) survives, in-flight messages and timers die. On
//! restart the recovery pass replays the journal and either resumes the
//! op from its last durable phase over the epoch-fenced southbound or
//! rolls it back through the abort path.

use opennf_controller::{
    Command, JournalPhase, MoveProps, Scenario, ScenarioBuilder, ScopeSet,
};
use opennf_nfs::AssetMonitor;
use opennf_packet::{Filter, FlowKey, Packet, TcpFlags};
use opennf_sim::{Dur, FaultPlan, NodeId, Time};
use proptest::prelude::*;

const FLOWS: u32 = 50;

fn schedule(flows: u32, pps: u64, dur: Dur) -> Vec<(u64, Packet)> {
    let mut out = Vec::new();
    let gap_ns = 1_000_000_000 / pps;
    let total = (dur.as_nanos() / gap_ns) as u32;
    for i in 0..total {
        let uid = i as u64 + 1;
        let flow = i % flows;
        let key = FlowKey::tcp(
            format!("10.0.{}.{}", flow / 250, flow % 250 + 1).parse().unwrap(),
            2000 + (flow % 60000) as u16,
            "93.184.216.34".parse().unwrap(),
            80,
        );
        let flags = if i < flows { TcpFlags::SYN } else { TcpFlags::ACK };
        let pkt = Packet::builder(uid, key).flags(flags).seq(uid as u32).build();
        out.push((i as u64 * gap_ns, pkt));
    }
    out
}

/// The Figure 4 two-monitor scenario with a whole-traffic move at 100 ms,
/// optionally crashing the controller (node 0) under `plan`.
fn move_scenario(seed: u64, props: MoveProps, plan: Option<FaultPlan>) -> Scenario {
    let mut b = ScenarioBuilder::new()
        .seed(seed)
        .nf("m1", Box::new(AssetMonitor::new()))
        .nf("m2", Box::new(AssetMonitor::new()))
        .host(schedule(FLOWS, 2_500, Dur::millis(600)))
        .route(0, Filter::any(), 0);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut s = b.build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(100),
        Command::Move { src, dst, filter: Filter::any(), scope: ScopeSet::per_flow(), props },
    );
    s.run_to_completion();
    s
}

/// A deterministic fingerprint of everything recovery can influence:
/// the full journal (phase stream + report snapshots), where the flow
/// state ended up, and the oracle's totals.
fn digest(s: &Scenario) -> String {
    let m1 = s.nf(0).nf_as::<AssetMonitor>().conn_count();
    let m2 = s.nf(1).nf_as::<AssetMonitor>().conn_count();
    let o = s.oracle_with_faults().check();
    format!(
        "m1={} m2={} processed={} forwarded={} journal={}",
        m1,
        m2,
        o.processed,
        o.forwarded,
        s.controller().journal_json()
    )
}

/// Crash just after virtual time `t_ns`, restart 20 ms later.
fn crash_plan(seed: u64, t_ns: u64) -> FaultPlan {
    FaultPlan::new(seed).crash_restart(
        NodeId(0),
        Time(0) + Dur::nanos(t_ns + 1_000),
        Time(0) + Dur::nanos(t_ns) + Dur::millis(20),
    )
}

/// The acceptance test: crash the controller at each of the five durable
/// phases of a loss-free move. Every crashed run must (a) drive the op to
/// a terminal journal phase, (b) satisfy exactly-once-or-accounted, and
/// (c) reproduce the identical digest when re-run with the same seed.
#[test]
fn crash_at_every_move_phase_recovers_deterministically() {
    let clean = move_scenario(7, MoveProps::lf_pl(), None);
    let clean_m2 = clean.nf(1).nf_as::<AssetMonitor>().conn_count();
    assert_eq!(clean_m2, FLOWS as usize, "crash-free move lands all flows at dst");

    // Harvest the move's non-terminal boundaries from the crash-free
    // journal: these are the instants a real controller would have just
    // fsynced the record and then died.
    let boundaries: Vec<(JournalPhase, u64)> = clean
        .controller()
        .journal()
        .records
        .iter()
        .filter(|r| !r.phase.is_terminal())
        .map(|r| (r.phase, r.t_ns))
        .collect();
    let phases: Vec<JournalPhase> = boundaries.iter().map(|(p, _)| *p).collect();
    assert_eq!(
        phases,
        vec![
            JournalPhase::Armed,
            JournalPhase::ExportDone,
            JournalPhase::Transferred,
            JournalPhase::Imported,
            JournalPhase::Flushed,
        ],
        "an LF move journals all five durable phases"
    );

    for (phase, t_ns) in boundaries {
        let a = move_scenario(7, MoveProps::lf_pl(), Some(crash_plan(7, t_ns)));
        let b = move_scenario(7, MoveProps::lf_pl(), Some(crash_plan(7, t_ns)));
        assert_eq!(digest(&a), digest(&b), "recovery after crash at {phase:?} is deterministic");

        let journal = a.controller().journal();
        assert_eq!(journal.epoch, 1, "restart bumped the fencing epoch");
        assert!(journal.in_flight().is_empty(), "crash at {phase:?} left an op unresolved");

        let oracle = a.oracle_with_faults().check();
        assert!(
            oracle.is_exactly_once_or_accounted(),
            "crash at {phase:?}: unaccounted loss/duplication: lost={:?} dup={:?}",
            oracle.lost,
            oracle.duplicated
        );

        // Outcome matches the crash-free run modulo abort_lost: either
        // the op resumed and committed (state at dst, like the clean
        // run), or it rolled back with the state back at the source.
        let reports = a.controller().reports_of("move[LF PL]");
        assert_eq!(reports.len(), 1, "crash at {phase:?}: op must report exactly once");
        let m1 = a.nf(0).nf_as::<AssetMonitor>().conn_count();
        let m2 = a.nf(1).nf_as::<AssetMonitor>().conn_count();
        if reports[0].outcome.is_aborted() {
            assert_eq!(m2, 0, "crash at {phase:?}: rollback must not leave state at dst");
            assert!(
                phase < JournalPhase::Flushed,
                "crash at {phase:?}: post-flush recovery must fail forward, not roll back"
            );
        } else {
            assert_eq!(m2, clean_m2, "crash at {phase:?}: resumed move matches crash-free run");
            assert_eq!(m1, 0, "crash at {phase:?}: resumed move deleted src state");
        }
    }
}

/// Post-flush crashes must fail forward (a rollback would replay flushed
/// events), so the recovered run commits with all state at the dst.
#[test]
fn crash_after_flush_fails_forward() {
    let clean = move_scenario(11, MoveProps::lf_pl(), None);
    let flush_t = clean
        .controller()
        .journal()
        .records
        .iter()
        .find(|r| r.phase == JournalPhase::Flushed)
        .map(|r| r.t_ns)
        .expect("LF move journals a Flushed boundary");

    let s = move_scenario(11, MoveProps::lf_pl(), Some(crash_plan(11, flush_t)));
    let reports = s.controller().reports_of("move[LF PL]");
    assert_eq!(reports.len(), 1);
    assert!(!reports[0].outcome.is_aborted(), "post-flush crash rolled back");
    assert_eq!(s.nf(1).nf_as::<AssetMonitor>().conn_count(), FLOWS as usize);
    assert!(s.oracle_with_faults().check().is_exactly_once_or_accounted());
}

/// A fault-free run journals the op but never bumps the epoch and never
/// sends a fenced southbound message — the journal is pure bookkeeping
/// until a crash happens.
#[test]
fn fault_free_run_journals_without_fencing()
{
    let s = move_scenario(3, MoveProps::lf_pl(), None);
    let journal = s.controller().journal();
    assert_eq!(journal.epoch, 0, "no restart, no epoch bump");
    assert!(journal.in_flight().is_empty());
    assert_eq!(journal.last_phase(journal.records[0].op), Some(JournalPhase::Committed));
    assert_eq!(s.engine.counters().get("nf.fenced_dup"), 0);
    assert_eq!(s.engine.counters().get("nf.fenced_stale"), 0);
}

/// The cross-shard variant of [`move_scenario`]: a 3-switch chain split
/// across 2 shards, src monitor on the ingress switch (shard 0), dst
/// monitor on the last switch (shard 1), P2P move issued to shard 0.
fn cross_shard_scenario(seed: u64, plan: Option<FaultPlan>) -> Scenario {
    let mut b = ScenarioBuilder::new()
        .seed(seed)
        .switches(3)
        .shards(2)
        .nf_at("m1", Box::new(AssetMonitor::new()), 0)
        .nf_at("m2", Box::new(AssetMonitor::new()), 2)
        .host(schedule(FLOWS, 2_500, Dur::millis(600)))
        .route(0, Filter::any(), 0);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut s = b.build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at_shard(
        0,
        Dur::millis(100),
        Command::Move {
            src,
            dst,
            filter: Filter::any(),
            scope: ScopeSet::per_flow(),
            props: MoveProps::lf_pl_p2p(),
        },
    );
    s.run_to_completion();
    s
}

/// Digest over the whole sharded control plane: every shard's journal
/// (the peer's mirrors included) plus where the state landed.
fn digest_sharded(s: &Scenario) -> String {
    let m1 = s.nf(0).nf_as::<AssetMonitor>().conn_count();
    let m2 = s.nf(1).nf_as::<AssetMonitor>().conn_count();
    let o = s.oracle_with_faults().check();
    let journals: Vec<String> =
        (0..s.ctrls.len()).map(|k| s.controller_of(k).journal_json()).collect();
    format!(
        "m1={} m2={} processed={} forwarded={} journals={}",
        m1,
        m2,
        o.processed,
        o.forwarded,
        journals.join("|")
    )
}

/// Crash the shard that owns a cross-shard move at every durable phase
/// boundary of its journal. The owning shard's recovery must resolve the
/// handoff exactly like the single-controller case — and the peer's
/// mirror journal must reach the same terminal verdict via the east-west
/// release.
#[test]
fn owner_shard_crash_at_every_phase_recovers() {
    let clean = cross_shard_scenario(13, None);
    let clean_m2 = clean.nf(1).nf_as::<AssetMonitor>().conn_count();
    assert_eq!(clean_m2, FLOWS as usize, "crash-free cross-shard move lands all flows");

    let boundaries: Vec<(JournalPhase, u64)> = clean
        .controller()
        .journal()
        .records
        .iter()
        .filter(|r| !r.phase.is_terminal())
        .map(|r| (r.phase, r.t_ns))
        .collect();
    assert_eq!(boundaries.len(), 5, "P2P move journals five durable phases");

    for (phase, t_ns) in boundaries {
        let a = cross_shard_scenario(13, Some(crash_plan(13, t_ns)));
        let b = cross_shard_scenario(13, Some(crash_plan(13, t_ns)));
        assert_eq!(
            digest_sharded(&a),
            digest_sharded(&b),
            "cross-shard recovery after crash at {phase:?} is deterministic"
        );

        let journal = a.controller().journal();
        assert_eq!(journal.epoch, 1, "restart bumped the owner's fencing epoch");
        assert!(journal.in_flight().is_empty(), "crash at {phase:?} left the op unresolved");

        let oracle = a.oracle_with_faults().check();
        assert!(
            oracle.is_exactly_once_or_accounted(),
            "crash at {phase:?}: unaccounted loss/duplication: lost={:?} dup={:?}",
            oracle.lost,
            oracle.duplicated
        );

        // The op resolves to a legal terminal state. Committed: all state
        // at dst, src deleted. Aborted (always a rollback for LF+PL+P2P —
        // post-flush recovery resumes instead): the route never left the
        // source, and copy-then-delete means the source still holds every
        // flow. The destination may retain an inert copy if the crash
        // landed after the export reconciled (the abort must not delete
        // it — the source might have deleted in the mirror-image race).
        let reports = a.controller().reports_of("move[LF PL+P2P]");
        assert_eq!(reports.len(), 1, "crash at {phase:?}: op must report exactly once");
        let m1 = a.nf(0).nf_as::<AssetMonitor>().conn_count();
        let m2 = a.nf(1).nf_as::<AssetMonitor>().conn_count();
        if reports[0].outcome.is_aborted() {
            assert_eq!(m1, clean_m2, "crash at {phase:?}: rollback must leave src authoritative");
        } else {
            assert_eq!(m2, clean_m2, "crash at {phase:?}: resumed move matches crash-free run");
            assert_eq!(m1, 0, "crash at {phase:?}: resumed move deleted src state");
        }

        // No stale deliveries on any switch once the dust settles.
        let violations = a.path_violations();
        assert!(violations.is_empty(), "crash at {phase:?}: {violations:?}");
    }
}

/// Crash the *peer* shard (the one that owns the destination NF) in the
/// middle of the P2P transfer. The peer holds only a watch and a journal
/// mirror — chunks flow NF→NF and southbound retries ride out the 20 ms
/// outage — so the owner's move must still reach a terminal state with
/// every packet accounted, and rerunning reproduces it bit-for-bit.
#[test]
fn peer_shard_crash_during_transfer_is_recoverable() {
    let clean = cross_shard_scenario(17, None);
    let export_t = clean
        .controller()
        .journal()
        .records
        .iter()
        .find(|r| r.phase == JournalPhase::ExportDone)
        .map(|r| r.t_ns)
        .expect("P2P move journals ExportDone");

    // The peer controller is the last node in the layout: 2 NFs, 1 host,
    // 3 switches → ctrl₁ = NodeId(7). Take it from the scenario instead
    // of hard-coding.
    let peer = clean.ctrls[1];
    let plan = FaultPlan::new(17).crash_restart(
        peer,
        Time(0) + Dur::nanos(export_t + 1_000),
        Time(0) + Dur::nanos(export_t) + Dur::millis(20),
    );
    let a = cross_shard_scenario(17, Some(plan.clone()));
    let b = cross_shard_scenario(17, Some(plan));
    assert_eq!(digest_sharded(&a), digest_sharded(&b), "peer crash recovery is deterministic");

    let reports = a.controller().reports_of("move[LF PL+P2P]");
    assert_eq!(reports.len(), 1, "owner's op must reach a terminal state");
    assert!(a.controller().journal().in_flight().is_empty());
    assert_eq!(a.controller().journal().epoch, 0, "owner never crashed, never fenced");

    let oracle = a.oracle_with_faults().check();
    assert!(
        oracle.is_exactly_once_or_accounted(),
        "unaccounted: lost={:?} dup={:?}",
        oracle.lost,
        oracle.duplicated
    );
    if !reports[0].outcome.is_aborted() {
        assert_eq!(a.nf(1).nf_as::<AssetMonitor>().conn_count(), FLOWS as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Property: crash the controller at a random instant inside the move
    /// window of a randomly seeded run. Recovery must always resolve the
    /// journal, keep exactly-once-or-accounted, and reproduce the same
    /// digest on a second run with the same seed.
    #[test]
    fn random_crash_in_move_window_recovers(seed in 1u64..4096, off_us in 0u64..40_000) {
        let t_ns = Dur::millis(100).as_nanos() + off_us * 1_000;
        let a = move_scenario(seed, MoveProps::lf_pl(), Some(crash_plan(seed, t_ns)));
        let b = move_scenario(seed, MoveProps::lf_pl(), Some(crash_plan(seed, t_ns)));
        prop_assert_eq!(digest(&a), digest(&b), "same seed, same crash, different outcome");

        let journal = a.controller().journal();
        prop_assert!(journal.in_flight().is_empty(), "recovery left an op unresolved");
        let oracle = a.oracle_with_faults().check();
        prop_assert!(
            oracle.is_exactly_once_or_accounted(),
            "unaccounted packets: lost={:?} dup={:?}", oracle.lost, oracle.duplicated
        );
        // Modulo abort_lost the outcome matches one of the two legal
        // terminal states: committed (state at dst) or aborted (state
        // back at src, loss accounted in the report).
        let m2 = a.nf(1).nf_as::<AssetMonitor>().conn_count();
        let reports = a.controller().reports_of("move[LF PL]");
        if let Some(r) = reports.first() {
            if r.outcome.is_aborted() {
                prop_assert_eq!(m2, 0);
            } else {
                prop_assert_eq!(m2, FLOWS as usize);
            }
        }
    }
}
