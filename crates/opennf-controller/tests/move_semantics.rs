//! End-to-end semantics of the northbound operations on the Figure 4
//! topology: two PRADS-like monitors behind one switch, traffic replayed
//! while state moves. The §5.1 guarantees are checked by the oracle, not
//! assumed.

use opennf_controller::{
    Command, ConsistencyLevel, MoveProps, NfNode, Scenario, ScenarioBuilder, ScopeSet,
};
use opennf_nfs::AssetMonitor;
use opennf_packet::{Filter, FlowKey, Packet, TcpFlags};
use opennf_sim::{Dur, Time};

/// Builds a schedule: `flows` TCP flows from distinct client ports, total
/// rate `pps`, running for `dur`. Every flow starts with a SYN; data
/// packets round-robin across flows.
fn schedule(flows: u32, pps: u64, dur: Dur) -> Vec<(u64, Packet)> {
    let mut out = Vec::new();
    let gap_ns = 1_000_000_000 / pps;
    let total = (dur.as_nanos() / gap_ns) as u32;
    for i in 0..total {
        let uid = i as u64 + 1;
        let flow = i % flows;
        let key = FlowKey::tcp(
            format!("10.0.{}.{}", flow / 250, flow % 250 + 1).parse().unwrap(),
            2000 + (flow % 60000) as u16,
            "93.184.216.34".parse().unwrap(),
            80,
        );
        let flags = if i < flows { TcpFlags::SYN } else { TcpFlags::ACK };
        let pkt = Packet::builder(uid, key).flags(flags).seq(uid as u32).build();
        out.push((i as u64 * gap_ns, pkt));
    }
    out
}

fn two_monitor_scenario(flows: u32, pps: u64, dur: Dur) -> Scenario {
    ScenarioBuilder::new()
        .nf("m1", Box::new(AssetMonitor::new()))
        .nf("m2", Box::new(AssetMonitor::new()))
        .host(schedule(flows, pps, dur))
        .route(0, Filter::any(), 0)
        .build()
}

fn run_move(props: MoveProps, flows: u32) -> Scenario {
    let mut s = two_monitor_scenario(flows, 2_500, Dur::millis(600));
    let (src, dst) = (s.instances[0], s.instances[1]);
    // Let state build up, then move everything at t = 100 ms.
    s.issue_at(
        Dur::millis(100),
        Command::Move { src, dst, filter: Filter::any(), scope: ScopeSet::per_flow(), props },
    );
    s.run_to_completion();
    s
}

fn monitor_conns(s: &Scenario, idx: usize) -> usize {
    s.nf(idx).nf_as::<AssetMonitor>().conn_count()
}

#[test]
fn ng_move_transfers_state_but_drops_packets() {
    let s = run_move(MoveProps::ng_pl(), 50);
    // State ended up at the destination.
    assert_eq!(monitor_conns(&s, 0), 0, "src state deleted");
    assert_eq!(monitor_conns(&s, 1), 50, "dst holds all flows");
    // The move completed and was reported.
    let reports = s.controller().reports_of("move[NG PL]");
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].chunks, 50);
    // Packets arriving during the move were dropped at the source.
    assert!(s.total_nf_drops() > 0, "NG move must drop in-flight packets");
    let oracle = s.oracle().check();
    assert!(!oracle.is_loss_free(), "NG is not loss-free: {oracle:?}");
}

#[test]
fn lf_move_is_loss_free() {
    let s = run_move(MoveProps::lf_pl(), 50);
    assert_eq!(monitor_conns(&s, 0), 0);
    assert_eq!(monitor_conns(&s, 1), 50);
    let reports = s.controller().reports_of("move[LF PL]");
    assert_eq!(reports.len(), 1);
    assert!(reports[0].events_buffered > 0, "in-flight packets became events");
    let oracle = s.oracle().check();
    assert!(oracle.is_loss_free(), "LF move lost packets: {:?}", oracle.lost);
    // Every packet the host sent was processed exactly once somewhere.
    assert_eq!(oracle.processed, oracle.forwarded);
}

#[test]
fn lf_er_move_is_loss_free_and_faster_release() {
    let s = run_move(MoveProps::lf_pl_er(), 50);
    let oracle = s.oracle().check();
    assert!(oracle.is_loss_free(), "{:?}", oracle.lost);
    let reports = s.controller().reports_of("move[LF PL+ER]");
    assert_eq!(reports.len(), 1);
}

#[test]
fn lf_p2p_move_is_loss_free_and_bypasses_controller() {
    let s = run_move(MoveProps::lf_pl_p2p(), 50);
    assert_eq!(monitor_conns(&s, 0), 0, "src state deleted (copy-then-delete completed)");
    assert_eq!(monitor_conns(&s, 1), 50, "dst holds all flows");
    let reports = s.controller().reports_of("move[LF PL+P2P]");
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].chunks, 50, "export summary counted every flow");
    assert!(reports[0].bytes > 0, "export summary carried the byte count");
    assert!(reports[0].p2p_inflight.is_empty(), "no transfer cut short");
    let oracle = s.oracle().check();
    assert!(oracle.is_loss_free(), "P2P move lost packets: {:?}", oracle.lost);
    assert_eq!(oracle.processed, oracle.forwarded);
}

#[test]
fn lf_p2p_move_faster_than_controller_mediated() {
    // Footnote 10: shipping chunk batches src → dst directly beats
    // bouncing every chunk through the controller.
    let relayed = run_move(MoveProps::lf_pl(), 100);
    let direct = run_move(MoveProps::lf_pl_p2p(), 100);
    let t = |s: &Scenario, k: &str| s.controller().reports_of(k)[0].duration_ms();
    let (t_relay, t_p2p) = (t(&relayed, "move[LF PL]"), t(&direct, "move[LF PL+P2P]"));
    assert!(t_p2p < t_relay, "P2P {t_p2p} ms < relayed {t_relay} ms");
}

#[test]
fn lfop_move_is_loss_free_and_order_preserving() {
    let s = run_move(MoveProps::lfop_pl_er(), 50);
    assert_eq!(monitor_conns(&s, 1), 50);
    let oracle = s.oracle().check();
    assert!(oracle.is_loss_free(), "lost: {:?} dup: {:?}", oracle.lost, oracle.duplicated);
    assert!(
        oracle.is_order_preserving(),
        "per-flow reordering: {:?}",
        oracle.reordered_per_flow
    );
    let reports = s.controller().reports_of("move[LF+OP");
    assert_eq!(reports.len(), 1);
    assert!(reports[0].packet_ins > 0, "two-phase window saw packets");
}

#[test]
fn lfop_without_er_also_preserves_order() {
    let props = MoveProps {
        variant: opennf_controller::MoveVariant::LossFreeOrderPreserving,
        parallel: true,
        early_release: false,
        ..Default::default()
    };
    let s = run_move(props, 30);
    let oracle = s.oracle().check();
    assert!(oracle.is_loss_free());
    assert!(oracle.is_order_preserving(), "reordered: {:?}", oracle.reordered_per_flow);
    assert!(
        oracle.is_globally_order_preserving(),
        "the non-ER OP move buffers everything and is globally ordered: {:?}",
        oracle.reordered_global
    );
}

#[test]
fn lf_move_faster_than_op_move_and_ng_fastest() {
    let ng = run_move(MoveProps::ng_pl(), 100);
    let lf = run_move(MoveProps::lf_pl_er(), 100);
    let op = run_move(MoveProps::lfop_pl_er(), 100);
    let t = |s: &Scenario, k: &str| s.controller().reports_of(k)[0].duration_ms();
    let (t_ng, t_lf, t_op) = (t(&ng, "move[NG"), t(&lf, "move[LF PL+ER]"), t(&op, "move[LF+OP"));
    assert!(t_ng < t_lf, "NG {t_ng} < LF {t_lf}");
    assert!(t_lf < t_op, "LF {t_lf} < OP {t_op}");
}

#[test]
fn move_on_idle_flows_completes_via_timeout() {
    // No traffic at all: the OP move must not hang on the first-packet wait.
    let mut s = ScenarioBuilder::new()
        .nf("m1", Box::new(AssetMonitor::new()))
        .nf("m2", Box::new(AssetMonitor::new()))
        .host(schedule(10, 2_500, Dur::millis(50))) // traffic stops at 50 ms
        .route(0, Filter::any(), 0)
        .build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    // Move at 200 ms, long after the trace went quiet.
    s.issue_at(
        Dur::millis(200),
        Command::Move {
            src,
            dst,
            filter: Filter::any(),
            scope: ScopeSet::per_flow(),
            props: MoveProps::lfop_pl_er(),
        },
    );
    s.run_to_completion();
    let reports = s.controller().reports_of("move[LF+OP");
    assert_eq!(reports.len(), 1, "op completed despite zero in-window packets");
    assert_eq!(monitor_conns(&s, 1), 10);
}

#[test]
fn partial_filter_moves_only_matching_flows() {
    let mut s = two_monitor_scenario(40, 2_500, Dur::millis(400));
    let (src, dst) = (s.instances[0], s.instances[1]);
    // Flows come from 10.0.0.x; move only sources 10.0.0.1–10.0.0.16/28… use
    // a /28 over part of the space.
    let filter = Filter::from_src("10.0.0.0/28".parse().unwrap()).bidi();
    s.issue_at(
        Dur::millis(100),
        Command::Move { src, dst, filter, scope: ScopeSet::per_flow(), props: MoveProps::lf_pl() },
    );
    s.run_to_completion();
    let total = monitor_conns(&s, 0) + monitor_conns(&s, 1);
    assert_eq!(total, 40, "no flow lost");
    let moved = monitor_conns(&s, 1);
    assert!(moved > 0 && moved < 40, "a strict subset moved: {moved}");
}

#[test]
fn copy_leaves_source_intact() {
    let mut s = two_monitor_scenario(30, 2_500, Dur::millis(300));
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(100),
        Command::Copy { src, dst, filter: Filter::any(), scope: ScopeSet::multi_flow() },
    );
    s.run_to_completion();
    assert_eq!(monitor_conns(&s, 0), 30, "source keeps processing");
    let m2 = s.nf(1).nf_as::<AssetMonitor>();
    assert!(m2.asset_count() > 0, "multi-flow assets copied");
    let reports = s.controller().reports_of("copy");
    assert_eq!(reports.len(), 1);
    assert!(reports[0].bytes > 0);
    // No drops, no forwarding change.
    assert_eq!(s.total_nf_drops(), 0);
    let oracle = s.oracle().check();
    assert!(oracle.is_loss_free());
}

#[test]
fn move_per_and_multi_flow_scopes_together() {
    let mut s = two_monitor_scenario(30, 2_500, Dur::millis(400));
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(100),
        Command::Move {
            src,
            dst,
            filter: Filter::any(),
            scope: ScopeSet { per_flow: true, multi_flow: true, all_flows: false },
            props: MoveProps::lf_pl(), // ER forbidden with both scopes (§5.1.3)
        },
    );
    s.run_to_completion();
    let m1 = s.nf(0).nf_as::<AssetMonitor>();
    let m2 = s.nf(1).nf_as::<AssetMonitor>();
    assert_eq!(m1.conn_count(), 0);
    assert_eq!(m1.asset_count(), 0, "multi-flow state moved too");
    assert_eq!(m2.conn_count(), 30);
    assert!(m2.asset_count() > 0);
}

#[test]
fn share_strong_synchronizes_multiflow_state() {
    let mut s = two_monitor_scenario(20, 1_000, Dur::millis(300));
    let insts = vec![s.instances[0], s.instances[1]];
    // Split traffic across the two instances: sources 10.0.0.0/28 → m2.
    s.issue_at(
        Dur::ZERO,
        Command::Route {
            filter: Filter::from_src("10.0.0.0/28".parse().unwrap()),
            priority: 5,
            inst: s.instances[1],
        },
    );
    s.issue_at(
        Dur::millis(1),
        Command::Share {
            insts,
            filter: Filter::any(),
            scope: ScopeSet::multi_flow(),
            consistency: ConsistencyLevel::Strong,
        },
    );
    s.run_to_completion();
    // Both instances end with identical asset tables for the shared hosts.
    let m1 = s.nf(0).nf_as::<AssetMonitor>();
    let m2 = s.nf(1).nf_as::<AssetMonitor>();
    assert!(m1.asset_count() > 0);
    assert_eq!(m1.asset_count(), m2.asset_count(), "asset tables converged");
    let synced: u64 = s.controller().shares().map(|sh| sh.packets_synced).sum();
    assert!(synced > 0, "packets flowed through the share serializer");
}

#[test]
fn concurrent_moves_both_complete() {
    let mut s = ScenarioBuilder::new()
        .nf("a", Box::new(AssetMonitor::new()))
        .nf("b", Box::new(AssetMonitor::new()))
        .nf("c", Box::new(AssetMonitor::new()))
        .host(schedule(60, 3_000, Dur::millis(500)))
        .route(0, Filter::any(), 0)
        .build();
    let (a, b, c) = (s.instances[0], s.instances[1], s.instances[2]);
    let left = Filter::from_src("10.0.0.0/28".parse().unwrap()).bidi();
    let right = Filter::from_src("10.0.0.16/28".parse().unwrap()).bidi();
    s.issue_at(
        Dur::millis(100),
        Command::Move { src: a, dst: b, filter: left, scope: ScopeSet::per_flow(), props: MoveProps::lf_pl() },
    );
    s.issue_at(
        Dur::millis(100),
        Command::Move { src: a, dst: c, filter: right, scope: ScopeSet::per_flow(), props: MoveProps::lf_pl() },
    );
    s.run_to_completion();
    assert_eq!(s.controller().reports.len(), 2);
    let b_conns = monitor_conns(&s, 1);
    let c_conns = monitor_conns(&s, 2);
    assert!(b_conns > 0 && c_conns > 0, "both moves landed ({b_conns}, {c_conns})");
    let oracle = s.oracle().check();
    assert!(oracle.is_loss_free(), "{:?}", oracle.lost);
}

#[test]
fn route_command_steers_traffic() {
    let mut s = two_monitor_scenario(10, 1_000, Dur::millis(300));
    // Route half the sources to m2 at t=50ms; both instances end up with
    // packets, and nothing is lost at the switch.
    s.issue_at(
        Dur::millis(50),
        Command::Route {
            filter: Filter::from_src("10.0.0.0/29".parse().unwrap()),
            priority: 7,
            inst: s.instances[1],
        },
    );
    s.run_to_completion();
    assert!(!s.nf(0).processed_log().is_empty());
    assert!(!s.nf(1).processed_log().is_empty());
    let oracle = s.oracle().check();
    assert!(oracle.is_loss_free());
}

#[test]
fn copy_all_three_scopes() {
    let mut s = two_monitor_scenario(20, 2_000, Dur::millis(300));
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(100),
        Command::Copy { src, dst, filter: Filter::any(), scope: ScopeSet::all() },
    );
    s.run_to_completion();
    let m2 = s.nf(1).nf_as::<AssetMonitor>();
    assert_eq!(m2.conn_count(), 20, "per-flow copied");
    assert!(m2.asset_count() > 0, "multi-flow copied");
    assert!(m2.stats().packets > 0, "all-flows stats copied");
    // Source untouched.
    assert_eq!(s.nf(0).nf_as::<AssetMonitor>().conn_count(), 20);
}

#[test]
fn record_traffic_captures_forwarded_packets() {
    let mut s = ScenarioBuilder::new()
        .record_traffic()
        .nf("m1", Box::new(AssetMonitor::new()))
        .host(schedule(5, 1_000, Dur::millis(50)))
        .route(0, Filter::any(), 0)
        .build();
    s.run_to_completion();
    let trace = &s.switch().trace;
    assert_eq!(trace.uids_at("sw.fwd").len(), 50);
    assert!(trace.dump().contains("sw.fwd"));
}

#[test]
fn notify_feeds_control_application() {
    use opennf_controller::{ControlApp, NoopApp};
    struct CountingApp {
        inst: opennf_sim::NodeId,
        seen: std::rc::Rc<std::cell::Cell<u64>>,
    }
    impl ControlApp for CountingApp {
        fn on_start(&mut self, api: &mut opennf_controller::controller::Api<'_>) {
            api.issue(Command::Notify {
                inst: self.inst,
                filter: Filter::any().proto(opennf_packet::Proto::Tcp).with_tcp_flags(TcpFlags::SYN),
                enable: true,
            });
        }
        fn on_notify(
            &mut self,
            _api: &mut opennf_controller::controller::Api<'_>,
            _inst: opennf_sim::NodeId,
            _pkt: &Packet,
        ) {
            self.seen.set(self.seen.get() + 1);
        }
    }
    let seen = std::rc::Rc::new(std::cell::Cell::new(0));
    // Instance ids are deterministic: ctrl=0, sw=1, first NF=2.
    let app = CountingApp { inst: opennf_sim::NodeId(2), seen: seen.clone() };
    let mut s = ScenarioBuilder::new()
        .app(Box::new(app))
        .nf("m1", Box::new(AssetMonitor::new()))
        .host(schedule(10, 1_000, Dur::millis(100)))
        .route(0, Filter::any(), 0)
        .build();
    s.run_to_completion();
    // The first SYNs can race the enableEvents installation (≈0.3 ms);
    // everything after the filter is live must be notified.
    assert!(seen.get() >= 9, "SYNs notified: {}", seen.get());
    // Notify uses action=process: nothing dropped.
    assert_eq!(s.total_nf_drops(), 0);
    let _ = NoopApp; // silence unused import lint paths
    let _: &NfNode = s.nf(0);
    assert_eq!(s.nf(0).processed_log().len(), s.oracle().check().processed);
    assert!(s.engine.now() > Time::ZERO);
}
