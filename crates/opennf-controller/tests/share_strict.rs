//! Strict-consistency share (§5.2.2): matching traffic is redirected to
//! the controller, which serializes packets in switch-arrival order and
//! runs the inject → completion-event → state-sync cycle one packet at a
//! time. The result is the strongest guarantee in the paper: every
//! instance's shared state reflects updates in exactly the order the
//! switch saw the packets.

use opennf_controller::{
    Command, ConsistencyLevel, Oracle, ScenarioBuilder, ScopeSet, SwitchNode,
};
use opennf_nfs::AssetMonitor;
use opennf_packet::{Filter, FlowKey, Packet, TcpFlags};
use opennf_sim::Dur;

/// Traffic starts 100 ms in, after the strict share's redirect rule has
/// taken effect (state created before the redirect would simply predate
/// the share — consistency covers updates from activation onward).
fn schedule(flows: u32, pps: u64, dur: Dur) -> Vec<(u64, Packet)> {
    let gap = 1_000_000_000 / pps;
    let total = dur.as_nanos() / gap;
    let offset = 100_000_000u64;
    (0..total)
        .map(|i| {
            let f = (i % flows as u64) as u32;
            let key = FlowKey::tcp(
                format!("10.0.0.{}", f % 200 + 1).parse().unwrap(),
                3_000 + f as u16,
                "1.1.1.1".parse().unwrap(),
                80,
            );
            let flags = if i < flows as u64 { TcpFlags::SYN } else { TcpFlags::ACK };
            (offset + i * gap, Packet::builder(i + 1, key).flags(flags).seq(i as u32).build())
        })
        .collect()
}

#[test]
fn strict_share_serializes_globally_and_converges() {
    let mut s = ScenarioBuilder::new()
        .nf("m1", Box::new(AssetMonitor::new()))
        .nf("m2", Box::new(AssetMonitor::new()))
        .host(schedule(16, 800, Dur::millis(400)))
        .route(0, Filter::any(), 0)
        .build();
    // Split: odd sources pre-assigned to m2 (the strict share uses this
    // routing snapshot to decide each packet's originating instance).
    s.issue_at(
        Dur::ZERO,
        Command::Route {
            filter: Filter::from_src("10.0.0.0/28".parse().unwrap()),
            priority: 5,
            inst: s.instances[1],
        },
    );
    let insts = s.instances.clone();
    s.issue_at(
        Dur::millis(1),
        Command::Share {
            insts,
            filter: Filter::any(),
            scope: ScopeSet::multi_flow(),
            consistency: ConsistencyLevel::Strict,
        },
    );
    s.run_to_completion();

    // Packets flowed through the controller's global serializer.
    let synced: u64 = s.controller().shares().map(|sh| sh.packets_synced).sum();
    assert!(synced > 100, "strict share synchronized packets: {synced}");

    // Both instances converged to identical asset tables.
    let m1 = s.nf(0).nf_as::<AssetMonitor>();
    let m2 = s.nf(1).nf_as::<AssetMonitor>();
    assert!(m1.asset_count() > 0);
    assert_eq!(m1.asset_count(), m2.asset_count(), "asset tables converged");

    // Global order preserved: processing across both instances followed
    // switch arrival order exactly.
    let sw: &SwitchNode = s.engine.node(s.sw);
    let mut oracle = Oracle::new(&sw.forward_log);
    for idx in 0..2 {
        let n = s.nf(idx);
        oracle.add_instance(n.records.iter().map(|r| (r.uid, r.done_ns)));
    }
    let rep = oracle.check();
    assert!(rep.is_loss_free(), "lost: {:?}", rep.lost);
    assert!(
        rep.is_globally_order_preserving(),
        "strict consistency must process in switch order: {:?}",
        rep.reordered_global
    );
}

#[test]
fn strict_share_adds_more_latency_than_strong() {
    let run = |consistency| {
        let mut s = ScenarioBuilder::new()
            .nf("m1", Box::new(AssetMonitor::new()))
            .nf("m2", Box::new(AssetMonitor::new()))
            .host(schedule(16, 500, Dur::millis(300)))
            .route(0, Filter::any(), 0)
            .build();
        let insts = s.instances.clone();
        s.issue_at(
            Dur::millis(1),
            Command::Share {
                insts,
                filter: Filter::any(),
                scope: ScopeSet::multi_flow(),
                consistency,
            },
        );
        s.run_to_completion();
        let (affected, baseline) = s.latency_split();
        // In strict mode every packet is affected; compare raw means.
        if affected.is_empty() {
            baseline.mean()
        } else {
            affected.mean()
        }
    };
    let strong = run(ConsistencyLevel::Strong);
    let strict = run(ConsistencyLevel::Strict);
    // Strict serializes globally (one queue) and detours via packet-in:
    // it cannot be cheaper than strong's per-host queues.
    assert!(
        strict >= strong * 0.9,
        "strict ({strict:.2} ms) should cost at least strong ({strong:.2} ms)"
    );
    assert!(strict > 0.5, "strict adds real latency: {strict:.2} ms");
}
