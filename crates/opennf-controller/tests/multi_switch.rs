//! Multi-switch topologies under a sharded control plane.
//!
//! The chain topology generalizes Figure 4: hosts enter at the ingress
//! switch, NFs sit on the switch chosen by `nf_at`, and forwarding
//! updates fan the same rule to every switch on the path. Sharding the
//! controller splits ownership of switches/NFs into contiguous runs;
//! a move whose source and destination live in different shards runs as
//! a two-shard handoff over east-west messages while keeping the §5.1
//! guarantees.
//!
//! The path-consistency oracle checked here is the new cross-switch
//! guarantee: once a move commits, no packet that *entered the network
//! after the commit* may still be delivered to the old instance by any
//! switch.

use opennf_controller::{Command, MoveProps, Scenario, ScenarioBuilder, ScopeSet};
use opennf_nfs::AssetMonitor;
use opennf_packet::{Filter, FlowKey, Packet, TcpFlags};
use opennf_sim::Dur;
use opennf_telemetry::Telemetry;
use proptest::prelude::*;

fn schedule(flows: u32, pps: u64, dur: Dur) -> Vec<(u64, Packet)> {
    let mut out = Vec::new();
    let gap_ns = 1_000_000_000 / pps;
    let total = (dur.as_nanos() / gap_ns) as u32;
    for i in 0..total {
        let uid = i as u64 + 1;
        let flow = i % flows;
        let key = FlowKey::tcp(
            format!("10.0.{}.{}", flow / 250, flow % 250 + 1).parse().unwrap(),
            2000 + (flow % 60000) as u16,
            "93.184.216.34".parse().unwrap(),
            80,
        );
        let flags = if i < flows { TcpFlags::SYN } else { TcpFlags::ACK };
        let pkt = Packet::builder(uid, key).flags(flags).seq(uid as u32).build();
        out.push((i as u64 * gap_ns, pkt));
    }
    out
}

/// `switches`-long chain, 2 shards, src monitor on the ingress switch,
/// dst monitor on the last switch, whole-traffic move at 100 ms issued
/// to the shard that owns the source.
fn cross_shard_scenario(
    seed: u64,
    switches: usize,
    flows: u32,
    pps: u64,
    props: MoveProps,
    tel: Option<Telemetry>,
) -> Scenario {
    let mut b = ScenarioBuilder::new()
        .seed(seed)
        .switches(switches)
        .shards(2)
        .nf_at("m1", Box::new(AssetMonitor::new()), 0)
        .nf_at("m2", Box::new(AssetMonitor::new()), switches - 1)
        .host(schedule(flows, pps, Dur::millis(400)))
        .route(0, Filter::any(), 0);
    if let Some(tel) = tel {
        b = b.telemetry(tel);
    }
    let mut s = b.build();
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at_shard(
        0,
        Dur::millis(100),
        Command::Move { src, dst, filter: Filter::any(), scope: ScopeSet::per_flow(), props },
    );
    s.run_to_completion();
    s
}

/// The acceptance run from the issue: a P2P move of 2000 flows across a
/// 3-switch / 2-shard topology. The move must commit, land every flow at
/// the destination, preserve loss-freedom, and satisfy the
/// path-consistency oracle on every switch.
#[test]
fn cross_shard_p2p_move_of_2000_flows() {
    const FLOWS: u32 = 2_000;
    let s = cross_shard_scenario(21, 3, FLOWS, 50_000, MoveProps::lf_pl_p2p(), None);

    assert_eq!(s.ctrls.len(), 2, "two shard controllers");
    assert_eq!(s.switch_ids.len(), 3, "three switches");

    let reports = s.controller().reports_of("move[LF PL+P2P]");
    assert_eq!(reports.len(), 1, "exactly one move report on the owning shard");
    assert!(!reports[0].outcome.is_aborted(), "cross-shard move committed");
    assert!(reports[0].chunks > 0, "state actually transferred");

    assert_eq!(
        s.nf(1).nf_as::<AssetMonitor>().conn_count(),
        FLOWS as usize,
        "all flows landed at the destination shard's instance"
    );
    assert_eq!(s.nf(0).nf_as::<AssetMonitor>().conn_count(), 0, "source deleted");

    let o = s.oracle().check();
    assert!(o.is_loss_free(), "lost: {:?}", o.lost);

    let violations = s.path_violations();
    assert!(violations.is_empty(), "stale deliveries after commit: {violations:?}");

    // The handoff really crossed shards: the owner counted the op and the
    // peer relayed at least one southbound message (acks from the dst NF
    // and flow-mod confirms from the last switch arrive at shard 1).
    let tel = s.telemetry();
    assert_eq!(tel.counter("shard.cross_ops").load(std::sync::atomic::Ordering::Relaxed), 1);
    assert!(
        tel.counter("shard.relayed").load(std::sync::atomic::Ordering::Relaxed) > 0,
        "peer shard relayed east-west traffic"
    );

    // Both shards journaled the op: the owner's full phase stream, the
    // peer's Armed → terminal mirror.
    assert!(s.controller_of(0).journal_json().contains("Committed"));
    let peer = s.controller_of(1).journal_json();
    assert!(peer.contains("ew-watch"), "peer journaled the Armed mirror");
    assert!(peer.contains("Committed"), "peer journaled the release");
}

/// A multi-switch chain with a single (unsharded) controller behaves
/// like Figure 4 with extra hops: the same move commits and the path
/// oracle holds across all switches.
#[test]
fn multi_switch_single_controller_move() {
    const FLOWS: u32 = 60;
    let mut s = ScenarioBuilder::new()
        .seed(5)
        .switches(3)
        .nf_at("m1", Box::new(AssetMonitor::new()), 0)
        .nf_at("m2", Box::new(AssetMonitor::new()), 2)
        .host(schedule(FLOWS, 2_500, Dur::millis(400)))
        .route(0, Filter::any(), 0)
        .build();
    assert_eq!(s.ctrls.len(), 1, "one controller");
    let (src, dst) = (s.instances[0], s.instances[1]);
    s.issue_at(
        Dur::millis(100),
        Command::Move {
            src,
            dst,
            filter: Filter::any(),
            scope: ScopeSet::per_flow(),
            props: MoveProps::lf_pl(),
        },
    );
    s.run_to_completion();

    assert_eq!(s.nf(1).nf_as::<AssetMonitor>().conn_count(), FLOWS as usize);
    assert!(s.oracle().check().is_loss_free());
    assert!(s.path_violations().is_empty());
}

/// The legacy single-switch build is bit-for-bit unaffected by the
/// generalization: same node ids, no shard configuration, no extra
/// controllers.
#[test]
fn single_switch_layout_unchanged() {
    let s = ScenarioBuilder::new()
        .seed(1)
        .nf("m1", Box::new(AssetMonitor::new()))
        .nf("m2", Box::new(AssetMonitor::new()))
        .host(schedule(10, 2_500, Dur::millis(50)))
        .route(0, Filter::any(), 0)
        .build();
    assert_eq!(s.ctrl.0, 0);
    assert_eq!(s.sw.0, 1);
    assert_eq!(s.instances.iter().map(|n| n.0).collect::<Vec<_>>(), vec![2, 3]);
    assert_eq!(s.hosts.iter().map(|n| n.0).collect::<Vec<_>>(), vec![4]);
    assert_eq!(s.switch_ids, vec![s.sw]);
    assert_eq!(s.ctrls, vec![s.ctrl]);
}

fn rec_fingerprint(tel: &Telemetry) -> Vec<String> {
    tel.records()
        .iter()
        .map(|r| format!("{} {} {} {:?}", r.t_ns, r.kind.phase(), r.name, r.arg))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Property (fault-free): on a random 2–4 switch, 2-shard chain with
    /// a cross-shard P2P move, the path-consistency oracle holds, the
    /// move commits every flow, and a `sampled(cap, 1)` flight recorder
    /// captures exactly the same records as an unsampled one on the same
    /// run — sampling with n=1 is the identity.
    #[test]
    fn random_chain_cross_shard_move_is_path_consistent(
        seed in 1u64..2048,
        switches in 2usize..=4,
        flows in 20u32..80,
    ) {
        let plain = Telemetry::manual();
        let a = cross_shard_scenario(seed, switches, flows, 2_500, MoveProps::lf_pl_p2p(), Some(plain.clone()));

        let violations = a.path_violations();
        prop_assert!(violations.is_empty(), "stale deliveries: {:?}", violations);
        let o = a.oracle().check();
        prop_assert!(o.is_loss_free(), "lost: {:?}", o.lost);
        prop_assert_eq!(a.nf(1).nf_as::<AssetMonitor>().conn_count(), flows as usize);

        // Same run, recorder built with the explicit sampling constructor
        // at n=1: record streams must be identical.
        let sampled = Telemetry::manual_sampled(opennf_telemetry::DEFAULT_RECORDER_CAPACITY, 1);
        let b = cross_shard_scenario(seed, switches, flows, 2_500, MoveProps::lf_pl_p2p(), Some(sampled.clone()));
        prop_assert_eq!(b.path_violations().len(), 0);
        prop_assert_eq!(rec_fingerprint(&plain), rec_fingerprint(&sampled));
    }
}
