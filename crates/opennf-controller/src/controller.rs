//! The controller node: hosts the northbound operations, routes switch
//! and NF messages to them, models the controller's serial CPU (the
//! Figure 13 bottleneck), and hosts a control application.

use std::collections::{HashMap, HashSet};

use opennf_nf::{LogRecord, NfEvent};
use opennf_packet::{Filter, Packet};
use opennf_sched::{OpClass, OpScheduler, PendingOp, SchedPolicy};
use opennf_sim::{Ctx, Dur, Node, NodeId, Time};
use opennf_telemetry::Telemetry;

use crate::config::NetConfig;
use crate::journal::{JournalPhase, JournalRecord, OpJournal};
use crate::msg::{Command, Msg, OpId};
use crate::ops::copy_op::CopyOp;
use crate::ops::move_op::MoveOp;
use crate::ops::report::{OpOutcome, OpReport};
use crate::ops::share_op::ShareOp;
use crate::ops::OpCtx;

/// Op ids are allocated in a sparse namespace so ops can mint private
/// correlation sub-ids (see `share_op`).
const OP_STRIDE: u64 = 1 << 20;

/// Timer tag for the application tick.
const TAG_APP_TICK: u32 = 0xA11C;

/// Timer tag for expiring a lingering (completed) move op.
const TAG_MOVE_EXPIRE: u32 = 0xE0F;

/// How long a completed move keeps forwarding late events (covers packets
/// that were already in flight toward the source when the route changed,
/// plus the deferred `disableEvents`).
const MOVE_LINGER: Dur = Dur(600_000_000);

/// What a hosted control application can do.
pub struct Api<'a> {
    now: Time,
    cmds: &'a mut Vec<Command>,
    tick: &'a mut Option<Dur>,
}

impl Api<'_> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Issues a northbound command (processed after the callback returns).
    pub fn issue(&mut self, cmd: Command) {
        self.cmds.push(cmd);
    }

    /// Requests periodic `on_tick` callbacks (None disables).
    pub fn set_tick(&mut self, period: Option<Dur>) {
        *self.tick = period;
    }
}

/// A control application hosted on the controller (§6). The interface is
/// event-driven, like the paper's Floodlight module.
pub trait ControlApp: 'static {
    /// Called once at simulation start.
    fn on_start(&mut self, _api: &mut Api<'_>) {}

    /// Called on the period requested via [`Api::set_tick`].
    fn on_tick(&mut self, _api: &mut Api<'_>) {}

    /// An NF raised an alert (`alert.*` log record).
    fn on_alert(&mut self, _api: &mut Api<'_>, _inst: NodeId, _alert: &LogRecord) {}

    /// A `notify` subscription matched a packet event (§5.2.1 callback).
    fn on_notify(&mut self, _api: &mut Api<'_>, _inst: NodeId, _pkt: &Packet) {}

    /// A northbound operation completed.
    fn on_op_complete(&mut self, _api: &mut Api<'_>, _report: &OpReport) {}

    /// An operation aborted after blaming a specific NF instance
    /// (unresponsive or crashed). Called before `on_op_complete` so the
    /// application can react — e.g. the failover app re-routes traffic to
    /// a standby.
    fn on_nf_failed(&mut self, _api: &mut Api<'_>, _inst: NodeId, _reason: &str) {}
}

/// The do-nothing application.
pub struct NoopApp;

impl ControlApp for NoopApp {}

/// The OpenNF controller.
pub struct ControllerNode {
    cfg: NetConfig,
    sw: NodeId,
    /// Serial-CPU occupancy: every handled message delays subsequent
    /// reactions (this is what saturates in Figure 13).
    busy: Time,
    next_op: u64,
    next_prio: u16,
    moves: HashMap<u64, MoveOp>,
    copies: HashMap<u64, CopyOp>,
    shares: HashMap<u64, ShareOp>,
    /// Completed operation reports, in completion order.
    pub reports: Vec<OpReport>,
    /// Shadow of intended routing: `(priority, filter, instance)`.
    route_shadow: Vec<(u16, Filter, NodeId)>,
    notify_subs: Vec<(NodeId, Filter)>,
    app: Box<dyn ControlApp>,
    tick: Option<Dur>,
    pending_cmds: Vec<Command>,
    /// Messages handled (scalability metric).
    pub messages_handled: u64,
    /// Bytes handled (scalability metric).
    pub bytes_handled: u64,
    /// The run's telemetry (manual clock driven by virtual time).
    tel: Telemetry,
    /// The write-ahead op journal. The struct field survives a crash
    /// window (the engine's crash model is a recovered process), so it
    /// plays the role of the durable store; in-flight messages and
    /// timers die with the crash and model the volatile state.
    journal: OpJournal,
    /// Mint for southbound fence sequence numbers (see [`Msg::SbFenced`]).
    fence_seq: u64,
    // --- Sharding (multi-switch topologies). A sharded control plane
    // runs one ControllerNode per shard; each owns a set of switches and
    // NF instances. Op ids are strided by shard so `(epoch, op, seq)`
    // fence keys stay globally unique — the "(shard, epoch)" fence.
    /// This controller's shard index (0 when unsharded).
    shard_id: usize,
    /// Every shard controller's node id, indexed by shard. Empty when
    /// unsharded (the classic single-controller topology).
    peers: Vec<NodeId>,
    /// Every switch in the topology, chain order (ingress first).
    /// Forwarding updates fan out to all of them.
    switches: Vec<NodeId>,
    /// NF instance → owning shard (used to detect cross-shard ops).
    inst_shard: HashMap<NodeId, usize>,
    /// Ops owned by *other* shards whose filters this shard must watch:
    /// matching events/packet-ins relay east-west to the owner.
    watches: Vec<(OpId, Filter)>,
    /// Bases of locally owned ops that other shards are watching; their
    /// completion sends an `EwRelease`.
    cross_shard: HashSet<u64>,
    /// Committed route flips `(filter, old source instance, commit ns)` —
    /// the path-consistency oracle's reference: a packet *originating*
    /// after the commit must not be forwarded to the old source by any
    /// switch. Only completed (never aborted) moves are recorded, since
    /// an abort-forward flips the route without awaiting switch acks.
    pub route_flips: Vec<(Filter, NodeId, u64)>,
    /// Telemetry span tag (`shard=N`), set only when sharded so
    /// single-controller traces stay byte-identical.
    shard_arg: Option<String>,
    // --- Op scheduling (mirror of the rt engine's admission). Under the
    // default FIFO policy every northbound op command dispatches the
    // instant it arrives — byte-identical to the pre-scheduler
    // controller. A non-FIFO policy queues op commands and lets the
    // shared `opennf-sched` policy object pick admission order, holding
    // each admitted op's instances until it finalizes.
    /// The admission policy object (same crate the rt engine delegates to).
    sched: OpScheduler,
    /// Op commands awaiting admission (non-FIFO policies only).
    op_queue: Vec<QueuedCmd>,
    /// Instances held by admitted-but-unfinished scheduled ops.
    held: HashSet<NodeId>,
    /// Admitted op base id → the instances it holds.
    held_by_op: HashMap<u64, Vec<NodeId>>,
    /// Mint for scheduler queue sequence numbers.
    next_sched_seq: u64,
}

/// One northbound op command parked in the scheduler queue.
struct QueuedCmd {
    cmd: Command,
    /// Service offset the command arrived with (reused at dispatch).
    off: Dur,
    /// Virtual-time enqueue instant (what the deadline policy compares).
    armed_ns: u64,
    seq: u64,
}

impl ControllerNode {
    /// Creates a controller attached to `sw`, hosting `app`.
    pub fn new(cfg: NetConfig, sw: NodeId, app: Box<dyn ControlApp>) -> Self {
        ControllerNode {
            cfg,
            sw,
            busy: Time::ZERO,
            next_op: 1,
            next_prio: 10,
            moves: HashMap::new(),
            copies: HashMap::new(),
            shares: HashMap::new(),
            reports: Vec::new(),
            route_shadow: Vec::new(),
            notify_subs: Vec::new(),
            app,
            tick: None,
            pending_cmds: Vec::new(),
            messages_handled: 0,
            bytes_handled: 0,
            tel: Telemetry::manual(),
            journal: OpJournal::new(),
            fence_seq: 0,
            shard_id: 0,
            peers: Vec::new(),
            switches: vec![sw],
            inst_shard: HashMap::new(),
            watches: Vec::new(),
            cross_shard: HashSet::new(),
            route_flips: Vec::new(),
            shard_arg: None,
            sched: OpScheduler::new(SchedPolicy::Fifo),
            op_queue: Vec::new(),
            held: HashSet::new(),
            held_by_op: HashMap::new(),
            next_sched_seq: 0,
        }
    }

    /// Selects the op-admission policy. The default FIFO policy
    /// dispatches op commands the instant they arrive (byte-identical to
    /// the pre-scheduler controller); any other policy routes them
    /// through the [`opennf_sched`] admission queue, mirroring the rt
    /// engine.
    pub fn set_sched_policy(&mut self, policy: SchedPolicy) {
        self.sched = OpScheduler::new(policy);
    }

    /// The active op-admission policy.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.sched.policy()
    }

    /// Turns this controller into shard `shard_id` of a sharded control
    /// plane: `peers[s]` is shard `s`'s controller node, `switches` is
    /// the whole topology's switch chain (ingress first), and
    /// `inst_shard` maps every NF instance to its owning shard. Op ids
    /// become strided by shard so every fence key is globally unique.
    pub fn configure_shard(
        &mut self,
        shard_id: usize,
        peers: Vec<NodeId>,
        switches: Vec<NodeId>,
        inst_shard: HashMap<NodeId, usize>,
    ) {
        assert!(shard_id < peers.len(), "shard_id out of range");
        self.shard_id = shard_id;
        self.next_op = 1 + shard_id as u64;
        self.shard_arg =
            if peers.len() > 1 { Some(format!("shard={shard_id}")) } else { None };
        self.peers = peers;
        self.switches = switches;
        self.inst_shard = inst_shard;
    }

    fn shard_count(&self) -> usize {
        self.peers.len().max(1)
    }

    /// Which shard owns the op with base id `base`. Base 0 (fire-and-
    /// forget route commands) is always local.
    fn owner_shard(&self, base: u64) -> usize {
        if base == 0 || self.peers.len() <= 1 {
            self.shard_id
        } else {
            ((base - 1) % self.peers.len() as u64) as usize
        }
    }

    /// The write-ahead op journal (read by harnesses post-run).
    pub fn journal(&self) -> &OpJournal {
        &self.journal
    }

    /// The journal serialized as pretty JSON (soak artifact).
    pub fn journal_json(&self) -> String {
        self.journal.to_json()
    }

    /// Appends `op`'s freshly crossed phase boundaries to the journal,
    /// each with a snapshot of the report as of this dispatch.
    fn journal_drain(
        journal: &mut OpJournal,
        now_ns: u64,
        op: OpId,
        jlog: &mut Vec<JournalPhase>,
        report: &crate::ops::report::OpReport,
    ) {
        for phase in jlog.drain(..) {
            journal.append(JournalRecord { op, phase, t_ns: now_ns, report: report.clone() });
        }
    }

    /// The run's telemetry handle (clone it to keep reading after the run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Replaces the telemetry handle (the scenario builder shares one
    /// handle between the controller and the harness).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Seeds the routing shadow with a preinstalled route (used by the
    /// scenario builder for rules installed before the run starts).
    pub fn seed_route(&mut self, priority: u16, filter: Filter, inst: NodeId) {
        self.route_shadow.push((priority, filter, inst));
    }

    /// Reports for completed ops of a given kind prefix.
    pub fn reports_of(&self, prefix: &str) -> Vec<&OpReport> {
        self.reports.iter().filter(|r| r.kind.starts_with(prefix)).collect()
    }

    /// The share op with the given base id, if running.
    pub fn share(&self, op: OpId) -> Option<&ShareOp> {
        self.shares.get(&(op.0 / OP_STRIDE))
    }

    /// All running shares.
    pub fn shares(&self) -> impl Iterator<Item = &ShareOp> {
        self.shares.values()
    }

    /// Number of in-flight operations.
    pub fn inflight_ops(&self) -> usize {
        self.moves.len() + self.copies.len() + self.shares.len()
    }

    fn alloc_op(&mut self) -> OpId {
        let id = OpId(self.next_op * OP_STRIDE);
        self.next_op += self.shard_count() as u64;
        id
    }

    fn alloc_prio_pair(&mut self) -> (u16, u16) {
        let p = self.next_prio;
        self.next_prio = self.next_prio.saturating_add(2);
        (p, p + 1)
    }

    fn base(op: OpId) -> u64 {
        op.0 / OP_STRIDE
    }

    fn service_offset(&mut self, now: Time, bytes: usize) -> Dur {
        let start = now.max(self.busy);
        let svc = self.cfg.ctrl_service(bytes);
        self.busy = start + svc;
        self.messages_handled += 1;
        self.bytes_handled += bytes as u64;
        self.busy - now
    }

    fn finalize(&mut self, ctx: &mut Ctx<'_, Msg>, report: OpReport) {
        let base = Self::base(report.op);
        let mut api = Api { now: ctx.now(), cmds: &mut self.pending_cmds, tick: &mut self.tick };
        if let (OpOutcome::Aborted { reason }, Some(inst)) =
            (&report.outcome, report.failed_inst)
        {
            let reason = reason.clone();
            self.app.on_nf_failed(&mut api, inst, &reason);
        }
        self.app.on_op_complete(&mut api, &report);
        self.reports.push(report);
        self.drain_cmds(ctx);
        // A finished scheduled op releases its instances and may unblock
        // queued ops waiting on them.
        if let Some(eps) = self.held_by_op.remove(&base) {
            for e in eps {
                self.held.remove(&e);
            }
            self.pump_sched(ctx);
        }
    }

    /// Instances an op command touches (used for admission conflicts).
    fn cmd_endpoints(cmd: &Command) -> Vec<NodeId> {
        match cmd {
            Command::Move { src, dst, .. } | Command::Copy { src, dst, .. } => {
                vec![*src, *dst]
            }
            Command::Share { insts, .. } => insts.clone(),
            _ => Vec::new(),
        }
    }

    fn cmd_class(cmd: &Command) -> OpClass {
        match cmd {
            Command::Copy { .. } => OpClass::Copy,
            Command::Share { .. } => OpClass::Share,
            _ => OpClass::Move,
        }
    }

    /// Admits queued op commands in policy order until the policy yields
    /// `None` (queue empty or every candidate conflicts with a running
    /// op's instances). The pick loop mirrors the rt engine's admission:
    /// the policy object sees the same `PendingOp` descriptions and the
    /// feasibility closure is instance-disjointness against held ops.
    fn pump_sched(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            if self.op_queue.is_empty() {
                return;
            }
            let pending: Vec<PendingOp> = self
                .op_queue
                .iter()
                .map(|q| {
                    let eps = Self::cmd_endpoints(&q.cmd);
                    PendingOp {
                        op: q.seq,
                        src: eps.first().map(|n| n.0).unwrap_or(0),
                        dst: eps.last().map(|n| n.0).unwrap_or(0),
                        class: Self::cmd_class(&q.cmd),
                        armed_ns: q.armed_ns,
                        seq: q.seq,
                    }
                })
                .collect();
            let feas: HashMap<u64, bool> = self
                .op_queue
                .iter()
                .map(|q| {
                    let free = Self::cmd_endpoints(&q.cmd)
                        .iter()
                        .all(|e| !self.held.contains(e));
                    (q.seq, free)
                })
                .collect();
            let picked =
                self.sched.pick(&pending, &mut |p| feas.get(&p.seq).copied().unwrap_or(false));
            let Some(i) = picked else { return };
            let q = self.op_queue.remove(i);
            let eps = Self::cmd_endpoints(&q.cmd);
            for e in &eps {
                self.held.insert(*e);
            }
            // dispatch_command allocates exactly this base id next.
            self.held_by_op.insert(self.next_op, eps);
            self.sched.on_admitted(&pending[i]);
            self.tel.event(
                "sched.decision",
                Some(format!(
                    "policy={} class={} seq={} waited_ns={}",
                    self.sched.policy().name(),
                    pending[i].class.name(),
                    q.seq,
                    ctx.now().as_nanos().saturating_sub(q.armed_ns),
                )),
            );
            self.dispatch_command(ctx, q.cmd, q.off);
        }
    }

    fn drain_cmds(&mut self, ctx: &mut Ctx<'_, Msg>) {
        while let Some(cmd) = self.pending_cmds.pop() {
            // App-issued commands pay one controller service quantum each.
            let off = self.service_offset(ctx.now(), 64);
            self.handle_command(ctx, cmd, off);
        }
    }

    /// An op touching an instance owned by another shard is a two-shard
    /// handoff: tell every peer to watch the op's filter (so events and
    /// packet-ins arriving at *their* controllers relay here) and to
    /// journal an `Armed` mirror (so their recovery knows a foreign op
    /// was in flight). The watch lands `ctrl_to_ctrl` (200 µs) after the
    /// op starts — strictly before the first southbound ack or NF event
    /// (≥ `ctrl_to_nf` = 250 µs) can reach a peer. Returns true when the
    /// op genuinely spans shards.
    ///
    /// Every op announces when the control plane is sharded — even one
    /// whose instances all live locally: its forwarding updates still fan
    /// out to switches owned by other shards, and a packet-in punted at
    /// the ingress switch must find its way back via the peer's watch.
    fn announce_cross_shard(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        op: OpId,
        filter: Filter,
        insts: &[NodeId],
        off: Dur,
    ) -> bool {
        if self.peers.len() <= 1 {
            return false;
        }
        let cross = insts.iter().any(|i| {
            self.inst_shard.get(i).copied().unwrap_or(self.shard_id) != self.shard_id
        });
        let d = off + self.cfg.ctrl_to_ctrl;
        for (sid, peer) in self.peers.iter().enumerate() {
            if sid != self.shard_id {
                // Shard-tagged so the happens-before oracle pairs this
                // announce with the peer's `ew.release` per shard pair.
                self.tel.event(
                    "ew.handoff",
                    Some(format!("op={} shard={} peer={sid}", op.0, self.shard_id)),
                );
                ctx.send(*peer, d, Msg::EwWatch { op, filter });
            }
        }
        self.cross_shard.insert(Self::base(op));
        if cross {
            self.tel.add("shard.cross_ops", 1);
        }
        cross
    }

    /// Completion of a locally owned cross-shard op: release every
    /// peer's watch and journal mirror.
    fn release_cross_shard(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        op: OpId,
        committed: bool,
        off: Dur,
    ) {
        if !self.cross_shard.remove(&Self::base(op)) {
            return;
        }
        let d = off + self.cfg.ctrl_to_ctrl;
        for (sid, peer) in self.peers.iter().enumerate() {
            if sid != self.shard_id {
                ctx.send(*peer, d, Msg::EwRelease { op, committed });
            }
        }
    }

    fn handle_command(&mut self, ctx: &mut Ctx<'_, Msg>, cmd: Command, off: Dur) {
        // Non-FIFO policies park op commands in the admission queue; the
        // FIFO default dispatches immediately, keeping digests
        // byte-identical to the pre-scheduler controller.
        if self.sched.policy() != SchedPolicy::Fifo
            && matches!(
                cmd,
                Command::Move { .. } | Command::Copy { .. } | Command::Share { .. }
            )
        {
            let seq = self.next_sched_seq;
            self.next_sched_seq += 1;
            self.op_queue.push(QueuedCmd { cmd, off, armed_ns: ctx.now().as_nanos(), seq });
            self.pump_sched(ctx);
            return;
        }
        self.dispatch_command(ctx, cmd, off)
    }

    fn dispatch_command(&mut self, ctx: &mut Ctx<'_, Msg>, cmd: Command, off: Dur) {
        match cmd {
            Command::Move { src, dst, filter, scope, props } => {
                let id = self.alloc_op();
                let prio = self.alloc_prio_pair();
                self.announce_cross_shard(ctx, id, filter, &[src, dst], off);
                let mut op = MoveOp::new(id, src, dst, filter, scope, props, prio, ctx.now().as_nanos());
                let done = {
                    let mut o = OpCtx {
                        ctx,
                        cfg: &self.cfg,
                        sw: self.sw,
                        off,
                        tel: &self.tel,
                        switches: &self.switches,
                        shard_arg: self.shard_arg.as_deref(),
                        epoch: self.journal.epoch,
                        fence: &mut self.fence_seq,
                        fenced: false,
                    };
                    op.start(&mut o)
                };
                Self::journal_drain(
                    &mut self.journal, ctx.now().as_nanos(), id, &mut op.jlog, &op.report,
                );
                // Moving traffic re-routes it: record intent in the shadow.
                self.route_shadow.push((prio.1, filter, dst));
                if done {
                    let report = op.report.clone();
                    self.finalize(ctx, report);
                } else {
                    self.moves.insert(Self::base(id), op);
                }
            }
            Command::Copy { src, dst, filter, scope } => {
                let id = self.alloc_op();
                self.announce_cross_shard(ctx, id, filter, &[src, dst], off);
                let mut op = CopyOp::new(id, src, dst, filter, scope, true, ctx.now().as_nanos());
                let done = {
                    let mut o = OpCtx {
                        ctx,
                        cfg: &self.cfg,
                        sw: self.sw,
                        off,
                        tel: &self.tel,
                        switches: &self.switches,
                        shard_arg: self.shard_arg.as_deref(),
                        epoch: self.journal.epoch,
                        fence: &mut self.fence_seq,
                        fenced: false,
                    };
                    op.start(&mut o)
                };
                Self::journal_drain(
                    &mut self.journal, ctx.now().as_nanos(), id, &mut op.jlog, &op.report,
                );
                if done {
                    let report = op.report.clone();
                    self.finalize(ctx, report);
                } else {
                    self.copies.insert(Self::base(id), op);
                }
            }
            Command::Share { insts, filter, scope, consistency } => {
                let id = self.alloc_op();
                let mut route: Vec<(u16, Filter, NodeId)> = self.route_shadow.clone();
                route.sort_by_key(|r| std::cmp::Reverse(r.0));
                let route = route.into_iter().map(|(_, f, n)| (f, n)).collect();
                let mut op =
                    ShareOp::new(id, insts, filter, scope, consistency, route, ctx.now().as_nanos());
                {
                    let mut o = OpCtx {
                        ctx,
                        cfg: &self.cfg,
                        sw: self.sw,
                        off,
                        tel: &self.tel,
                        switches: &self.switches,
                        shard_arg: self.shard_arg.as_deref(),
                        epoch: self.journal.epoch,
                        fence: &mut self.fence_seq,
                        fenced: false,
                    };
                    op.start(&mut o);
                }
                Self::journal_drain(
                    &mut self.journal, ctx.now().as_nanos(), id, &mut op.jlog, &op.report,
                );
                self.shares.insert(Self::base(id), op);
            }
            Command::Notify { inst, filter, enable } => {
                let id = self.alloc_op();
                if enable {
                    self.notify_subs.push((inst, filter));
                    ctx.send(
                        inst,
                        off + self.cfg.ctrl_to_nf,
                        Msg::Sb {
                            op: id,
                            call: crate::msg::SbCall::EnableEvents {
                                filter,
                                action: opennf_nf::EventAction::Process,
                            },
                        },
                    );
                } else {
                    self.notify_subs.retain(|(i, f)| !(*i == inst && *f == filter));
                    ctx.send(
                        inst,
                        off + self.cfg.ctrl_to_nf,
                        Msg::Sb { op: id, call: crate::msg::SbCall::DisableEvents { filter } },
                    );
                }
            }
            Command::Route { filter, priority, inst } => {
                self.route_shadow.push((priority, filter, inst));
                // Every switch on the path gets the same rule and
                // resolves it through its own ports (local attach or
                // trunk toward the owner).
                let switches = self.switches.clone();
                for sw in switches {
                    ctx.send(
                        sw,
                        off + self.cfg.sw_to_ctrl,
                        Msg::FlowMod {
                            op: OpId(0),
                            tag: 99,
                            priority,
                            filter,
                            to_nodes: vec![inst],
                            to_controller: false,
                        },
                    );
                }
            }
        }
    }

    /// Dispatches to a move op. A completed move is reported once, then
    /// lingers (to forward events from packets still in flight toward the
    /// source — §5.1.1 "handled immediately in the same way") until an
    /// expiry timer removes it.
    fn with_move<F>(&mut self, ctx: &mut Ctx<'_, Msg>, base: u64, off: Dur, f: F)
    where
        F: FnOnce(&mut MoveOp, &mut OpCtx<'_, '_>) -> bool,
    {
        self.with_move_fenced(ctx, base, off, false, f)
    }

    fn with_move_fenced<F>(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        base: u64,
        off: Dur,
        fenced: bool,
        f: F,
    ) where
        F: FnOnce(&mut MoveOp, &mut OpCtx<'_, '_>) -> bool,
    {
        if let Some(mut op) = self.moves.remove(&base) {
            let done = {
                let mut o = OpCtx {
                    ctx,
                    cfg: &self.cfg,
                    sw: self.sw,
                    off,
                    tel: &self.tel,
                    switches: &self.switches,
                    shard_arg: self.shard_arg.as_deref(),
                    epoch: self.journal.epoch,
                    fence: &mut self.fence_seq,
                    fenced,
                };
                f(&mut op, &mut o)
            };
            Self::journal_drain(
                &mut self.journal, ctx.now().as_nanos(), op.id, &mut op.jlog, &op.report,
            );
            let newly_done = done && !op.reported;
            if newly_done {
                op.reported = true;
                let id = op.id;
                let report = op.report.clone();
                let aborted = matches!(report.outcome, OpOutcome::Aborted { .. });
                if op.route_reverted() {
                    // Aborted before the route changed: the move's shadow
                    // entry never took effect, so forget it.
                    let key = op.shadow_key();
                    self.route_shadow.retain(|e| *e != key);
                } else if !aborted {
                    // Completion strictly follows every switch's flow-mod
                    // ack, so from here on a fresh packet must not reach
                    // the old source — the path-consistency oracle's
                    // reference point.
                    self.route_flips.push((*op.filter(), op.src(), report.end_ns));
                }
                self.moves.insert(base, op);
                ctx.send_self(MOVE_LINGER, Msg::Timer { op: id, tag: TAG_MOVE_EXPIRE });
                self.release_cross_shard(ctx, id, !aborted, off);
                self.finalize(ctx, report);
            } else {
                self.moves.insert(base, op);
            }
        }
    }

    fn with_copy<F>(&mut self, ctx: &mut Ctx<'_, Msg>, base: u64, off: Dur, f: F)
    where
        F: FnOnce(&mut CopyOp, &mut OpCtx<'_, '_>) -> bool,
    {
        self.with_copy_fenced(ctx, base, off, false, f)
    }

    fn with_copy_fenced<F>(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        base: u64,
        off: Dur,
        fenced: bool,
        f: F,
    ) where
        F: FnOnce(&mut CopyOp, &mut OpCtx<'_, '_>) -> bool,
    {
        if let Some(mut op) = self.copies.remove(&base) {
            let done = {
                let mut o = OpCtx {
                    ctx,
                    cfg: &self.cfg,
                    sw: self.sw,
                    off,
                    tel: &self.tel,
                    switches: &self.switches,
                    shard_arg: self.shard_arg.as_deref(),
                    epoch: self.journal.epoch,
                    fence: &mut self.fence_seq,
                    fenced,
                };
                f(&mut op, &mut o)
            };
            Self::journal_drain(
                &mut self.journal, ctx.now().as_nanos(), op.id, &mut op.jlog, &op.report,
            );
            if done {
                let id = op.id;
                let report = op.report.clone();
                let committed = !matches!(report.outcome, OpOutcome::Aborted { .. });
                self.release_cross_shard(ctx, id, committed, off);
                self.finalize(ctx, report);
            } else {
                self.copies.insert(base, op);
            }
        }
    }

    fn with_share<F>(&mut self, ctx: &mut Ctx<'_, Msg>, base: u64, off: Dur, f: F)
    where
        F: FnOnce(&mut ShareOp, &mut OpCtx<'_, '_>),
    {
        self.with_share_fenced(ctx, base, off, false, f)
    }

    fn with_share_fenced<F>(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        base: u64,
        off: Dur,
        fenced: bool,
        f: F,
    ) where
        F: FnOnce(&mut ShareOp, &mut OpCtx<'_, '_>),
    {
        if let Some(mut sh) = self.shares.remove(&base) {
            {
                let mut o = OpCtx {
                    ctx,
                    cfg: &self.cfg,
                    sw: self.sw,
                    off,
                    tel: &self.tel,
                    switches: &self.switches,
                    shard_arg: self.shard_arg.as_deref(),
                    epoch: self.journal.epoch,
                    fence: &mut self.fence_seq,
                    fenced,
                };
                f(&mut sh, &mut o);
            }
            Self::journal_drain(
                &mut self.journal, ctx.now().as_nanos(), sh.id, &mut sh.jlog, &sh.report,
            );
            if sh.torn_down() {
                // Strict teardown: report once and drop the op so no
                // further events/packet-ins reach it.
                let report = sh.report.clone();
                self.finalize(ctx, report);
            } else {
                self.shares.insert(base, sh);
            }
        }
    }

    fn route_event(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, ev: NfEvent, off: Dur) {
        let pkt = match &ev {
            NfEvent::Received(p) | NfEvent::Processed(p) => p.clone(),
        };
        // Moves first: an event from a move's src/dst whose filter matches.
        let move_base = self
            .moves
            .iter()
            .find(|(_, m)| {
                (m.src() == from || m.dst() == from) && m.filter().matches_packet(&pkt)
            })
            .map(|(b, _)| *b);
        if let Some(base) = move_base {
            self.with_move(ctx, base, off, |m, o| m.on_event(o, from, &ev));
            return;
        }
        // Then shares.
        let share_base = self
            .shares
            .iter()
            .find(|(_, s)| s.instances().contains(&from) && s.filter().matches_packet(&pkt))
            .map(|(b, _)| *b);
        if let Some(base) = share_base {
            self.with_share(ctx, base, off, |sh, o| sh.on_event(o, from, &ev));
            self.drain_cmds(ctx);
            return;
        }
        // Then cross-shard watches: the event belongs to an op owned by
        // another shard — relay it east-west to the owner.
        if let Some(peer) = self.watch_peer(&pkt) {
            self.tel.add("shard.relayed", 1);
            let d = off + self.cfg.ctrl_to_ctrl;
            ctx.send(peer, d, Msg::EwForward { from, inner: Box::new(Msg::Event(ev)) });
            return;
        }
        // Then notify subscriptions.
        if let NfEvent::Received(pkt) = &ev {
            let matched = self
                .notify_subs
                .iter()
                .any(|(i, f)| *i == from && f.matches_packet(pkt));
            if matched {
                let mut api =
                    Api { now: ctx.now(), cmds: &mut self.pending_cmds, tick: &mut self.tick };
                self.app.on_notify(&mut api, from, pkt);
                self.drain_cmds(ctx);
            }
        }
    }

    fn route_packet_in(&mut self, ctx: &mut Ctx<'_, Msg>, pkt: Packet, off: Dur) {
        let move_base = self
            .moves
            .iter()
            .find(|(_, m)| m.filter().matches_packet(&pkt))
            .map(|(b, _)| *b);
        if let Some(base) = move_base {
            self.with_move(ctx, base, off, |m, o| m.on_packet_in(o, &pkt));
            return;
        }
        let share_base = self
            .shares
            .iter()
            .find(|(_, s)| s.filter().matches_packet(&pkt))
            .map(|(b, _)| *b);
        if let Some(base) = share_base {
            self.with_share(ctx, base, off, |sh, o| sh.on_packet_in(o, &pkt));
            return;
        }
        if let Some(peer) = self.watch_peer(&pkt) {
            self.tel.add("shard.relayed", 1);
            let d = off + self.cfg.ctrl_to_ctrl;
            ctx.send(peer, d, Msg::EwForward { from: self.sw, inner: Box::new(Msg::PacketIn(pkt)) });
        }
    }

    /// The peer controller owning a watched op whose filter matches
    /// `pkt`, if the packet belongs to a foreign op.
    fn watch_peer(&self, pkt: &Packet) -> Option<NodeId> {
        let (op, _) = self.watches.iter().find(|(_, f)| f.matches_packet(pkt))?;
        let owner = self.owner_shard(Self::base(*op));
        if owner == self.shard_id {
            None
        } else {
            Some(self.peers[owner])
        }
    }
}

impl Node<Msg> for ControllerNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let mut api = Api { now: ctx.now(), cmds: &mut self.pending_cmds, tick: &mut self.tick };
        self.app.on_start(&mut api);
        if let Some(period) = self.tick {
            ctx.send_self(period, Msg::Timer { op: OpId(0), tag: TAG_APP_TICK });
        }
        self.drain_cmds(ctx);
    }

    /// Deterministic recovery: the crash wiped in-flight messages and
    /// timers (volatile), but the journal field survived (durable). Bump
    /// the fencing epoch so every pre-crash southbound call still in
    /// flight is stale, then replay the journal and drive every
    /// non-terminal op to a defined outcome: resume from the last durable
    /// phase where the protocol allows it, abort through the PR 1 paths
    /// otherwise.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.tel.set_time_ns(ctx.now().as_nanos());
        // The recovered controller CPU comes back idle.
        self.busy = Time::ZERO;
        self.journal.epoch += 1;
        let inflight = self.journal.in_flight();
        let span = self.tel.begin_at_arg(
            "recovery.replay",
            ctx.now().as_nanos(),
            Some(format!("epoch {} in-flight {}", self.journal.epoch, inflight.len())),
        );
        self.tel.add("recovery.restarts", 1);
        self.tel.add("recovery.records_replayed", self.journal.len() as u64);
        // The app tick timer died with the crash; re-arm it.
        if let Some(period) = self.tick {
            ctx.send_self(period, Msg::Timer { op: OpId(0), tag: TAG_APP_TICK });
        }
        for (op, durable) in inflight {
            let base = Self::base(op);
            let off = self.service_offset(ctx.now(), 64);
            if self.moves.contains_key(&base) {
                self.with_move_fenced(ctx, base, off, true, |m, o| m.recover(o, durable));
            } else if self.copies.contains_key(&base) {
                self.with_copy_fenced(ctx, base, off, true, |c, o| c.recover(o, durable));
            } else if self.shares.contains_key(&base) {
                self.with_share_fenced(ctx, base, off, true, |sh, o| sh.recover(o, durable));
            } else {
                // Journaled as in-flight but the op struct is gone (e.g.
                // a completed-then-expired move whose terminal record was
                // lost): nothing left to drive.
                continue;
            }
            if self.journal.last_phase(op) == Some(JournalPhase::Aborted) {
                self.tel.add("recovery.ops_aborted", 1);
            } else {
                self.tel.add("recovery.ops_resumed", 1);
            }
        }
        self.tel.end_at(span, ctx.now().as_nanos());
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        // Drive the telemetry clock from virtual time so span timestamps
        // line up with the simulator's timeline.
        self.tel.set_time_ns(ctx.now().as_nanos());
        // Footnote-10 peer-to-peer bulk transfer: chunks above the
        // threshold don't flow through the controller CPU; it only handles
        // a small envelope.
        let wire = msg.wire_size();
        let effective = match &msg {
            Msg::SbAck { reply: crate::msg::SbReply::ChunkStream { chunk: Some(c), .. }, .. }
                if c.len() > self.cfg.p2p_chunk_threshold =>
            {
                96
            }
            _ => wire,
        };
        let off = self.service_offset(ctx.now(), effective);
        // East-west relay: acks and switch confirmations carry their op's
        // id, and op ids are strided by shard — one owned by another
        // shard arrived here because the sending NF/switch hangs off this
        // shard. Forward it to the owner over the east-west link.
        if self.peers.len() > 1 {
            let owner = match &msg {
                Msg::SbAck { op, .. }
                | Msg::FlowModApplied { op, .. }
                | Msg::CounterReply { op, .. } => Some(self.owner_shard(Self::base(*op))),
                _ => None,
            };
            if let Some(owner) = owner {
                if owner != self.shard_id {
                    self.tel.add("shard.relayed", 1);
                    let peer = self.peers[owner];
                    let d = off + self.cfg.ctrl_to_ctrl;
                    ctx.send(peer, d, Msg::EwForward { from, inner: Box::new(msg) });
                    return;
                }
            }
        }
        match msg {
            Msg::Command(cmd) => {
                self.handle_command(ctx, cmd, off);
                self.drain_cmds(ctx);
            }
            Msg::SbAck { op, reply } => {
                let base = Self::base(op);
                if self.moves.contains_key(&base) {
                    self.with_move(ctx, base, off, |m, o| m.on_sb_ack(o, reply));
                } else if self.copies.contains_key(&base) {
                    self.with_copy(ctx, base, off, |c, o| c.on_sb_ack(o, reply));
                } else if self.shares.contains_key(&base) {
                    self.with_share(ctx, base, off, |sh, o| sh.on_sb_ack(o, from, op, reply));
                }
            }
            Msg::Event(ev) => self.route_event(ctx, from, ev, off),
            Msg::PacketIn(pkt) => self.route_packet_in(ctx, pkt, off),
            Msg::FlowModApplied { op, tag, rule } => {
                let base = Self::base(op);
                if self.moves.contains_key(&base) {
                    self.with_move(ctx, base, off, |m, o| {
                        m.on_flow_mod_applied(o, from, tag, rule)
                    });
                }
                // Route-command and share flow-mods need no follow-up.
            }
            Msg::CounterReply { op, packets, .. } => {
                let base = Self::base(op);
                self.with_move(ctx, base, off, |m, o| m.on_counter_reply(o, packets));
            }
            Msg::Timer { op, tag } => {
                if tag == TAG_APP_TICK {
                    let mut api =
                        Api { now: ctx.now(), cmds: &mut self.pending_cmds, tick: &mut self.tick };
                    self.app.on_tick(&mut api);
                    if let Some(period) = self.tick {
                        ctx.send_self(period, Msg::Timer { op: OpId(0), tag: TAG_APP_TICK });
                    }
                    self.drain_cmds(ctx);
                } else if tag == TAG_MOVE_EXPIRE {
                    self.moves.remove(&Self::base(op));
                } else {
                    let base = Self::base(op);
                    if self.moves.contains_key(&base) {
                        self.with_move(ctx, base, off, |m, o| m.on_timer(o, tag));
                    } else if self.copies.contains_key(&base) {
                        self.with_copy(ctx, base, off, |c, o| c.on_timer(o, tag));
                    } else if self.shares.contains_key(&base) {
                        self.with_share(ctx, base, off, |sh, o| sh.on_timer(o, tag));
                    }
                }
            }
            Msg::NfRestarted => {
                // Restart detection: recompute the event-filter state the
                // recovered instance should hold (filters claimed by ops
                // still running on it) and re-issue it as one atomic sync,
                // clearing anything installed before the crash that no op
                // wants any more.
                let mut filters: Vec<(Filter, opennf_nf::EventAction)> = Vec::new();
                for m in self.moves.values() {
                    filters.extend(m.desired_filters(from));
                }
                for s in self.shares.values() {
                    filters.extend(s.desired_filters(from));
                }
                ctx.send(
                    from,
                    off + self.cfg.ctrl_to_nf,
                    Msg::Sb { op: OpId(0), call: crate::msg::SbCall::SyncEvents { filters } },
                );
            }
            Msg::Alert { record } => {
                let mut api =
                    Api { now: ctx.now(), cmds: &mut self.pending_cmds, tick: &mut self.tick };
                self.app.on_alert(&mut api, from, &record);
                self.drain_cmds(ctx);
            }
            Msg::EwWatch { op, filter } => {
                // A peer shard started an op spanning one of our
                // instances: journal an `Armed` mirror (recovery knows a
                // foreign op was in flight here) and start relaying
                // matching events/packet-ins to the owner.
                let now_ns = ctx.now().as_nanos();
                let report = OpReport::new(op, "ew-watch".into(), now_ns);
                self.journal.append(JournalRecord {
                    op,
                    phase: JournalPhase::Armed,
                    t_ns: now_ns,
                    report,
                });
                self.watches.push((op, filter));
            }
            Msg::EwRelease { op, committed } => {
                // The foreign op finished: close the journal mirror and
                // stop relaying.
                self.tel.event(
                    "ew.release",
                    Some(format!("op={} committed={committed} shard={}", op.0, self.shard_id)),
                );
                let now_ns = ctx.now().as_nanos();
                let phase =
                    if committed { JournalPhase::Committed } else { JournalPhase::Aborted };
                let report = OpReport::new(op, "ew-watch".into(), now_ns);
                self.journal.append(JournalRecord { op, phase, t_ns: now_ns, report });
                self.watches.retain(|(o, _)| *o != op);
            }
            Msg::EwForward { from: origin, inner } => {
                // Relayed on behalf of the original sender by a peer
                // shard; dispatch as if it had arrived directly. No
                // relay loop is possible: the inner message's op is owned
                // here (by-op relays) or matches a local op (by-watch
                // relays, which only reference other shards' ops).
                self.on_message(ctx, origin, *inner);
            }
            other => debug_assert!(false, "controller: unexpected message {other:?}"),
        }
    }
}
