//! The OpenNF controller: the paper's primary contribution (§3–§6).
//!
//! The controller "encapsulates the complexities of distributed state
//! control and, when requested, guarantees loss-freedom,
//! order-preservation, and consistency for state and state operations".
//! This crate contains:
//!
//! * [`msg`] — the message vocabulary of the simulated deployment: data
//!   packets, OpenFlow-ish control messages (flow-mod / packet-in /
//!   packet-out / counter queries), the JSON-shaped southbound protocol,
//!   NF events, and northbound commands;
//! * [`config`] — every latency/cost constant of the testbed model in one
//!   documented place;
//! * [`nodes`] — simulation nodes: the SDN switch, NF instances, traffic
//!   sources, and the controller itself;
//! * [`ops`] — the northbound operations: `move` (no-guarantee, loss-free,
//!   loss-free + order-preserving; with the parallelize and early-release
//!   optimizations of §5.1.3), `copy`, and `share` (strong/strict);
//! * [`journal`] — the write-ahead op journal and recovery metadata that
//!   make the controller itself crash-tolerant: phase-boundary records
//!   replayed on restart to drive every in-flight op to a deterministic
//!   outcome;
//! * [`guarantees`] — runtime *oracles* that check loss-freedom and
//!   order-preservation from the recorded switch/NF logs, used throughout
//!   the test suite (the paper proves these properties in its tech report;
//!   here they are machine-checked per run);
//! * [`scenario`] — a builder for the standard evaluation topology
//!   (Figure 4: hosts → switch → {srcInst, dstInst}, controller attached).

pub mod config;
pub mod controller;
pub mod guarantees;
pub mod journal;
pub mod msg;
pub mod nodes;
pub mod ops;
pub mod scenario;

pub use config::{NetConfig, OpConfig};
pub use controller::{ControlApp, ControllerNode, NoopApp};
pub use guarantees::{path_consistency_violations, GuaranteeReport, Oracle, PathViolation};
pub use journal::{JournalPhase, JournalRecord, OpJournal};
pub use msg::{Command, ConsistencyLevel, MoveProps, MoveVariant, Msg, OpId, ScopeSet};
pub use nodes::host::HostNode;
pub use nodes::nf_node::NfNode;
pub use nodes::switch::SwitchNode;
pub use ops::report::{OpOutcome, OpReport};
pub use scenario::{Scenario, ScenarioBuilder};
// Re-exported so scenario harnesses can pick an admission policy
// without depending on opennf-sched directly.
pub use opennf_sched::{SchedConfig, SchedPolicy};
