//! The message vocabulary of the simulated deployment.
//!
//! One enum covers every edge of Figure 2: hosts → switch (packets),
//! switch ↔ controller (OpenFlow-ish), controller ↔ NFs (the southbound
//! API of §4, JSON on the wire in the paper), NFs → controller (events),
//! and application → controller (northbound commands, §5).

use opennf_net::RuleId;
use opennf_nf::{Chunk, EventAction, NfEvent};
use opennf_packet::{Filter, FlowId, Packet};
use opennf_sim::NodeId;

/// Correlates southbound calls, replies, and flow-mods with the northbound
/// operation that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct OpId(pub u64);

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Which state classes an operation covers (§5.1 `scope`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScopeSet {
    /// Include per-flow state.
    pub per_flow: bool,
    /// Include multi-flow state.
    pub multi_flow: bool,
    /// Include all-flows state.
    pub all_flows: bool,
}

impl ScopeSet {
    /// Per-flow only — the common `move` scope.
    pub fn per_flow() -> Self {
        ScopeSet { per_flow: true, ..Default::default() }
    }

    /// Multi-flow only — the common `copy` scope.
    pub fn multi_flow() -> Self {
        ScopeSet { multi_flow: true, ..Default::default() }
    }

    /// All three classes.
    pub fn all() -> Self {
        ScopeSet { per_flow: true, multi_flow: true, all_flows: true }
    }
}

/// Which guarantees a `move` enforces (§5.1 `properties`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MoveVariant {
    /// No guarantees: traffic arriving at the source during the move is
    /// dropped (the Split/Merge behaviour §5.1 describes).
    #[default]
    NoGuarantee,
    /// Loss-free (§5.1.1): events capture in-flight packets; nothing is
    /// lost, ordering may still be violated.
    LossFree,
    /// Loss-free and order-preserving (§5.1.2): events + the two-phase
    /// forwarding update, Figure 6.
    LossFreeOrderPreserving,
}

/// Optimizations applied to a `move` (§5.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MoveProps {
    /// Guarantee level.
    pub variant: MoveVariant,
    /// Parallelize export/import: stream chunks one at a time and import
    /// them as they arrive (PL).
    pub parallel: bool,
    /// Early release + late locking (ER): lock each flow only when its
    /// chunk starts serializing, and release its buffered events as soon as
    /// its chunk is imported.
    pub early_release: bool,
    /// Footnote-10 peer-to-peer bulk transfer: the source streams chunk
    /// batches directly to the destination; the controller only sees the
    /// begin call and the two completion envelopes. Copy-then-delete: the
    /// source keeps its state until every exported flow is confirmed
    /// imported, so an abort never loses state.
    pub p2p: bool,
}

impl MoveProps {
    /// `NG` — no guarantees, sequential.
    pub fn ng() -> Self {
        Self::default()
    }

    /// `NG PL` — no guarantees, parallelized.
    pub fn ng_pl() -> Self {
        MoveProps { parallel: true, ..Self::default() }
    }

    /// `LF PL` — loss-free, parallelized.
    pub fn lf_pl() -> Self {
        MoveProps { variant: MoveVariant::LossFree, parallel: true, ..Self::default() }
    }

    /// `LF PL+ER` — loss-free, parallelized, early-release.
    pub fn lf_pl_er() -> Self {
        MoveProps {
            variant: MoveVariant::LossFree,
            parallel: true,
            early_release: true,
            ..Self::default()
        }
    }

    /// `LF PL+P2P` — loss-free, parallelized, with the footnote-10
    /// peer-to-peer bulk transfer.
    pub fn lf_pl_p2p() -> Self {
        MoveProps { variant: MoveVariant::LossFree, parallel: true, p2p: true, ..Self::default() }
    }

    /// `LF+OP PL+ER` — loss-free and order-preserving, fully optimized.
    pub fn lfop_pl_er() -> Self {
        MoveProps {
            variant: MoveVariant::LossFreeOrderPreserving,
            parallel: true,
            early_release: true,
            ..Self::default()
        }
    }
}

/// Consistency level for `share` (§5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyLevel {
    /// Updates applied everywhere in a per-instance-consistent global order.
    Strong,
    /// Updates applied everywhere in exactly the switch arrival order.
    Strict,
}

/// Northbound commands (§5): what control applications invoke.
#[derive(Debug, Clone)]
pub enum Command {
    /// `move(srcInst, dstInst, filter, scope, properties)`.
    Move {
        /// Source instance.
        src: NodeId,
        /// Destination instance.
        dst: NodeId,
        /// Which flows.
        filter: Filter,
        /// Which state classes.
        scope: ScopeSet,
        /// Guarantees and optimizations.
        props: MoveProps,
    },
    /// `copy(srcInst, dstInst, filter, scope)`.
    Copy {
        /// Source instance.
        src: NodeId,
        /// Destination instance.
        dst: NodeId,
        /// Which flows.
        filter: Filter,
        /// Which state classes.
        scope: ScopeSet,
    },
    /// `share(list<inst>, filter, scope, consistency)`.
    Share {
        /// Instances sharing the state.
        insts: Vec<NodeId>,
        /// Which flows.
        filter: Filter,
        /// Which state classes.
        scope: ScopeSet,
        /// Strong or strict.
        consistency: ConsistencyLevel,
    },
    /// `notify(filter, inst, enable, callback)` — §5.2.1. Events matching
    /// the filter are delivered to the hosted control application.
    Notify {
        /// Instance to watch.
        inst: NodeId,
        /// Which packets.
        filter: Filter,
        /// Enable or disable.
        enable: bool,
    },
    /// Install a plain forwarding rule (applications steering traffic).
    Route {
        /// Which flows.
        filter: Filter,
        /// Rule priority.
        priority: u16,
        /// Destination instance.
        inst: NodeId,
    },
}

/// Southbound calls (§4.2, §4.3). `op` correlates replies.
#[derive(Debug, Clone)]
pub enum SbCall {
    /// Export per-flow state. `stream` = one reply per chunk (the PL
    /// optimization); `late_lock` = enable a per-flow drop-event filter as
    /// each flow's chunk begins serializing (the ER optimization).
    GetPerflow {
        /// State selector.
        filter: Filter,
        /// Stream chunk-by-chunk.
        stream: bool,
        /// Late-locking.
        late_lock: bool,
    },
    /// Import per-flow chunks (bulk).
    PutPerflow {
        /// The chunks.
        chunks: Vec<Chunk>,
    },
    /// Import one streamed chunk (any scope; the NF dispatches on
    /// `chunk.scope`).
    PutChunk {
        /// The chunk.
        chunk: Chunk,
    },
    /// Delete per-flow state.
    DelPerflow {
        /// Which flows.
        flow_ids: Vec<FlowId>,
    },
    /// Export multi-flow state.
    GetMultiflow {
        /// State selector.
        filter: Filter,
        /// Stream chunk-by-chunk.
        stream: bool,
    },
    /// Import multi-flow chunks (bulk).
    PutMultiflow {
        /// The chunks.
        chunks: Vec<Chunk>,
    },
    /// Delete multi-flow state.
    DelMultiflow {
        /// Which flows.
        flow_ids: Vec<FlowId>,
    },
    /// Export all-flows state.
    GetAllflows,
    /// Import all-flows chunks.
    PutAllflows {
        /// The chunks.
        chunks: Vec<Chunk>,
    },
    /// Footnote-10 P2P bulk transfer: export per-flow state matching
    /// `filter` and stream it in chunk batches *directly* to `peer`
    /// ([`Msg::P2pChunks`] never touches the controller). `xfer`
    /// distinguishes retry rounds; `only` (empty = everything matching)
    /// restricts a retry round to the flows still missing at the peer.
    TransferPerflow {
        /// State selector.
        filter: Filter,
        /// Destination instance of the direct stream.
        peer: NodeId,
        /// Transfer round (monotone per op; stale rounds are ignored).
        xfer: u32,
        /// Restrict to these flows (empty = all matching `filter`).
        only: Vec<FlowId>,
    },
    /// Abort a P2P transfer at the *destination*: delete the listed
    /// imported flows and tombstone rounds `<= xfer` so chunk batches
    /// still in flight cannot resurrect state after the rollback.
    AbortTransfer {
        /// Flows the destination imported (to delete).
        flow_ids: Vec<FlowId>,
        /// Discard in-flight batches of rounds up to and including this.
        xfer: u32,
    },
    /// `enableEvents(filter, action)`.
    EnableEvents {
        /// Which packets.
        filter: Filter,
        /// Process / buffer / drop.
        action: EventAction,
    },
    /// `disableEvents(filter)` — releases buffered packets.
    DisableEvents {
        /// Which filter to remove.
        filter: Filter,
    },
    /// `syncEvents(filters)` — atomically replaces the instance's entire
    /// event-filter set with the given one. The controller's restart
    /// re-synchronization: a recovered instance may hold filters installed
    /// before its crash; one sync clears everything stale and re-installs
    /// everything still wanted.
    SyncEvents {
        /// The desired `(filter, action)` set.
        filters: Vec<(Filter, EventAction)>,
    },
    /// Install a silent drop filter (no events) — the Split/Merge-style
    /// behaviour used by no-guarantee moves and baselines.
    AddDropFilter {
        /// Which packets to drop.
        filter: Filter,
    },
    /// Remove a silent drop filter.
    RemoveDropFilter {
        /// Which filter to remove.
        filter: Filter,
    },
}

/// Southbound replies.
#[derive(Debug, Clone)]
pub enum SbReply {
    /// Bulk chunk export result.
    Chunks {
        /// The exported chunks.
        chunks: Vec<Chunk>,
    },
    /// One streamed chunk; `last` marks the end of the export.
    ChunkStream {
        /// The chunk (None for an empty export's final marker).
        chunk: Option<Chunk>,
        /// No more chunks follow.
        last: bool,
    },
    /// A `PutChunk` finished importing.
    ChunkImported {
        /// Flow the chunk pertained to.
        flow_id: FlowId,
    },
    /// P2P source ack: every flow round `xfer` streamed toward the peer.
    /// A small envelope — the chunks themselves went NF → NF.
    TransferExported {
        /// Which round finished exporting.
        xfer: u32,
        /// The flows shipped in this round.
        flow_ids: Vec<FlowId>,
        /// Chunk bytes shipped in this round.
        bytes: u64,
    },
    /// P2P destination ack, sent when round `xfer`'s final batch lands:
    /// the *cumulative* set of flows imported across all rounds. The
    /// controller reconciles this against the exported set to find flows
    /// whose batch was lost in flight.
    TransferDone {
        /// Which round's final batch triggered this ack.
        xfer: u32,
        /// Every flow imported so far (all rounds).
        imported: Vec<FlowId>,
    },
    /// Generic completion acknowledgment.
    Done,
}

/// Everything that can travel between nodes. `Clone` is required by the
/// engine's fault layer (duplicate faults re-deliver a copy).
#[derive(Debug, Clone)]
pub enum Msg {
    /// A data-plane packet.
    Packet(Packet),
    /// Switch → controller: a packet punted by a `Controller` action.
    PacketIn(Packet),
    /// Controller → switch: install a rule.
    FlowMod {
        /// Correlation.
        op: OpId,
        /// App-level tag to distinguish multiple mods in one op.
        tag: u32,
        /// Rule priority.
        priority: u16,
        /// Match.
        filter: Filter,
        /// Forward to these nodes…
        to_nodes: Vec<NodeId>,
        /// …and/or punt to the controller.
        to_controller: bool,
    },
    /// Switch → controller: the flow-mod took effect.
    FlowModApplied {
        /// Correlation.
        op: OpId,
        /// The tag from the request.
        tag: u32,
        /// Installed rule id (counter queries use it).
        rule: RuleId,
    },
    /// Controller → switch: emit `packet` toward `to`.
    PacketOut {
        /// The packet (with any marks already applied).
        packet: Packet,
        /// Destination node.
        to: NodeId,
    },
    /// Controller → switch: read a rule's packet counter.
    CounterQuery {
        /// Correlation.
        op: OpId,
        /// Which rule.
        rule: RuleId,
    },
    /// Switch → controller: counter value.
    CounterReply {
        /// Correlation.
        op: OpId,
        /// Which rule.
        rule: RuleId,
        /// Packets matched so far.
        packets: u64,
    },
    /// Controller → NF: a southbound call.
    Sb {
        /// Correlation.
        op: OpId,
        /// The call.
        call: SbCall,
    },
    /// Controller → NF: a *fenced* southbound call, reissued by the
    /// controller's post-restart recovery pass. The `(epoch, op, seq)`
    /// triple is a dedup key: an instance that already applied this
    /// exact reissue (a duplicated delivery) re-acks without applying,
    /// and a call from an epoch older than the newest the instance has
    /// seen is stale — superseded by a later recovery — and is fenced
    /// out entirely.
    SbFenced {
        /// Restart epoch of the issuing controller.
        epoch: u64,
        /// Per-epoch sequence number.
        seq: u64,
        /// Correlation.
        op: OpId,
        /// The call.
        call: SbCall,
    },
    /// NF → controller: a southbound reply.
    SbAck {
        /// Correlation.
        op: OpId,
        /// The reply.
        reply: SbReply,
    },
    /// NF → NF: a P2P chunk batch (footnote 10). Travels on the direct
    /// instance-to-instance link; the controller never sees it.
    P2pChunks {
        /// Correlation with the transfer's op.
        op: OpId,
        /// Transfer round this batch belongs to.
        xfer: u32,
        /// Final batch of the round (may carry zero chunks).
        last: bool,
        /// The chunk batch.
        chunks: Vec<Chunk>,
    },
    /// NF → controller: a raised event (§4.3).
    Event(NfEvent),
    /// NF → controller: an alert log record (control applications such as
    /// the §6 remote-processing app react to NF output).
    Alert {
        /// The alert record.
        record: opennf_nf::LogRecord,
    },
    /// Application/harness → controller: northbound command.
    Command(Command),
    /// NF → controller: the instance just came back from a crash and may
    /// hold stale southbound state (event filters installed before it went
    /// down). The controller answers with [`SbCall::SyncEvents`].
    NfRestarted,
    /// Controller shard → controller shard (east-west): the sender owns a
    /// cross-shard operation `op` covering `filter` and asks the receiver
    /// to mirror it — journal the op as armed in its own journal and relay
    /// any matching event or packet-in from its switches/instances back to
    /// the owner. Sent to every peer shard when a cross-shard op starts.
    EwWatch {
        /// The owning shard's operation.
        op: OpId,
        /// Which packets the op covers (relay key for uncorrelated
        /// messages such as events and packet-ins).
        filter: Filter,
    },
    /// Controller shard → controller shard (east-west): a message one
    /// shard received from `from` (an ack, event, packet-in, counter
    /// reply…) that belongs to an operation another shard owns — op ids
    /// are disjoint across shards, so ownership is decided from the id
    /// alone. The receiver dispatches `inner` exactly as if it had arrived
    /// directly from `from`.
    EwForward {
        /// The node the relaying shard received `inner` from.
        from: NodeId,
        /// The relayed message.
        inner: Box<Msg>,
    },
    /// Controller shard → controller shard (east-west): the cross-shard
    /// operation reached a terminal phase at its owner. The receiver
    /// journals the terminal record in its mirror stream and drops the
    /// watch.
    EwRelease {
        /// The released operation.
        op: OpId,
        /// True if it committed, false if it aborted.
        committed: bool,
    },
    /// Node-internal timer (never crosses nodes).
    Timer {
        /// Correlation.
        op: OpId,
        /// Which timer.
        tag: u32,
    },
}

impl Msg {
    /// Chunk payload bytes a southbound call carries beyond its envelope.
    fn call_payload(call: &SbCall) -> usize {
        match call {
            SbCall::PutPerflow { chunks }
            | SbCall::PutMultiflow { chunks }
            | SbCall::PutAllflows { chunks } => {
                chunks.iter().map(Chunk::len).sum::<usize>() + 48 * chunks.len()
            }
            SbCall::PutChunk { chunk } => chunk.len() + 48,
            _ => 0,
        }
    }

    /// Approximate wire size in bytes, used for the controller's
    /// byte-proportional processing cost (§8.3 found controller threads
    /// "busy reading from sockets most of the time").
    pub fn wire_size(&self) -> usize {
        match self {
            Msg::Packet(p) | Msg::PacketIn(p) => p.wire_size as usize,
            Msg::PacketOut { packet, .. } => packet.wire_size as usize + 32,
            Msg::Sb { call, .. } => 64 + Self::call_payload(call),
            // The fence header (epoch + seq) rides along: 24 extra bytes.
            Msg::SbFenced { call, .. } => 88 + Self::call_payload(call),
            Msg::SbAck { reply, .. } => {
                64 + match reply {
                    SbReply::Chunks { chunks } => {
                        chunks.iter().map(Chunk::len).sum::<usize>() + 48 * chunks.len()
                    }
                    SbReply::ChunkStream { chunk, .. } => {
                        chunk.as_ref().map(|c| c.len() + 48).unwrap_or(0)
                    }
                    _ => 0,
                }
            }
            Msg::Event(NfEvent::Received(p)) | Msg::Event(NfEvent::Processed(p)) => {
                // Events carry a JSON-encoded copy of the packet (§7);
                // base64 + field names roughly double the bytes.
                96 + 2 * p.wire_size as usize
            }
            Msg::P2pChunks { chunks, .. } => {
                96 + chunks.iter().map(Chunk::len).sum::<usize>() + 48 * chunks.len()
            }
            // East-west relay: the inner message plus a small envelope.
            Msg::EwForward { inner, .. } => 16 + inner.wire_size(),
            _ => 64,
        }
    }

    /// The uid of the data-plane packet this message carries, if any.
    /// Fault harnesses use it to excuse fault-lost packets when checking
    /// the exactly-once oracle.
    pub fn packet_uid(&self) -> Option<u64> {
        match self {
            Msg::Packet(p) | Msg::PacketIn(p) => Some(p.uid),
            Msg::PacketOut { packet, .. } => Some(packet.uid),
            Msg::Event(NfEvent::Received(p)) | Msg::Event(NfEvent::Processed(p)) => Some(p.uid),
            // A relayed message that carried a packet still carries it: an
            // east-west drop of the relay loses the same uid.
            Msg::EwForward { inner, .. } => inner.packet_uid(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_nf::Scope;
    use opennf_packet::FlowKey;

    #[test]
    fn props_presets_match_paper_labels() {
        assert_eq!(MoveProps::ng().variant, MoveVariant::NoGuarantee);
        assert!(!MoveProps::ng().parallel);
        assert!(MoveProps::ng_pl().parallel);
        assert_eq!(MoveProps::lf_pl().variant, MoveVariant::LossFree);
        assert!(MoveProps::lf_pl_er().early_release);
        assert!(MoveProps::lf_pl_p2p().p2p && !MoveProps::lf_pl_p2p().early_release);
        assert!(!MoveProps::lf_pl().p2p, "P2P is opt-in");
        assert_eq!(
            MoveProps::lfop_pl_er().variant,
            MoveVariant::LossFreeOrderPreserving
        );
    }

    #[test]
    fn scope_presets() {
        assert!(ScopeSet::per_flow().per_flow && !ScopeSet::per_flow().multi_flow);
        assert!(ScopeSet::all().all_flows);
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let k = FlowKey::tcp("1.1.1.1".parse().unwrap(), 1, "2.2.2.2".parse().unwrap(), 2);
        let small = Msg::Packet(Packet::builder(1, k).build());
        let big = Msg::Packet(Packet::builder(2, k).payload(vec![0; 1000]).build());
        assert!(big.wire_size() > small.wire_size());

        let chunk = Chunk::encode(FlowId::default(), Scope::PerFlow, "x", &vec![0u8; 500]);
        let sb = Msg::Sb { op: OpId(1), call: SbCall::PutChunk { chunk } };
        assert!(sb.wire_size() > 500);
    }
}
