//! The traffic source: replays a timed packet schedule into the switch
//! (the testbed's tcpreplay of captured traces, §8).

use std::collections::VecDeque;

use opennf_packet::Packet;
use opennf_sim::{Ctx, Dur, Node, NodeId};

use crate::config::NetConfig;
use crate::msg::Msg;

/// Replays `(time, packet)` pairs toward the switch. Packets are released
/// one self-timer at a time so arbitrarily long traces don't preload the
/// event queue.
pub struct HostNode {
    sw: NodeId,
    cfg: NetConfig,
    /// Remaining schedule, ascending by time (ns since sim start).
    schedule: VecDeque<(u64, Packet)>,
    /// Packets injected so far.
    pub sent: u64,
}

impl HostNode {
    /// Creates a host that will replay `schedule` (must be sorted by time).
    pub fn new(sw: NodeId, cfg: NetConfig, schedule: Vec<(u64, Packet)>) -> Self {
        debug_assert!(schedule.windows(2).all(|w| w[0].0 <= w[1].0), "schedule must be sorted");
        HostNode { sw, cfg, schedule: schedule.into(), sent: 0 }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Send everything due now; then arm a timer for the next instant.
        while let Some((t, _)) = self.schedule.front() {
            let due = *t;
            if due > ctx.now().as_nanos() {
                ctx.send_self(
                    Dur::nanos(due - ctx.now().as_nanos()),
                    Msg::Timer { op: crate::msg::OpId(0), tag: 0 },
                );
                return;
            }
            let (_, mut pkt) = self.schedule.pop_front().unwrap();
            pkt.ingress_ns = ctx.now().as_nanos();
            self.sent += 1;
            ctx.send(self.sw, self.cfg.host_to_sw, Msg::Packet(pkt));
        }
    }
}

impl Node<Msg> for HostNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.pump(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        debug_assert!(matches!(msg, Msg::Timer { .. }), "host only expects timers");
        self.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_packet::FlowKey;
    use opennf_sim::Engine;

    struct Recorder {
        got: Vec<(u64, u64)>,
    }

    impl Node<Msg> for Recorder {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _f: NodeId, msg: Msg) {
            if let Msg::Packet(p) = msg {
                self.got.push((ctx.now().as_nanos(), p.uid));
            }
        }
    }

    fn pkt(uid: u64) -> Packet {
        Packet::builder(
            uid,
            FlowKey::tcp("10.0.0.1".parse().unwrap(), 1, "1.1.1.1".parse().unwrap(), 80),
        )
        .build()
    }

    #[test]
    fn replays_schedule_at_times() {
        let mut eng: Engine<Msg> = Engine::new(1);
        let rec = eng.add_node(Box::new(Recorder { got: Vec::new() }));
        let schedule = vec![
            (0, pkt(1)),
            (1_000_000, pkt(2)),
            (1_000_000, pkt(3)),
            (5_000_000, pkt(4)),
        ];
        let host = HostNode::new(rec, NetConfig::default(), schedule);
        let h = eng.add_node(Box::new(host));
        eng.run_to_completion(100);
        let r: &Recorder = eng.node(rec);
        let latency = NetConfig::default().host_to_sw.as_nanos();
        assert_eq!(
            r.got,
            vec![
                (latency, 1),
                (1_000_000 + latency, 2),
                (1_000_000 + latency, 3),
                (5_000_000 + latency, 4)
            ]
        );
        let hn: &HostNode = eng.node(h);
        assert_eq!(hn.sent, 4);
    }

    #[test]
    fn ingress_timestamp_set_at_send() {
        let mut eng: Engine<Msg> = Engine::new(1);
        struct Check {
            ok: bool,
        }
        impl Node<Msg> for Check {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _f: NodeId, msg: Msg) {
                if let Msg::Packet(p) = msg {
                    self.ok = p.ingress_ns == 2_000_000;
                }
            }
        }
        let rec = eng.add_node(Box::new(Check { ok: false }));
        let host = HostNode::new(rec, NetConfig::default(), vec![(2_000_000, pkt(1))]);
        eng.add_node(Box::new(host));
        eng.run_to_completion(100);
        let c: &Check = eng.node(rec);
        assert!(c.ok);
    }
}
