//! Simulation nodes: the SDN switch, NF instances, and traffic sources.

pub mod host;
pub mod nf_node;
pub mod switch;
