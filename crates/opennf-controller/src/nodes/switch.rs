//! The SDN switch node: wraps the pure [`opennf_net::FlowTable`] with
//! flow-mod latency, packet-out service, and the controller channel.
//!
//! Multi-switch topologies: a switch reaches nodes attached to *other*
//! switches through its `via` next-hop map — `resolve` falls back from
//! the local port map to the next-hop port, so the controller can fan the
//! *same* `FlowMod { to_nodes: [dst] }` to every switch on a flow's path
//! and each switch materializes its own local port for it. Ports leading
//! to neighbor switches are trunks; a forward out a non-trunk port is the
//! packet's final hop to a locally attached NF, which the switch logs in
//! `nf_forward_log` for the path-consistency oracle.

use std::collections::{BTreeMap, BTreeSet};

use opennf_net::{Action, FlowTable, PortRef, TraceRecorder};
use opennf_sim::{Ctx, Node, NodeId, Time};

use crate::config::NetConfig;
use crate::msg::Msg;

/// Marks a self-rescheduled FlowMod as "delay elapsed, install now".
const PENDING_BIT: u32 = 0x8000_0000;

/// One switch with a port per attached node.
pub struct SwitchNode {
    table: FlowTable,
    /// port number → attached node.
    ports: BTreeMap<u16, NodeId>,
    /// attached node → port number (reverse map).
    rports: BTreeMap<NodeId, u16>,
    /// Remote node → local port toward it (next hop). Consulted when a
    /// rule names a node that is not locally attached.
    via: BTreeMap<NodeId, u16>,
    /// Ports whose far end is another switch (inter-switch links).
    trunks: BTreeSet<u16>,
    ctrl: NodeId,
    cfg: NetConfig,
    /// Packet-out control-plane queue occupancy.
    pktout_busy_until: Time,
    /// `(uid, conn)` of data packets in first-forwarding order — the
    /// oracle's definition of "the order they were forwarded by the
    /// switch".
    pub forward_log: Vec<(u64, opennf_packet::ConnKey)>,
    /// Packets that hit a Drop rule or missed the table.
    pub dropped_at_switch: u64,
    /// Total packet-outs serviced.
    pub packet_outs: u64,
    /// `(t_ns, uid, packet-lite, nf)` for every *final-hop* forward — a
    /// data packet sent out a non-trunk port to a locally attached NF.
    /// The path-consistency oracle replays this against committed moves:
    /// after a move's route update committed, no switch may still hand
    /// matching packets to the source instance.
    pub nf_forward_log: Vec<(u64, opennf_packet::Packet, NodeId)>,
    /// Optional packet-trace recorder (the smoltcp-style `--pcap` view of
    /// everything the switch forwards). Disabled by default.
    pub trace: TraceRecorder,
}

impl SwitchNode {
    /// Creates a switch attached to `ctrl` with the given port map.
    pub fn new(cfg: NetConfig, ctrl: NodeId, ports: BTreeMap<u16, NodeId>) -> Self {
        let rports = ports.iter().map(|(p, n)| (*n, *p)).collect();
        SwitchNode {
            table: FlowTable::new(),
            ports,
            rports,
            via: BTreeMap::new(),
            trunks: BTreeSet::new(),
            ctrl,
            cfg,
            pktout_busy_until: Time::ZERO,
            forward_log: Vec::new(),
            dropped_at_switch: 0,
            packet_outs: 0,
            nf_forward_log: Vec::new(),
            trace: TraceRecorder::disabled(),
        }
    }

    /// The flow table (inspection).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Marks `port` as a trunk to a neighbor switch (the port must already
    /// be in the port map, attached to that switch).
    pub fn mark_trunk(&mut self, port: u16) {
        debug_assert!(self.ports.contains_key(&port), "trunk port must be attached");
        self.trunks.insert(port);
    }

    /// Declares that `node` (attached to another switch) is reached out
    /// `port` from here.
    pub fn add_via(&mut self, node: NodeId, port: u16) {
        debug_assert!(self.trunks.contains(&port), "via must point at a trunk");
        self.via.insert(node, port);
    }

    /// The local port toward `node`: its own port when locally attached,
    /// else the next hop from the `via` map.
    fn resolve(&self, node: NodeId) -> u16 {
        match self.rports.get(&node).or_else(|| self.via.get(&node)) {
            Some(p) => *p,
            None => panic!("switch has no port or next hop toward {node:?}"),
        }
    }

    /// Installs a rule immediately (initial topology setup).
    pub fn preinstall(&mut self, priority: u16, filter: opennf_packet::Filter, to: &[NodeId]) {
        let action =
            Action::Forward(to.iter().map(|n| PortRef::Port(self.resolve(*n))).collect());
        self.table.install(priority, filter, action);
    }

    fn forward(&mut self, ctx: &mut Ctx<'_, Msg>, pkt: &opennf_packet::Packet, action: &Action) {
        if let Action::Forward(ports) = action.clone() {
            for p in ports.iter() {
                match p {
                    PortRef::Port(n) => {
                        let node = self.ports[n];
                        if !self.trunks.contains(n) {
                            self.nf_forward_log.push((ctx.now().as_nanos(), pkt.clone(), node));
                        }
                        ctx.send(node, self.cfg.sw_to_nf, Msg::Packet(pkt.clone()));
                    }
                    PortRef::Controller => {
                        ctx.send(self.ctrl, self.cfg.sw_to_ctrl, Msg::PacketIn(pkt.clone()));
                    }
                }
            }
        }
    }
}

impl Node<Msg> for SwitchNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::Packet(pkt) => match self.table.apply(&pkt) {
                Some((_rule, action)) => {
                    if matches!(action, Action::Drop) {
                        self.dropped_at_switch += 1;
                        ctx.counters().inc("switch.dropped");
                    } else {
                        self.forward_log.push((pkt.uid, pkt.conn_key()));
                        self.trace.record(ctx.now().as_nanos(), "sw.fwd", &pkt);
                        self.forward(ctx, &pkt, &action);
                    }
                }
                None => {
                    self.dropped_at_switch += 1;
                    ctx.counters().inc("switch.table_miss");
                }
            },
            Msg::FlowMod { op, tag, priority, filter, to_nodes, to_controller } => {
                if tag & PENDING_BIT == 0 {
                    // First delivery: the rule takes effect only after the
                    // TCAM update delay. Re-send to self with the pending
                    // bit set; installation is atomic at effect time.
                    ctx.send_self(
                        self.cfg.flow_mod_delay,
                        Msg::FlowMod {
                            op,
                            tag: tag | PENDING_BIT,
                            priority,
                            filter,
                            to_nodes,
                            to_controller,
                        },
                    );
                } else {
                    let tag = tag & !PENDING_BIT;
                    let mut ports: Vec<PortRef> =
                        to_nodes.iter().map(|n| PortRef::Port(self.resolve(*n))).collect();
                    if to_controller {
                        ports.push(PortRef::Controller);
                    }
                    let action = if ports.is_empty() { Action::Drop } else { Action::forward(ports) };
                    let rule = self.table.install(priority, filter, action);
                    ctx.counters().inc("switch.flow_mods");
                    ctx.send(self.ctrl, self.cfg.sw_to_ctrl, Msg::FlowModApplied { op, tag, rule });
                }
            }
            Msg::PacketOut { packet, to } => {
                // Packet-outs are serviced serially by the switch control
                // plane — the §8.1.1 bottleneck at high packet rates.
                self.packet_outs += 1;
                self.trace.record(ctx.now().as_nanos(), "sw.pktout", &packet);
                let start = self.pktout_busy_until.max(ctx.now());
                let done = start + self.cfg.packet_out_service;
                self.pktout_busy_until = done;
                let delay = (done - ctx.now()) + self.cfg.sw_to_nf;
                ctx.send(to, delay, Msg::Packet(packet));
            }
            Msg::CounterQuery { op, rule } => {
                let packets = self.table.counters(rule).map(|(p, _)| p).unwrap_or(0);
                ctx.send(self.ctrl, self.cfg.sw_to_ctrl, Msg::CounterReply { op, rule, packets });
            }
            other => debug_assert!(false, "switch: unexpected message {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::OpId;
    use opennf_packet::{Filter, FlowKey, Packet};
    use opennf_sim::{Dur, Engine};

    fn pkt(uid: u64) -> Packet {
        Packet::builder(
            uid,
            FlowKey::tcp("10.0.0.1".parse().unwrap(), 1, "1.1.1.1".parse().unwrap(), 80),
        )
        .build()
    }

    /// Sink node that records received packets with times.
    pub struct Sink {
        pub got: Vec<(u64, u64)>, // (time ns, uid)
        pub acks: Vec<u32>,       // FlowModApplied tags
    }

    impl Sink {
        fn new() -> Self {
            Sink { got: Vec::new(), acks: Vec::new() }
        }
    }

    impl Node<Msg> for Sink {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _f: NodeId, msg: Msg) {
            match msg {
                Msg::Packet(p) | Msg::PacketIn(p) => self.got.push((ctx.now().as_nanos(), p.uid)),
                Msg::FlowModApplied { tag, .. } => self.acks.push(tag),
                _ => {}
            }
        }
    }

    fn build() -> (Engine<Msg>, NodeId, NodeId, NodeId, NodeId) {
        let mut eng: Engine<Msg> = Engine::new(1);
        let sink1 = eng.add_node(Box::new(Sink::new()));
        let sink2 = eng.add_node(Box::new(Sink::new()));
        let ctrl = eng.add_node(Box::new(Sink::new())); // controller stand-in
        let mut ports = BTreeMap::new();
        ports.insert(1u16, sink1);
        ports.insert(2u16, sink2);
        let mut sw = SwitchNode::new(NetConfig::default(), ctrl, ports);
        sw.preinstall(0, Filter::any(), &[sink1]);
        let swid = eng.add_node(Box::new(sw));
        (eng, swid, sink1, sink2, ctrl)
    }

    #[test]
    fn forwards_by_table() {
        let (mut eng, sw, sink1, _, _) = build();
        eng.inject(sw, Dur::ZERO, Msg::Packet(pkt(1)));
        eng.run_to_completion(100);
        let s: &Sink = eng.node(sink1);
        assert_eq!(s.got, vec![(Dur::micros(100).as_nanos(), 1)]);
        let swn: &SwitchNode = eng.node(sw);
        assert_eq!(swn.forward_log.len(), 1);
        assert_eq!(swn.forward_log[0].0, 1);
    }

    #[test]
    fn flow_mod_takes_effect_after_delay_and_acks() {
        let (mut eng, sw, sink1, sink2, ctrl) = build();
        eng.inject(
            sw,
            Dur::ZERO,
            Msg::FlowMod {
                op: OpId(1),
                tag: 7,
                priority: 10,
                filter: Filter::any(),
                to_nodes: vec![sink2],
                to_controller: false,
            },
        );
        eng.inject(sw, Dur::millis(1), Msg::Packet(pkt(1)));
        eng.inject(sw, Dur::millis(60), Msg::Packet(pkt(2)));
        eng.run_to_completion(100);
        let s1: &Sink = eng.node(sink1);
        let s2: &Sink = eng.node(sink2);
        assert_eq!(s1.got.iter().map(|g| g.1).collect::<Vec<_>>(), vec![1]);
        assert_eq!(s2.got.iter().map(|g| g.1).collect::<Vec<_>>(), vec![2]);
        let c: &Sink = eng.node(ctrl);
        assert_eq!(c.acks, vec![7], "controller told the mod applied, original tag restored");
    }

    #[test]
    fn two_phase_update_forwards_to_both_then_switches() {
        let (mut eng, sw, sink1, sink2, ctrl) = build();
        // Phase 1 at t=0 (applies after flow_mod_delay): {sink1, ctrl}.
        eng.inject(
            sw,
            Dur::ZERO,
            Msg::FlowMod {
                op: OpId(1),
                tag: 1,
                priority: 5,
                filter: Filter::any(),
                to_nodes: vec![sink1],
                to_controller: true,
            },
        );
        // Phase 2 at t=60ms: sink2 at higher priority.
        eng.inject(
            sw,
            Dur::millis(60),
            Msg::FlowMod {
                op: OpId(1),
                tag: 2,
                priority: 9,
                filter: Filter::any(),
                to_nodes: vec![sink2],
                to_controller: false,
            },
        );
        eng.inject(sw, Dur::millis(50), Msg::Packet(pkt(1))); // phase-1 window
        eng.inject(sw, Dur::millis(120), Msg::Packet(pkt(2))); // after phase 2
        eng.run_to_completion(100);
        let s1: &Sink = eng.node(sink1);
        let s2: &Sink = eng.node(sink2);
        let c: &Sink = eng.node(ctrl);
        assert_eq!(s1.got.iter().map(|g| g.1).collect::<Vec<_>>(), vec![1]);
        assert_eq!(c.got.iter().map(|g| g.1).collect::<Vec<_>>(), vec![1], "ctrl got the copy");
        assert_eq!(s2.got.iter().map(|g| g.1).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn packet_out_rate_limited_and_ordered() {
        let (mut eng, sw, _, sink2, _) = build();
        for i in 0..10 {
            eng.inject(sw, Dur::ZERO, Msg::PacketOut { packet: pkt(i), to: sink2 });
        }
        eng.run_to_completion(1000);
        let s2: &Sink = eng.node(sink2);
        assert_eq!(s2.got.len(), 10);
        let last = s2.got.last().unwrap().0;
        assert!(last >= Dur::micros(150 * 10).as_nanos(), "serial service: {last}");
        let uids: Vec<u64> = s2.got.iter().map(|g| g.1).collect();
        assert_eq!(uids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn counter_query_replies() {
        let (mut eng, sw, _, _, ctrl) = build();
        eng.inject(sw, Dur::ZERO, Msg::Packet(pkt(1)));
        eng.inject(sw, Dur::millis(1), Msg::Packet(pkt(2)));
        eng.run_to_completion(100);
        let rule = {
            let swn: &SwitchNode = eng.node(sw);
            swn.table().rules()[0].id
        };
        eng.inject(sw, Dur::ZERO, Msg::CounterQuery { op: OpId(9), rule });
        eng.run_to_completion(100);
        // The ctrl stand-in doesn't record CounterReply; check via table.
        let swn: &SwitchNode = eng.node(sw);
        assert_eq!(swn.table().counters(rule).unwrap().0, 2);
        let _ = ctrl;
    }

    #[test]
    fn unrouted_packet_counts_as_miss() {
        let mut eng: Engine<Msg> = Engine::new(1);
        let ctrl = eng.add_node(Box::new(Sink::new()));
        let sw = SwitchNode::new(NetConfig::default(), ctrl, BTreeMap::new());
        let swid = eng.add_node(Box::new(sw));
        eng.inject(swid, Dur::ZERO, Msg::Packet(pkt(1)));
        eng.run_to_completion(10);
        let swn: &SwitchNode = eng.node(swid);
        assert_eq!(swn.dropped_at_switch, 1);
    }
}
