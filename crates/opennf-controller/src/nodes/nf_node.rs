//! The NF instance node: wraps an [`EventedNf`] with the virtual-time cost
//! model — packet-processing occupancy, chunk-at-a-time export
//! (serialization thread), import queue, and the per-flow locking that the
//! late-locking optimization manipulates.

use std::collections::{HashMap, VecDeque};

use opennf_nf::{Chunk, CostModel, EventedNf, HandleOutcome, NetworkFunction, Scope};
use opennf_packet::{Filter, FlowId, Packet};
use opennf_sim::{Ctx, Dur, Node, NodeId, Time};

use crate::config::NetConfig;
use crate::msg::{Msg, OpId, SbCall, SbReply};

/// Per-processed-packet record, the raw material for the latency metrics
/// of Figures 10(b) and 11.
#[derive(Debug, Clone, Copy)]
pub struct ProcRecord {
    /// Packet uid.
    pub uid: u64,
    /// When the packet first entered the network (virtual ns).
    pub ingress_ns: u64,
    /// When processing completed at this instance (virtual ns).
    pub done_ns: u64,
    /// The packet took a detour through the controller (event replay or
    /// share-injection) — these are the packets a move delays.
    pub via_controller: bool,
    /// The packet was held in this instance's event buffer and released at
    /// `disableEvents` (order-preserving moves).
    pub from_buffer: bool,
}

enum ExportScope {
    Per,
    Multi,
}

struct ExportTask {
    scope: ExportScope,
    filter: Filter,
    pending: VecDeque<FlowId>,
    exported: std::collections::HashSet<FlowId>,
    /// `exported` in serialization order (deterministic reporting).
    exported_order: Vec<FlowId>,
    relists: u32,
    stream: bool,
    late_lock: bool,
    collected: Vec<Chunk>,
    in_flight: Option<(FlowId, Vec<Chunk>)>,
    in_flight_done: Time,
    /// P2P (footnote 10): stream batches directly to this peer instance
    /// instead of chunk-by-chunk through the controller. `(peer, xfer)`.
    peer: Option<(NodeId, u32)>,
    /// Restrict the export to these flows (retry rounds re-ship exactly
    /// the missing set; also disables re-listing).
    only: Option<std::collections::HashSet<FlowId>>,
    /// Chunks accumulated toward the next P2P batch.
    batch: Vec<Chunk>,
    /// Chunk bytes shipped by this task (P2P round reporting).
    round_bytes: u64,
}

/// Per-op P2P import state at a transfer's destination.
#[derive(Default)]
struct P2pIn {
    /// Flows imported across every round, in arrival order.
    imported: Vec<FlowId>,
    seen: std::collections::HashSet<FlowId>,
    /// Tombstone: batches of rounds `<= aborted_through` arriving after an
    /// abort are discarded so they cannot resurrect rolled-back state.
    aborted_through: u32,
}

/// Cap on re-list rounds at export end — state created *during* an export
/// is picked up (the NF "furnishes all state matching a filter", §3,
/// including state allocated while it gathers), but a live workload must
/// not keep an export open forever.
const MAX_RELISTS: u32 = 16;

const TAG_EXPORT_STEP: u32 = 1;

/// Chunks per P2P batch: one direct NF → NF message carries up to this
/// many chunks (the threaded runtime's frame coalescing, modelled).
const P2P_BATCH_CHUNKS: usize = 8;

/// An NF instance in the simulation.
pub struct NfNode {
    /// Display name (`"prads1"`, `"bro2"`, …).
    pub name: &'static str,
    harness: EventedNf,
    cost: CostModel,
    cfg: NetConfig,
    ctrl: NodeId,
    /// Packet-path occupancy.
    proc_busy: Time,
    /// Import-path occupancy.
    import_busy: Time,
    /// Uplink (NF → controller) occupancy: keeps southbound replies FIFO
    /// and models transfer time of bulk state.
    uplink_busy: Time,
    exports: HashMap<OpId, ExportTask>,
    /// P2P transfer state at the destination side, per op.
    p2p_in: HashMap<OpId, P2pIn>,
    /// Per-packet processing records.
    pub records: Vec<ProcRecord>,
    /// Sum of chunk bytes exported (reports).
    pub bytes_exported: u64,
    /// Sum of chunk bytes imported.
    pub bytes_imported: u64,
    /// Archive of every log record the NF emitted (drained continuously
    /// so alerts can be forwarded; tests read this instead of the NF).
    pub logs: Vec<opennf_nf::LogRecord>,
    /// Highest controller fencing epoch seen (see [`Msg::SbFenced`]).
    max_epoch: u64,
    /// `(epoch, op, seq)` keys already applied — an exact duplicate
    /// (fault-layer dup or crash-straddling reissue) is dropped instead of
    /// applied twice.
    fence_seen: std::collections::HashSet<(u64, u64, u64)>,
    /// Run telemetry (disabled no-op by default; the scenario builder
    /// attaches the real recorder so fence drops land in the trace for
    /// the happens-before oracle).
    tel: opennf_telemetry::Telemetry,
}

impl NfNode {
    /// Wraps `nf` as a simulation node.
    pub fn new(
        name: &'static str,
        nf: Box<dyn NetworkFunction>,
        cfg: NetConfig,
        ctrl: NodeId,
    ) -> Self {
        let cost = nf.cost_model();
        NfNode {
            name,
            harness: EventedNf::new(nf),
            cost,
            cfg,
            ctrl,
            proc_busy: Time::ZERO,
            import_busy: Time::ZERO,
            uplink_busy: Time::ZERO,
            exports: HashMap::new(),
            p2p_in: HashMap::new(),
            records: Vec::new(),
            bytes_exported: 0,
            bytes_imported: 0,
            logs: Vec::new(),
            max_epoch: 0,
            fence_seen: std::collections::HashSet::new(),
            tel: opennf_telemetry::Telemetry::disabled(),
        }
    }

    /// Attaches the run's telemetry handle (the builder calls this; the
    /// default handle is a disabled no-op).
    pub fn set_telemetry(&mut self, tel: opennf_telemetry::Telemetry) {
        self.tel = tel;
    }

    /// The wrapped harness (drop counts, processed logs).
    pub fn harness(&self) -> &EventedNf {
        &self.harness
    }

    /// Mutable harness access (tests and baselines).
    pub fn harness_mut(&mut self) -> &mut EventedNf {
        &mut self.harness
    }

    /// Downcasts the wrapped NF to a concrete type.
    pub fn nf_as<T: 'static>(&self) -> &T {
        let any: &dyn std::any::Any = self.harness.nf();
        any.downcast_ref::<T>().expect("NF type mismatch")
    }

    /// Uids processed, in processing order (oracle input).
    pub fn processed_log(&self) -> &[u64] {
        self.harness.processed_log()
    }

    /// Whether an export is currently serializing (contention).
    fn exporting(&self) -> bool {
        !self.exports.is_empty()
    }

    fn schedule_processing(&mut self, ctx: &mut Ctx<'_, Msg>, pkt: &Packet, from_buffer: bool) {
        let mut start = ctx.now().max(self.proc_busy);
        // Per-connection lock: a packet whose own flow is mid-serialization
        // waits for the chunk to finish (the mutex §7 adds to Bro).
        for task in self.exports.values() {
            if let Some((flow, _)) = &task.in_flight {
                if *flow == pkt.flow_id() && task.in_flight_done > start {
                    start = task.in_flight_done;
                }
            }
        }
        let done = start + self.cost.packet_cost(self.exporting());
        self.proc_busy = done;
        self.records.push(ProcRecord {
            uid: pkt.uid,
            ingress_ns: pkt.ingress_ns,
            done_ns: done.as_nanos(),
            via_controller: pkt.do_not_buffer || pkt.do_not_drop,
            from_buffer,
        });
    }

    /// Drains NF logs into the archive, forwarding alerts to the
    /// controller for control applications (§6).
    fn flush_logs(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let drained = self.harness.nf_mut().drain_logs();
        for record in drained {
            if record.kind.starts_with("alert.") {
                ctx.send(self.ctrl, self.cfg.ctrl_to_nf, Msg::Alert { record: record.clone() });
            }
            self.logs.push(record);
        }
    }

    /// Log records of a given kind (test/report helper).
    pub fn logs_of(&self, kind: &str) -> Vec<&opennf_nf::LogRecord> {
        self.logs.iter().filter(|l| l.kind == kind).collect()
    }

    /// Sends a message up to the controller over the (FIFO, finite-rate)
    /// southbound channel. `bytes` occupies the uplink for its transfer
    /// time, so a small message can never overtake a large one.
    fn send_ctrl(&mut self, ctx: &mut Ctx<'_, Msg>, bytes: usize, msg: Msg) {
        let start = ctx.now().max(self.uplink_busy);
        let done = start + self.cfg.transfer_time(bytes);
        self.uplink_busy = done;
        ctx.send(self.ctrl, (done - ctx.now()) + self.cfg.ctrl_to_nf, msg);
    }

    /// Sends a message over the direct NF → NF link (P2P transfers). It
    /// shares the instance's NIC with the southbound uplink, so bulk
    /// batches occupy the same transfer budget `send_ctrl` models.
    fn send_peer(&mut self, ctx: &mut Ctx<'_, Msg>, peer: NodeId, bytes: usize, msg: Msg) {
        let start = ctx.now().max(self.uplink_busy);
        let done = start + self.cfg.transfer_time(bytes);
        self.uplink_busy = done;
        ctx.send(peer, (done - ctx.now()) + self.cfg.ctrl_to_nf, msg);
    }

    #[allow(clippy::too_many_arguments)]
    fn begin_export(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        op: OpId,
        scope: ExportScope,
        filter: &Filter,
        stream: bool,
        late_lock: bool,
        peer: Option<(NodeId, u32)>,
        only: Option<Vec<FlowId>>,
    ) {
        let only: Option<std::collections::HashSet<FlowId>> =
            only.map(|ids| ids.into_iter().collect());
        let mut pending: VecDeque<FlowId> = match scope {
            ExportScope::Per => self.harness.nf().list_perflow(filter).into(),
            ExportScope::Multi => self.harness.nf().list_multiflow(filter).into(),
        };
        if let Some(only) = &only {
            pending.retain(|f| only.contains(f));
        }
        let task = ExportTask {
            scope,
            filter: *filter,
            pending,
            exported: std::collections::HashSet::new(),
            exported_order: Vec::new(),
            relists: 0,
            stream,
            late_lock,
            collected: Vec::new(),
            in_flight: None,
            in_flight_done: Time::ZERO,
            peer,
            only,
            batch: Vec::new(),
            round_bytes: 0,
        };
        self.exports.insert(op, task);
        // Kick the serialization loop.
        ctx.send_self(Dur::ZERO, Msg::Timer { op, tag: TAG_EXPORT_STEP });
    }

    fn export_step(&mut self, ctx: &mut Ctx<'_, Msg>, op: OpId) {
        // Phase 1: the chunk that was serializing finishes now.
        let finished = {
            let Some(task) = self.exports.get_mut(&op) else {
                return;
            };
            task.in_flight.take().map(|(_flow, chunks)| (chunks, task.stream, task.peer))
        };
        if let Some((chunks, stream, peer)) = finished {
            let bytes: usize = chunks.iter().map(Chunk::len).sum();
            self.bytes_exported += bytes as u64;
            if let Some((peer_node, xfer)) = peer {
                // P2P: accumulate toward a batch; a full batch ships
                // directly to the peer, bypassing the controller.
                let full_batch = {
                    let task = self.exports.get_mut(&op).unwrap();
                    task.round_bytes += bytes as u64;
                    task.batch.extend(chunks);
                    if task.batch.len() >= P2P_BATCH_CHUNKS {
                        Some(std::mem::take(&mut task.batch))
                    } else {
                        None
                    }
                };
                if let Some(batch) = full_batch {
                    let bb: usize = batch.iter().map(Chunk::len).sum();
                    self.send_peer(
                        ctx,
                        peer_node,
                        bb,
                        Msg::P2pChunks { op, xfer, last: false, chunks: batch },
                    );
                }
            } else if stream {
                for chunk in chunks {
                    let bytes = chunk.len();
                    self.send_ctrl(
                        ctx,
                        bytes,
                        Msg::SbAck {
                            op,
                            reply: SbReply::ChunkStream { chunk: Some(chunk), last: false },
                        },
                    );
                }
            } else {
                self.exports.get_mut(&op).unwrap().collected.extend(chunks);
            }
        }
        // Phase 2: start serializing the next flow, or finish the export.
        // When the pending list drains, re-list once more: state created
        // while the export ran still matches the filter and must ship.
        let next = {
            let Some(task) = self.exports.get_mut(&op) else {
                return;
            };
            if task.pending.is_empty() && task.relists < MAX_RELISTS && task.only.is_none() {
                task.relists += 1;
                let fresh: Vec<FlowId> = match task.scope {
                    ExportScope::Per => self.harness.nf().list_perflow(&task.filter),
                    ExportScope::Multi => self.harness.nf().list_multiflow(&task.filter),
                };
                let task = self.exports.get_mut(&op).unwrap();
                for id in fresh {
                    if !task.exported.contains(&id) {
                        task.pending.push_back(id);
                    }
                }
            }
            let task = self.exports.get_mut(&op).unwrap();
            task.pending.pop_front().map(|f| (f, task.late_lock, matches!(task.scope, ExportScope::Per)))
        };
        match next {
            Some((flow_id, late_lock, scope_is_per)) => {
                let flow_filter = Filter::from_flow_id(flow_id);
                if late_lock && scope_is_per {
                    // Late-locking (ER): lock this flow only now — further
                    // packets of the flow raise drop-events.
                    self.harness.enable_events(flow_filter, opennf_nf::EventAction::Drop);
                }
                // Capture the state at serialization start (updates to
                // other flows continue meanwhile).
                let chunks = if scope_is_per {
                    self.harness.nf_mut().get_perflow(&flow_filter)
                } else {
                    self.harness.nf_mut().get_multiflow(&flow_filter)
                };
                let bytes: usize = chunks.iter().map(Chunk::len).sum();
                let cost = self.cost.get_chunk(bytes.max(1));
                let task = self.exports.get_mut(&op).unwrap();
                if task.exported.insert(flow_id) {
                    task.exported_order.push(flow_id);
                }
                task.in_flight = Some((flow_id, chunks));
                task.in_flight_done = ctx.now() + cost;
                ctx.send_self(cost, Msg::Timer { op, tag: TAG_EXPORT_STEP });
            }
            None => {
                // Export complete.
                let task = self.exports.remove(&op).unwrap();
                if let Some((peer_node, xfer)) = task.peer {
                    // Final batch (possibly empty) closes the round at the
                    // peer; data batches always carry `last: false`, so an
                    // empty round still terminates cleanly.
                    let bb: usize = task.batch.iter().map(Chunk::len).sum();
                    self.send_peer(
                        ctx,
                        peer_node,
                        bb.max(1),
                        Msg::P2pChunks { op, xfer, last: true, chunks: task.batch },
                    );
                    // The controller only sees a small completion envelope.
                    self.send_ctrl(
                        ctx,
                        96,
                        Msg::SbAck {
                            op,
                            reply: SbReply::TransferExported {
                                xfer,
                                flow_ids: task.exported_order,
                                bytes: task.round_bytes,
                            },
                        },
                    );
                } else if task.stream {
                    // Explicit end-of-stream marker; data chunks always
                    // carry `last: false` so an empty final flow cannot
                    // leave the stream unterminated. Same FIFO uplink, so
                    // it cannot overtake the data.
                    self.send_ctrl(
                        ctx,
                        0,
                        Msg::SbAck {
                            op,
                            reply: SbReply::ChunkStream { chunk: None, last: true },
                        },
                    );
                } else {
                    let chunks = task.collected;
                    let bytes: usize = chunks.iter().map(Chunk::len).sum();
                    self.send_ctrl(ctx, bytes, Msg::SbAck { op, reply: SbReply::Chunks { chunks } });
                }
            }
        }
    }

    fn handle_sb(&mut self, ctx: &mut Ctx<'_, Msg>, op: OpId, call: SbCall) {
        match call {
            SbCall::GetPerflow { filter, stream, late_lock } => {
                self.begin_export(ctx, op, ExportScope::Per, &filter, stream, late_lock, None, None);
            }
            SbCall::GetMultiflow { filter, stream } => {
                self.begin_export(ctx, op, ExportScope::Multi, &filter, stream, false, None, None);
            }
            SbCall::TransferPerflow { filter, peer, xfer, only } => {
                let only = if only.is_empty() { None } else { Some(only) };
                self.begin_export(
                    ctx,
                    op,
                    ExportScope::Per,
                    &filter,
                    true,
                    false,
                    Some((peer, xfer)),
                    only,
                );
            }
            SbCall::AbortTransfer { flow_ids, xfer } => {
                // Destination-side rollback: delete what this op imported
                // and tombstone the round so straggler batches still in
                // flight on the direct link are discarded on arrival.
                let st = self.p2p_in.entry(op).or_default();
                st.aborted_through = st.aborted_through.max(xfer);
                st.imported.retain(|f| !flow_ids.contains(f));
                for f in &flow_ids {
                    st.seen.remove(f);
                }
                self.harness.nf_mut().del_perflow(&flow_ids);
                let cost = Dur::micros(5) * flow_ids.len().max(1) as u64;
                ctx.send(self.ctrl, cost + self.cfg.ctrl_to_nf, Msg::SbAck { op, reply: SbReply::Done });
            }
            SbCall::GetAllflows => {
                let chunks = self.harness.nf_mut().get_allflows();
                let bytes: usize = chunks.iter().map(Chunk::len).sum();
                self.bytes_exported += bytes as u64;
                let cost = self.cost.get_chunk(bytes.max(1));
                // Serialization cost occupies the uplink start.
                self.uplink_busy = self.uplink_busy.max(ctx.now() + cost);
                self.send_ctrl(ctx, bytes, Msg::SbAck { op, reply: SbReply::Chunks { chunks } });
            }
            SbCall::PutChunk { chunk } => {
                let bytes = chunk.len();
                self.bytes_imported += bytes as u64;
                let flow_id = chunk.flow_id;
                let start = ctx.now().max(self.import_busy);
                let done = start + self.cost.put_chunk(bytes.max(1));
                self.import_busy = done;
                let res = match chunk.scope {
                    Scope::PerFlow => self.harness.nf_mut().put_perflow(vec![chunk]),
                    Scope::MultiFlow => self.harness.nf_mut().put_multiflow(vec![chunk]),
                    Scope::AllFlows => self.harness.nf_mut().put_allflows(vec![chunk]),
                };
                debug_assert!(res.is_ok(), "put failed: {res:?}");
                ctx.send(
                    self.ctrl,
                    (done - ctx.now()) + self.cfg.ctrl_to_nf,
                    Msg::SbAck { op, reply: SbReply::ChunkImported { flow_id } },
                );
            }
            SbCall::PutPerflow { chunks }
            | SbCall::PutMultiflow { chunks }
            | SbCall::PutAllflows { chunks } => {
                let bytes: usize = chunks.iter().map(Chunk::len).sum();
                self.bytes_imported += bytes as u64;
                let mut cost = Dur::ZERO;
                for c in &chunks {
                    cost += self.cost.put_chunk(c.len().max(1));
                }
                let start = ctx.now().max(self.import_busy);
                let done = start + cost;
                self.import_busy = done;
                // Dispatch by scope per chunk (bulk calls may mix).
                let mut per = Vec::new();
                let mut multi = Vec::new();
                let mut all = Vec::new();
                for c in chunks {
                    match c.scope {
                        Scope::PerFlow => per.push(c),
                        Scope::MultiFlow => multi.push(c),
                        Scope::AllFlows => all.push(c),
                    }
                }
                if !per.is_empty() {
                    self.harness.nf_mut().put_perflow(per).expect("put_perflow");
                }
                if !multi.is_empty() {
                    self.harness.nf_mut().put_multiflow(multi).expect("put_multiflow");
                }
                if !all.is_empty() {
                    self.harness.nf_mut().put_allflows(all).expect("put_allflows");
                }
                ctx.send(
                    self.ctrl,
                    (done - ctx.now()) + self.cfg.ctrl_to_nf,
                    Msg::SbAck { op, reply: SbReply::Done },
                );
            }
            SbCall::DelPerflow { flow_ids } => {
                self.harness.nf_mut().del_perflow(&flow_ids);
                let cost = Dur::micros(5) * flow_ids.len().max(1) as u64;
                ctx.send(self.ctrl, cost + self.cfg.ctrl_to_nf, Msg::SbAck { op, reply: SbReply::Done });
            }
            SbCall::DelMultiflow { flow_ids } => {
                self.harness.nf_mut().del_multiflow(&flow_ids);
                let cost = Dur::micros(5) * flow_ids.len().max(1) as u64;
                ctx.send(self.ctrl, cost + self.cfg.ctrl_to_nf, Msg::SbAck { op, reply: SbReply::Done });
            }
            SbCall::EnableEvents { filter, action } => {
                self.harness.enable_events(filter, action);
                ctx.send(self.ctrl, Dur::micros(10) + self.cfg.ctrl_to_nf, Msg::SbAck { op, reply: SbReply::Done });
            }
            SbCall::DisableEvents { filter } => {
                let released = self.harness.disable_events_release(&filter);
                for pkt in released {
                    self.harness.process_released(&pkt);
                    self.schedule_processing(ctx, &pkt, true);
                }
                ctx.send(self.ctrl, Dur::micros(10) + self.cfg.ctrl_to_nf, Msg::SbAck { op, reply: SbReply::Done });
            }
            SbCall::SyncEvents { filters } => {
                let released = self.harness.sync_events_release(&filters);
                for pkt in released {
                    self.harness.process_released(&pkt);
                    self.schedule_processing(ctx, &pkt, true);
                }
                ctx.send(self.ctrl, Dur::micros(10) + self.cfg.ctrl_to_nf, Msg::SbAck { op, reply: SbReply::Done });
            }
            SbCall::AddDropFilter { filter } => {
                self.harness.add_drop_filter(filter);
                ctx.send(self.ctrl, Dur::micros(10) + self.cfg.ctrl_to_nf, Msg::SbAck { op, reply: SbReply::Done });
            }
            SbCall::RemoveDropFilter { filter } => {
                self.harness.remove_drop_filter(&filter);
                ctx.send(self.ctrl, Dur::micros(10) + self.cfg.ctrl_to_nf, Msg::SbAck { op, reply: SbReply::Done });
            }
        }
    }

    /// A P2P chunk batch arrived on the direct NF → NF link (this
    /// instance is the transfer's destination).
    fn on_p2p_chunks(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        op: OpId,
        xfer: u32,
        last: bool,
        chunks: Vec<Chunk>,
    ) {
        let st = self.p2p_in.entry(op).or_default();
        if xfer <= st.aborted_through {
            // Tombstoned round: a batch that raced the abort. Importing it
            // would resurrect rolled-back state.
            return;
        }
        let bytes: usize = chunks.iter().map(Chunk::len).sum();
        self.bytes_imported += bytes as u64;
        let mut cost = Dur::ZERO;
        for c in &chunks {
            cost += self.cost.put_chunk(c.len().max(1));
        }
        let start = ctx.now().max(self.import_busy);
        let done = start + cost;
        self.import_busy = done;
        let ids: Vec<FlowId> = chunks.iter().map(|c| c.flow_id).collect();
        if !chunks.is_empty() {
            self.harness.nf_mut().put_perflow(chunks).expect("p2p put_perflow");
        }
        let st = self.p2p_in.entry(op).or_default();
        for id in ids {
            if st.seen.insert(id) {
                st.imported.push(id);
            }
        }
        if last {
            // Round complete: report the cumulative imported set to the
            // controller in a small envelope, trailing the import work.
            let imported = st.imported.clone();
            ctx.send(
                self.ctrl,
                (done - ctx.now()) + self.cfg.ctrl_to_nf,
                Msg::SbAck { op, reply: SbReply::TransferDone { xfer, imported } },
            );
        }
    }
}

impl Node<Msg> for NfNode {
    fn on_restart(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // A recovered process announces itself. Its harness state (event
        // filters, buffers) survived the crash; the controller replies
        // with a `SyncEvents` carrying the filter set it *should* hold —
        // without this, a filter armed before the crash would keep
        // dropping packets and raising stale events forever.
        ctx.send(self.ctrl, self.cfg.ctrl_to_nf, Msg::NfRestarted);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::Packet(pkt) => {
                let (outcome, events) = self.harness.handle_packet(&pkt);
                for ev in events {
                    ctx.send(self.ctrl, self.cfg.ctrl_to_nf, Msg::Event(ev));
                }
                match outcome {
                    HandleOutcome::Processed => self.schedule_processing(ctx, &pkt, false),
                    HandleOutcome::Buffered => ctx.counters().inc("nf.buffered"),
                    HandleOutcome::Dropped | HandleOutcome::DroppedSilently => {
                        ctx.counters().inc("nf.dropped")
                    }
                    HandleOutcome::Faulted => ctx.counters().inc("nf.faulted"),
                }
            }
            Msg::Sb { op, call } => self.handle_sb(ctx, op, call),
            Msg::SbFenced { epoch, seq, op, call } => {
                if epoch < self.max_epoch {
                    // Stale epoch: a reissue from before the latest
                    // controller restart. Applying it could collide with
                    // the newest epoch's own reissue for the same op id
                    // (e.g. two exports keyed by one op), so fence it out.
                    ctx.counters().inc("nf.fenced_stale");
                } else if !self.fence_seen.insert((epoch, op.0, seq)) {
                    // Exact duplicate of an already-applied reissue.
                    ctx.counters().inc("nf.fenced_dup");
                    // Point event for the happens-before oracle: unlike
                    // the threaded runtime's wire envelope, the sim fence
                    // carries the op id, so the oracle can pin the drop
                    // to its op directly.
                    self.tel.event_at(
                        "fence.dup",
                        ctx.now().as_nanos(),
                        Some(format!("op={} epoch={epoch} seq={seq}", op.0)),
                    );
                } else {
                    self.max_epoch = epoch;
                    self.handle_sb(ctx, op, call);
                }
            }
            Msg::P2pChunks { op, xfer, last, chunks } => self.on_p2p_chunks(ctx, op, xfer, last, chunks),
            Msg::Timer { op, tag } if tag == TAG_EXPORT_STEP => self.export_step(ctx, op),
            other => debug_assert!(false, "nf {}: unexpected message {other:?}", self.name),
        }
        self.flush_logs(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_nfs::AssetMonitor;
    use opennf_packet::{FlowKey, TcpFlags};
    use opennf_sim::Engine;

    /// Records controller-bound messages.
    struct CtrlStub {
        chunks: Vec<(bool, usize)>, // (last, size)
        imported: u64,
        events: u64,
        done: u64,
        bulk: Vec<usize>, // bulk reply chunk counts
        last_ack_time: u64,
    }

    impl CtrlStub {
        fn new() -> Self {
            CtrlStub { chunks: Vec::new(), imported: 0, events: 0, done: 0, bulk: Vec::new(), last_ack_time: 0 }
        }
    }

    impl Node<Msg> for CtrlStub {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _f: NodeId, msg: Msg) {
            self.last_ack_time = ctx.now().as_nanos();
            match msg {
                Msg::SbAck { reply, .. } => match reply {
                    SbReply::ChunkStream { chunk, last } => {
                        self.chunks.push((last, chunk.map(|c| c.len()).unwrap_or(0)))
                    }
                    SbReply::ChunkImported { .. } => self.imported += 1,
                    SbReply::Chunks { chunks } => self.bulk.push(chunks.len()),
                    SbReply::Done => self.done += 1,
                    SbReply::TransferExported { .. } | SbReply::TransferDone { .. } => {}
                },
                Msg::Event(_) => self.events += 1,
                _ => {}
            }
        }
    }

    fn syn(uid: u64, sport: u16) -> Packet {
        Packet::builder(
            uid,
            FlowKey::tcp("10.0.0.1".parse().unwrap(), sport, "1.1.1.1".parse().unwrap(), 80),
        )
        .flags(TcpFlags::SYN)
        .ingress_ns(0)
        .build()
    }

    fn build() -> (Engine<Msg>, NodeId, NodeId) {
        let mut eng: Engine<Msg> = Engine::new(1);
        let ctrl = eng.add_node(Box::new(CtrlStub::new()));
        let nf = NfNode::new("m1", Box::new(AssetMonitor::new()), NetConfig::default(), ctrl);
        let nfid = eng.add_node(Box::new(nf));
        (eng, nfid, ctrl)
    }

    #[test]
    fn packets_build_state_and_records() {
        let (mut eng, nf, _) = build();
        for i in 0..5 {
            eng.inject(nf, Dur::micros(i * 10), Msg::Packet(syn(i, 4000 + i as u16)));
        }
        eng.run_to_completion(1000);
        let n: &NfNode = eng.node(nf);
        assert_eq!(n.records.len(), 5);
        assert_eq!(n.nf_as::<AssetMonitor>().conn_count(), 5);
        // Packets 10us apart but processing takes 120us: queueing delays.
        assert!(n.records[4].done_ns >= 5 * 120_000);
    }

    #[test]
    fn streamed_export_delivers_chunks_with_last_marker() {
        let (mut eng, nf, ctrl) = build();
        for i in 0..3 {
            eng.inject(nf, Dur::ZERO, Msg::Packet(syn(i, 4000 + i as u16)));
        }
        eng.run_until(opennf_sim::Time::ZERO + Dur::millis(1));
        eng.inject(
            nf,
            Dur::ZERO,
            Msg::Sb {
                op: OpId(1),
                call: SbCall::GetPerflow { filter: Filter::any(), stream: true, late_lock: false },
            },
        );
        eng.run_to_completion(1000);
        let c: &CtrlStub = eng.node(ctrl);
        assert_eq!(c.chunks.len(), 4, "3 data chunks + end-of-stream marker");
        assert_eq!(c.chunks.iter().filter(|(last, _)| *last).count(), 1);
        assert_eq!(*c.chunks.last().unwrap(), (true, 0), "explicit end marker");
        // ~200B chunks cost ≈178us each to serialize: total ≥ 500us.
        assert!(c.last_ack_time > 500_000);
    }

    #[test]
    fn bulk_export_returns_one_reply() {
        let (mut eng, nf, ctrl) = build();
        for i in 0..3 {
            eng.inject(nf, Dur::ZERO, Msg::Packet(syn(i, 4000 + i as u16)));
        }
        eng.run_until(opennf_sim::Time::ZERO + Dur::millis(1));
        eng.inject(
            nf,
            Dur::ZERO,
            Msg::Sb {
                op: OpId(1),
                call: SbCall::GetPerflow { filter: Filter::any(), stream: false, late_lock: false },
            },
        );
        eng.run_to_completion(1000);
        let c: &CtrlStub = eng.node(ctrl);
        assert_eq!(c.bulk, vec![3]);
        assert!(c.chunks.is_empty());
    }

    #[test]
    fn empty_streamed_export_closes_stream() {
        let (mut eng, nf, ctrl) = build();
        eng.inject(
            nf,
            Dur::ZERO,
            Msg::Sb {
                op: OpId(1),
                call: SbCall::GetPerflow { filter: Filter::any(), stream: true, late_lock: false },
            },
        );
        eng.run_to_completion(100);
        let c: &CtrlStub = eng.node(ctrl);
        assert_eq!(c.chunks, vec![(true, 0)]);
    }

    #[test]
    fn late_lock_drops_and_events_only_after_flow_locked() {
        let (mut eng, nf, ctrl) = build();
        for i in 0..2 {
            eng.inject(nf, Dur::ZERO, Msg::Packet(syn(i, 4000 + i as u16)));
        }
        eng.run_until(opennf_sim::Time::ZERO + Dur::millis(1));
        eng.inject(
            nf,
            Dur::ZERO,
            Msg::Sb {
                op: OpId(1),
                call: SbCall::GetPerflow { filter: Filter::any(), stream: true, late_lock: true },
            },
        );
        // A packet for flow 4000 arriving immediately: flow 0's chunk is
        // serializing (locked); packet raises a drop event.
        eng.inject(nf, Dur::micros(10), Msg::Packet(syn(10, 4000)));
        eng.run_to_completion(1000);
        let c: &CtrlStub = eng.node(ctrl);
        assert_eq!(c.events, 1, "locked flow raised an event");
        let n: &NfNode = eng.node(nf);
        assert_eq!(n.harness().drop_count(), 1);
    }

    #[test]
    fn put_chunk_imports_and_acks() {
        let (mut eng, nf, ctrl) = build();
        // Produce a chunk from a sibling monitor.
        let mut donor = AssetMonitor::new();
        use opennf_nf::NetworkFunction as _;
        donor.process_packet(&syn(1, 4000)).unwrap();
        let chunks = donor.get_perflow(&Filter::any());
        assert_eq!(chunks.len(), 1);
        eng.inject(nf, Dur::ZERO, Msg::Sb { op: OpId(2), call: SbCall::PutChunk { chunk: chunks[0].clone() } });
        eng.run_to_completion(100);
        let c: &CtrlStub = eng.node(ctrl);
        assert_eq!(c.imported, 1);
        let n: &NfNode = eng.node(nf);
        assert_eq!(n.nf_as::<AssetMonitor>().conn_count(), 1);
        assert!(n.bytes_imported > 0);
    }

    #[test]
    fn streamed_export_relists_flows_created_mid_export() {
        // A flow that appears while the export is serializing must still
        // ship (the NF "furnishes all state matching a filter", §3).
        let (mut eng, nf, ctrl) = build();
        for i in 0..3 {
            eng.inject(nf, Dur::ZERO, Msg::Packet(syn(i, 4000 + i as u16)));
        }
        eng.run_until(opennf_sim::Time::ZERO + Dur::millis(1));
        eng.inject(
            nf,
            Dur::ZERO,
            Msg::Sb {
                op: OpId(1),
                call: SbCall::GetPerflow { filter: Filter::any(), stream: true, late_lock: false },
            },
        );
        // New flow lands while chunk 1 of 3 is still serializing (~178 µs
        // per chunk): it must be exported too.
        eng.inject(nf, Dur::micros(250), Msg::Packet(syn(99, 4999)));
        eng.run_to_completion(10_000);
        let c: &CtrlStub = eng.node(ctrl);
        let data_chunks = c.chunks.iter().filter(|(_, len)| *len > 0).count();
        assert_eq!(data_chunks, 4, "relisting picked up the mid-export flow");
    }

    #[test]
    fn disable_events_releases_buffered_in_order() {
        let (mut eng, nf, _) = build();
        let f = Filter::any();
        eng.inject(
            nf,
            Dur::ZERO,
            Msg::Sb { op: OpId(1), call: SbCall::EnableEvents { filter: f, action: opennf_nf::EventAction::Buffer } },
        );
        eng.inject(nf, Dur::micros(10), Msg::Packet(syn(1, 4000)));
        eng.inject(nf, Dur::micros(20), Msg::Packet(syn(2, 4001)));
        eng.inject(nf, Dur::millis(1), Msg::Sb { op: OpId(2), call: SbCall::DisableEvents { filter: f } });
        eng.run_to_completion(1000);
        let n: &NfNode = eng.node(nf);
        assert_eq!(n.processed_log(), &[1, 2]);
        assert!(n.records.iter().all(|r| r.from_buffer));
    }
}
