//! Every latency/cost constant of the testbed model, in one place.
//!
//! The paper's testbed is an OpenFlow-enabled HP ProCurve 6600 and four
//! mid-range Xeon servers on 1 Gbps links (§8). The constants below are
//! calibrated so the headline §8.1.1 numbers land near the paper's
//! (NG move of 500 PRADS flows ≈ 190 ms; LF adds ≈ 60 %; packet-out
//! throughput limits event replay at high packet rates) — see
//! EXPERIMENTS.md for the calibration table. Experiments vary these knobs
//! explicitly rather than relying on hidden defaults.

use opennf_sim::Dur;

/// Topology latencies and switch/controller costs.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Host → switch propagation + transmission.
    pub host_to_sw: Dur,
    /// Switch → NF instance (data path).
    pub sw_to_nf: Dur,
    /// Switch ↔ controller control channel (one way).
    pub sw_to_ctrl: Dur,
    /// Controller ↔ NF southbound channel (one way).
    pub ctrl_to_nf: Dur,
    /// Controller shard ↔ controller shard east-west channel (one way) —
    /// the inter-shard handoff/relay link of a sharded control plane.
    pub ctrl_to_ctrl: Dur,
    /// Time for a flow-mod to take effect after the switch receives it
    /// (hardware TCAM update; tens of ms on the ProCurve era switches).
    pub flow_mod_delay: Dur,
    /// Per-packet-out service time at the switch control plane — "the rate
    /// at which the packets contained in these events can be forwarded to
    /// PRADS2 becomes limited by the packet-out rate our OpenFlow switch
    /// can sustain" (§8.1.1).
    pub packet_out_service: Dur,
    /// Controller per-message processing cost.
    pub ctrl_per_msg: Dur,
    /// Controller per-byte processing cost (socket reads dominate, §8.3).
    pub ctrl_per_byte: Dur,
    /// Wire bandwidth for bulk state transfer, bytes/sec.
    pub bandwidth_bytes_per_sec: u64,
    /// Interval between counter polls during the order-preserving last-
    /// packet confirmation (§5.1.2 footnote 9).
    pub counter_poll: Dur,
    /// Give-up deadline for the order-preserving wait for a first packet
    /// from the switch: idle flows would otherwise stall the move forever.
    pub op_first_packet_timeout: Dur,
    /// Chunks larger than this bypass the controller CPU (their bytes
    /// stream peer-to-peer; only a small envelope is handled) — the §5.1.3
    /// footnote-10 optimization: "state chunks get transferred … via the
    /// controller in our current system, they can also happen peer to
    /// peer". Small control-plane chunks (PRADS/dummy, ~200 B) still pay
    /// the full controller cost, preserving the §8.3/Figure 13 behaviour.
    pub p2p_chunk_threshold: usize,
    /// Failure-handling knobs for northbound operations.
    pub op: OpConfig,
}

/// Timeout/retry policy for northbound operations. Each operation arms a
/// per-phase watchdog; when it fires, retryable phases (idempotent
/// southbound calls) are re-sent with exponential backoff up to
/// `sb_retries` times, and non-retryable phases abort the operation with
/// rollback (see `ops::move_op`).
#[derive(Debug, Clone, Copy)]
pub struct OpConfig {
    /// Watchdog deadline for each operation phase. Generous relative to
    /// the round-trip latencies so it only fires on genuine loss or
    /// failure.
    pub phase_timeout: Dur,
    /// How many times a timed-out retryable phase re-sends its southbound
    /// call before the operation aborts.
    pub sb_retries: u32,
    /// Extra delay added before the first retry; doubles on each
    /// subsequent retry.
    pub sb_retry_backoff: Dur,
    /// What a `share` does when its setup retries are exhausted. `false`
    /// (default): proceed degraded with whatever instances did ack.
    /// `true`: tear the share down — disable its event filters everywhere,
    /// drop the op, and report the out-of-sync instances in the abort.
    pub strict_share: bool,
}

impl Default for OpConfig {
    fn default() -> Self {
        OpConfig {
            phase_timeout: Dur::secs(2),
            sb_retries: 2,
            sb_retry_backoff: Dur::millis(50),
            strict_share: false,
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            host_to_sw: Dur::micros(100),
            sw_to_nf: Dur::micros(100),
            sw_to_ctrl: Dur::micros(250),
            ctrl_to_nf: Dur::micros(250),
            ctrl_to_ctrl: Dur::micros(200),
            flow_mod_delay: Dur::millis(40),
            packet_out_service: Dur::micros(150),
            ctrl_per_msg: Dur::micros(40),
            ctrl_per_byte: Dur::nanos(350),
            bandwidth_bytes_per_sec: 125_000_000, // 1 Gbps
            counter_poll: Dur::millis(15),
            op_first_packet_timeout: Dur::millis(500),
            p2p_chunk_threshold: 4096,
            op: OpConfig::default(),
        }
    }
}

impl NetConfig {
    /// Transmission delay for `bytes` on the control channel.
    pub fn transfer_time(&self, bytes: usize) -> Dur {
        Dur::nanos((bytes as u64).saturating_mul(1_000_000_000) / self.bandwidth_bytes_per_sec)
    }

    /// Controller service time for a message of `bytes`.
    pub fn ctrl_service(&self, bytes: usize) -> Dur {
        self.ctrl_per_msg + Dur::nanos(self.ctrl_per_byte.as_nanos() * bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales() {
        let c = NetConfig::default();
        assert_eq!(c.transfer_time(125_000_000), Dur::secs(1));
        assert_eq!(c.transfer_time(0), Dur::ZERO);
        assert!(c.transfer_time(1000) < Dur::micros(10));
    }

    #[test]
    fn ctrl_service_has_fixed_and_variable_parts() {
        let c = NetConfig::default();
        let small = c.ctrl_service(0);
        let big = c.ctrl_service(100_000);
        assert_eq!(small, c.ctrl_per_msg);
        assert!(big > small + Dur::millis(30), "100 KB ≈ 35 ms at 350 ns/B");
    }
}
