//! Scenario builder: the standard evaluation topology of Figure 4 —
//! traffic sources → one SDN switch → a set of NF instances, with the
//! controller attached to the switch — plus the metric helpers every
//! experiment shares.
//!
//! Multi-switch topologies generalize Figure 4 to a linear chain of
//! switches (`switches(n)`): hosts attach to the ingress switch, each NF
//! attaches to the switch chosen by `nf_at`, and inter-switch links are
//! trunk ports. The control plane can be sharded (`shards(k)`): each
//! shard's controller owns a contiguous run of switches and their NFs,
//! and cross-shard operations execute as a two-shard handoff over
//! east-west messages (see [`ControllerNode::configure_shard`]).
//!
//! Node id layout is backward compatible: ctrl₀=0, sw₀=1, instances
//! 2..2+n, hosts 2+n..2+n+h — then extra switches, then extra shard
//! controllers. Existing single-switch ids never shift.

use std::collections::{BTreeMap, HashMap};

use opennf_nf::NetworkFunction;
use opennf_packet::{Filter, Packet};
use opennf_sim::{Dur, Engine, FaultPlan, NodeId, Time};
use opennf_telemetry::Telemetry;
use opennf_util::Summary;

use crate::config::NetConfig;
use crate::controller::{ControlApp, ControllerNode, NoopApp};
use crate::guarantees::{path_consistency_violations, NfDelivery, Oracle, PathViolation};
use crate::msg::{Command, Msg};
use crate::nodes::host::HostNode;
use crate::nodes::nf_node::NfNode;
use crate::nodes::switch::SwitchNode;

/// Declarative description of a scenario.
pub struct ScenarioBuilder {
    cfg: NetConfig,
    seed: u64,
    app: Box<dyn ControlApp>,
    nfs: Vec<(&'static str, Box<dyn NetworkFunction>)>,
    /// Per-NF switch index (parallel to `nfs`).
    placements: Vec<usize>,
    schedules: Vec<Vec<(u64, Packet)>>,
    routes: Vec<(u16, Filter, usize)>,
    record_traffic: bool,
    fault_plan: Option<FaultPlan>,
    telemetry: Option<Telemetry>,
    /// Number of switches in the chain (1 = the classic Figure 4).
    switches: usize,
    /// Number of controller shards (1 = single controller).
    shards: usize,
    /// Op-admission policy applied to every controller (None = FIFO).
    sched_policy: Option<opennf_sched::SchedPolicy>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// Starts an empty scenario with default config.
    pub fn new() -> Self {
        ScenarioBuilder {
            cfg: NetConfig::default(),
            seed: 1,
            app: Box::new(NoopApp),
            nfs: Vec::new(),
            placements: Vec::new(),
            schedules: Vec::new(),
            routes: Vec::new(),
            record_traffic: false,
            fault_plan: None,
            telemetry: None,
            switches: 1,
            shards: 1,
            sched_policy: None,
        }
    }

    /// Routes northbound op commands through an [`opennf_sched`]
    /// admission policy on every controller (the default FIFO dispatches
    /// immediately, byte-identical to the pre-scheduler controller).
    pub fn sched_policy(mut self, policy: opennf_sched::SchedPolicy) -> Self {
        self.sched_policy = Some(policy);
        self
    }

    /// Overrides the network/cost configuration.
    pub fn config(mut self, cfg: NetConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Hosts a control application on the controller.
    pub fn app(mut self, app: Box<dyn ControlApp>) -> Self {
        self.app = app;
        self
    }

    /// Adds an NF instance attached to the ingress switch; returns `self`
    /// (instances are indexed in insertion order).
    pub fn nf(self, name: &'static str, nf: Box<dyn NetworkFunction>) -> Self {
        self.nf_at(name, nf, 0)
    }

    /// Adds an NF instance attached to switch `sw_idx` of the chain.
    pub fn nf_at(
        mut self,
        name: &'static str,
        nf: Box<dyn NetworkFunction>,
        sw_idx: usize,
    ) -> Self {
        self.nfs.push((name, nf));
        self.placements.push(sw_idx);
        self
    }

    /// Grows the topology to a linear chain of `n` switches (hosts on the
    /// first; place NFs with [`ScenarioBuilder::nf_at`]).
    pub fn switches(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one switch");
        self.switches = n;
        self
    }

    /// Shards the control plane into `k` controllers. Each shard owns a
    /// contiguous run of the switch chain (switch `i` belongs to shard
    /// `i·k/n`) and the NFs attached to those switches.
    pub fn shards(mut self, k: usize) -> Self {
        assert!(k >= 1, "at least one shard");
        self.shards = k;
        self
    }

    /// Adds a traffic source replaying `schedule` (sorted by time, ns).
    pub fn host(mut self, schedule: Vec<(u64, Packet)>) -> Self {
        self.schedules.push(schedule);
        self
    }

    /// Preinstalls a route: `filter` → instance `idx` at `priority`.
    pub fn route(mut self, priority: u16, filter: Filter, idx: usize) -> Self {
        self.routes.push((priority, filter, idx));
        self
    }

    /// Records every packet the switch forwards (inspect or dump via
    /// `scenario.switch().trace` after the run).
    pub fn record_traffic(mut self) -> Self {
        self.record_traffic = true;
        self
    }

    /// Shares a telemetry handle with the controller: keep a clone to read
    /// spans/metrics after the run (the controller otherwise creates its
    /// own private handle).
    pub fn telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = Some(tel);
        self
    }

    /// Injects failures from a deterministic [`FaultPlan`]. Node ids
    /// follow the fixed layout: controller=0, switch=1, then instances in
    /// insertion order, then hosts.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builds the engine and nodes.
    pub fn build(self) -> Scenario {
        let n_sw = self.switches;
        let n_shards = self.shards.min(n_sw);
        let n = self.nfs.len();
        let h = self.schedules.len();
        for p in &self.placements {
            assert!(*p < n_sw, "NF placed on switch {p} but only {n_sw} exist");
        }

        // Fixed id layout (backward compatible): ctrl₀=0, sw₀=1,
        // instances, hosts — then extra switches, then extra shard
        // controllers. All ids are precomputed because controllers,
        // switches, and NFs need each other's ids at construction.
        let sw_ids: Vec<NodeId> = (0..n_sw)
            .map(|s| if s == 0 { NodeId(1) } else { NodeId(2 + n + h + (s - 1)) })
            .collect();
        let ctrl_ids: Vec<NodeId> = (0..n_shards)
            .map(|k| if k == 0 { NodeId(0) } else { NodeId(2 + n + h + (n_sw - 1) + (k - 1)) })
            .collect();
        let inst_ids: Vec<NodeId> = (0..n).map(|i| NodeId(2 + i)).collect();
        let host_ids: Vec<NodeId> = (0..h).map(|i| NodeId(2 + n + i)).collect();

        // Ownership: switch s → shard s·k/n (contiguous runs); an NF
        // belongs to its switch's shard.
        let shard_of_switch = |s: usize| s * n_shards / n_sw;
        let inst_shard: HashMap<NodeId, usize> = inst_ids
            .iter()
            .enumerate()
            .map(|(i, id)| (*id, shard_of_switch(self.placements[i])))
            .collect();
        // Each shard's controller attaches to the first switch it owns.
        let primary_switch: Vec<NodeId> = (0..n_shards)
            .map(|k| {
                let s = (0..n_sw).find(|s| shard_of_switch(*s) == k).expect("shard owns a switch");
                sw_ids[s]
            })
            .collect();

        let mut engine: Engine<Msg> = Engine::new(self.seed);
        if let Some(plan) = self.fault_plan {
            engine.set_fault_plan(plan);
        }

        // A sharded control plane must share one telemetry handle so
        // spans from every shard merge into one trace.
        let shared_tel = if self.telemetry.is_some() || n_shards > 1 {
            Some(self.telemetry.clone().unwrap_or_else(Telemetry::manual))
        } else {
            None
        };

        let mut ctrl = ControllerNode::new(self.cfg, primary_switch[0], self.app);
        if let Some(tel) = &shared_tel {
            ctrl.set_telemetry(tel.clone());
        }
        assert_eq!(engine.add_node(Box::new(ctrl)), ctrl_ids[0]);

        let make_switch = |s: usize| {
            let shard = shard_of_switch(s);
            let mut ports = BTreeMap::new();
            let mut next_port = 1u16;
            for (i, id) in inst_ids.iter().enumerate() {
                if self.placements[i] == s {
                    ports.insert(next_port, *id);
                    next_port += 1;
                }
            }
            let trunk_left = (s > 0).then(|| {
                let p = next_port;
                ports.insert(p, sw_ids[s - 1]);
                next_port += 1;
                p
            });
            let trunk_right = (s + 1 < n_sw).then(|| {
                let p = next_port;
                ports.insert(p, sw_ids[s + 1]);
                p
            });
            let mut sw = SwitchNode::new(self.cfg, ctrl_ids[shard], ports);
            if let Some(p) = trunk_left {
                sw.mark_trunk(p);
            }
            if let Some(p) = trunk_right {
                sw.mark_trunk(p);
            }
            for (i, id) in inst_ids.iter().enumerate() {
                if self.placements[i] != s {
                    let port = if self.placements[i] < s {
                        trunk_left.expect("NF to the left needs a left trunk")
                    } else {
                        trunk_right.expect("NF to the right needs a right trunk")
                    };
                    sw.add_via(*id, port);
                }
            }
            if self.record_traffic && s == 0 {
                sw.trace = opennf_net::TraceRecorder::enabled();
            }
            // Every switch on the path carries every route and resolves
            // it through its own ports.
            for (prio, filter, idx) in &self.routes {
                sw.preinstall(*prio, *filter, &[inst_ids[*idx]]);
            }
            sw
        };

        assert_eq!(engine.add_node(Box::new(make_switch(0))), sw_ids[0]);
        for (i, (name, nf)) in self.nfs.into_iter().enumerate() {
            let shard = shard_of_switch(self.placements[i]);
            let mut node = NfNode::new(name, nf, self.cfg, ctrl_ids[shard]);
            if let Some(tel) = &shared_tel {
                node.set_telemetry(tel.clone());
            }
            assert_eq!(engine.add_node(Box::new(node)), inst_ids[i]);
        }
        for schedule in self.schedules {
            engine.add_node(Box::new(HostNode::new(sw_ids[0], self.cfg, schedule)));
        }
        for (s, id) in sw_ids.iter().enumerate().skip(1) {
            assert_eq!(engine.add_node(Box::new(make_switch(s))), *id);
        }
        for k in 1..n_shards {
            let mut c = ControllerNode::new(self.cfg, primary_switch[k], Box::new(NoopApp));
            if let Some(tel) = &shared_tel {
                c.set_telemetry(tel.clone());
            }
            assert_eq!(engine.add_node(Box::new(c)), ctrl_ids[k]);
        }

        // Configure sharding and mirror preinstalled routes into every
        // controller's shadow table (apps and strict shares consult it).
        let shadow: Vec<(u16, Filter, NodeId)> = self
            .routes
            .iter()
            .map(|(p, f, idx)| (*p, *f, inst_ids[*idx]))
            .collect();
        for (k, cid) in ctrl_ids.iter().enumerate() {
            let c: &mut ControllerNode = engine.node_mut(*cid);
            if n_sw > 1 || n_shards > 1 {
                c.configure_shard(k, ctrl_ids.clone(), sw_ids.clone(), inst_shard.clone());
            }
            if let Some(p) = self.sched_policy {
                c.set_sched_policy(p);
            }
            for (p, f, inst) in &shadow {
                c.seed_route(*p, *f, *inst);
            }
        }

        Scenario {
            engine,
            cfg: self.cfg,
            ctrl: ctrl_ids[0],
            sw: sw_ids[0],
            instances: inst_ids,
            hosts: host_ids,
            switch_ids: sw_ids,
            ctrls: ctrl_ids,
        }
    }
}

/// A built scenario: the engine plus the node handles and metric helpers.
pub struct Scenario {
    /// The simulation engine.
    pub engine: Engine<Msg>,
    /// Config in force.
    pub cfg: NetConfig,
    /// Controller node id.
    pub ctrl: NodeId,
    /// Switch node id.
    pub sw: NodeId,
    /// NF instance ids, in insertion order.
    pub instances: Vec<NodeId>,
    /// Host ids, in insertion order.
    pub hosts: Vec<NodeId>,
    /// Every switch in chain order (`switch_ids[0] == sw`).
    pub switch_ids: Vec<NodeId>,
    /// Every shard controller in shard order (`ctrls[0] == ctrl`).
    pub ctrls: Vec<NodeId>,
}

impl Scenario {
    /// Issues a northbound command at `at` (relative to now).
    pub fn issue_at(&mut self, at: Dur, cmd: Command) {
        self.engine.inject(self.ctrl, at, Msg::Command(cmd));
    }

    /// Issues a northbound command to a specific shard's controller.
    pub fn issue_at_shard(&mut self, shard: usize, at: Dur, cmd: Command) {
        self.engine.inject(self.ctrls[shard], at, Msg::Command(cmd));
    }

    /// Runs until `deadline` (absolute virtual time).
    pub fn run_until(&mut self, deadline: Time) {
        self.engine.run_until(deadline);
    }

    /// Runs until the event queue drains (guard: 50M events).
    pub fn run_to_completion(&mut self) {
        self.engine.run_to_completion(50_000_000);
    }

    /// The controller.
    pub fn controller(&self) -> &ControllerNode {
        self.engine.node(self.ctrl)
    }

    /// The run's telemetry handle (the controller's).
    pub fn telemetry(&self) -> Telemetry {
        self.controller().telemetry().clone()
    }

    /// The switch.
    pub fn switch(&self) -> &SwitchNode {
        self.engine.node(self.sw)
    }

    /// Switch `i` of the chain.
    pub fn switch_at(&self, i: usize) -> &SwitchNode {
        self.engine.node(self.switch_ids[i])
    }

    /// Shard `k`'s controller.
    pub fn controller_of(&self, shard: usize) -> &ControllerNode {
        self.engine.node(self.ctrls[shard])
    }

    /// Checks the path-consistency oracle over every switch's final-hop
    /// forwarding log against every shard's committed route flips: after
    /// a move commits, no packet that entered the network later may still
    /// be delivered to the old instance.
    pub fn path_violations(&self) -> Vec<PathViolation> {
        let logs: Vec<(NodeId, Vec<NfDelivery>)> = self
            .switch_ids
            .iter()
            .map(|id| {
                let sw: &SwitchNode = self.engine.node(*id);
                (*id, sw.nf_forward_log.clone())
            })
            .collect();
        let mut flips = Vec::new();
        for cid in &self.ctrls {
            let c: &ControllerNode = self.engine.node(*cid);
            flips.extend(c.route_flips.iter().cloned());
        }
        path_consistency_violations(&logs, &flips)
    }

    /// Instance `idx` as an [`NfNode`].
    pub fn nf(&self, idx: usize) -> &NfNode {
        self.engine.node(self.instances[idx])
    }

    /// Mutable instance access.
    pub fn nf_mut(&mut self, idx: usize) -> &mut NfNode {
        let id = self.instances[idx];
        self.engine.node_mut(id)
    }

    /// Total packets dropped across instances (silent + event drops).
    pub fn total_nf_drops(&self) -> usize {
        self.instances
            .iter()
            .map(|id| {
                let n: &NfNode = self.engine.node(*id);
                n.harness().drop_count()
            })
            .sum()
    }

    /// Builds the guarantee oracle from the switch log and every
    /// instance's processing records.
    pub fn oracle(&self) -> Oracle {
        let sw: &SwitchNode = self.engine.node(self.sw);
        let mut oracle = Oracle::new(&sw.forward_log);
        for id in &self.instances {
            let n: &NfNode = self.engine.node(*id);
            oracle.add_instance(n.records.iter().map(|r| (r.uid, r.done_ns)));
        }
        oracle
    }

    /// Uids whose loss/duplication is already accounted for: data-plane
    /// packets the fault layer dropped or duplicated (from the engine's
    /// fault record) plus every uid an aborted operation explicitly
    /// reported as unaccountable.
    pub fn accounted_uids(&self) -> Vec<u64> {
        let mut uids = Vec::new();
        if let Some(f) = self.engine.fault() {
            for (_, _, _, msg) in f.lost.iter().chain(f.duplicated.iter()) {
                if let Some(uid) = msg.packet_uid() {
                    uids.push(uid);
                }
            }
        }
        for cid in &self.ctrls {
            let c: &ControllerNode = self.engine.node(*cid);
            for report in &c.reports {
                uids.extend(report.abort_lost.iter().copied());
            }
        }
        uids.sort_unstable();
        uids.dedup();
        uids
    }

    /// Builds the oracle with every fault-explained packet excused — the
    /// exactly-once-or-accounted check for runs under a
    /// [`FaultPlan`].
    pub fn oracle_with_faults(&self) -> Oracle {
        let mut oracle = self.oracle();
        oracle.excuse(self.accounted_uids());
        oracle
    }

    /// Per-packet latency (done - ingress) statistics, split into packets
    /// that took a controller detour or buffer (`affected`) and those that
    /// did not (`baseline`). The Figure 10(b) metric is
    /// `affected - median(baseline)`.
    pub fn latency_split(&self) -> (Summary, Summary) {
        let mut affected = Summary::new();
        let mut baseline = Summary::new();
        for id in &self.instances {
            let n: &NfNode = self.engine.node(*id);
            for r in &n.records {
                let lat_ms = (r.done_ns.saturating_sub(r.ingress_ns)) as f64 / 1e6;
                if r.via_controller || r.from_buffer {
                    affected.record(lat_ms);
                } else {
                    baseline.record(lat_ms);
                }
            }
        }
        (affected, baseline)
    }

    /// Added latency (ms) for affected packets over the unaffected median:
    /// `(average, maximum, count)`.
    pub fn added_latency(&self) -> (f64, f64, usize) {
        let (affected, mut baseline) = self.latency_split();
        if affected.is_empty() {
            return (0.0, 0.0, 0);
        }
        let base = baseline.median();
        let avg = (affected.mean() - base).max(0.0);
        let max = (affected.max() - base).max(0.0);
        (avg, max, affected.count())
    }
}

