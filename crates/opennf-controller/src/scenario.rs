//! Scenario builder: the standard evaluation topology of Figure 4 —
//! traffic sources → one SDN switch → a set of NF instances, with the
//! controller attached to the switch — plus the metric helpers every
//! experiment shares.

use std::collections::BTreeMap;

use opennf_nf::NetworkFunction;
use opennf_packet::{Filter, Packet};
use opennf_sim::{Dur, Engine, FaultPlan, NodeId, Time};
use opennf_telemetry::Telemetry;
use opennf_util::Summary;

use crate::config::NetConfig;
use crate::controller::{ControlApp, ControllerNode, NoopApp};
use crate::guarantees::Oracle;
use crate::msg::{Command, Msg};
use crate::nodes::host::HostNode;
use crate::nodes::nf_node::NfNode;
use crate::nodes::switch::SwitchNode;

/// Declarative description of a scenario.
pub struct ScenarioBuilder {
    cfg: NetConfig,
    seed: u64,
    app: Box<dyn ControlApp>,
    nfs: Vec<(&'static str, Box<dyn NetworkFunction>)>,
    schedules: Vec<Vec<(u64, Packet)>>,
    routes: Vec<(u16, Filter, usize)>,
    record_traffic: bool,
    fault_plan: Option<FaultPlan>,
    telemetry: Option<Telemetry>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// Starts an empty scenario with default config.
    pub fn new() -> Self {
        ScenarioBuilder {
            cfg: NetConfig::default(),
            seed: 1,
            app: Box::new(NoopApp),
            nfs: Vec::new(),
            schedules: Vec::new(),
            routes: Vec::new(),
            record_traffic: false,
            fault_plan: None,
            telemetry: None,
        }
    }

    /// Overrides the network/cost configuration.
    pub fn config(mut self, cfg: NetConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Hosts a control application on the controller.
    pub fn app(mut self, app: Box<dyn ControlApp>) -> Self {
        self.app = app;
        self
    }

    /// Adds an NF instance; returns `self` (instances are indexed in
    /// insertion order).
    pub fn nf(mut self, name: &'static str, nf: Box<dyn NetworkFunction>) -> Self {
        self.nfs.push((name, nf));
        self
    }

    /// Adds a traffic source replaying `schedule` (sorted by time, ns).
    pub fn host(mut self, schedule: Vec<(u64, Packet)>) -> Self {
        self.schedules.push(schedule);
        self
    }

    /// Preinstalls a route: `filter` → instance `idx` at `priority`.
    pub fn route(mut self, priority: u16, filter: Filter, idx: usize) -> Self {
        self.routes.push((priority, filter, idx));
        self
    }

    /// Records every packet the switch forwards (inspect or dump via
    /// `scenario.switch().trace` after the run).
    pub fn record_traffic(mut self) -> Self {
        self.record_traffic = true;
        self
    }

    /// Shares a telemetry handle with the controller: keep a clone to read
    /// spans/metrics after the run (the controller otherwise creates its
    /// own private handle).
    pub fn telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = Some(tel);
        self
    }

    /// Injects failures from a deterministic [`FaultPlan`]. Node ids
    /// follow the fixed layout: controller=0, switch=1, then instances in
    /// insertion order, then hosts.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builds the engine and nodes.
    pub fn build(self) -> Scenario {
        // Fixed id layout: ctrl=0, sw=1, instances, then hosts.
        let ctrl_id = NodeId(0);
        let sw_id = NodeId(1);
        let n = self.nfs.len();
        let inst_ids: Vec<NodeId> = (0..n).map(|i| NodeId(2 + i)).collect();
        let host_ids: Vec<NodeId> = (0..self.schedules.len()).map(|i| NodeId(2 + n + i)).collect();

        let mut engine: Engine<Msg> = Engine::new(self.seed);
        if let Some(plan) = self.fault_plan {
            engine.set_fault_plan(plan);
        }
        let mut ctrl = ControllerNode::new(self.cfg, sw_id, self.app);
        if let Some(tel) = self.telemetry {
            ctrl.set_telemetry(tel);
        }
        assert_eq!(engine.add_node(Box::new(ctrl)), ctrl_id);

        let mut ports = BTreeMap::new();
        for (i, id) in inst_ids.iter().enumerate() {
            ports.insert(i as u16 + 1, *id);
        }
        let mut sw = SwitchNode::new(self.cfg, ctrl_id, ports);
        if self.record_traffic {
            sw.trace = opennf_net::TraceRecorder::enabled();
        }
        for (prio, filter, idx) in &self.routes {
            sw.preinstall(*prio, *filter, &[inst_ids[*idx]]);
        }
        assert_eq!(engine.add_node(Box::new(sw)), sw_id);

        for (name, nf) in self.nfs {
            let node = NfNode::new(name, nf, self.cfg, ctrl_id);
            engine.add_node(Box::new(node));
        }
        for schedule in self.schedules {
            engine.add_node(Box::new(HostNode::new(sw_id, self.cfg, schedule)));
        }

        // Mirror preinstalled routes into the controller's shadow table
        // (apps and strict shares consult it).
        let shadow: Vec<(u16, Filter, NodeId)> = self
            .routes
            .iter()
            .map(|(p, f, idx)| (*p, *f, inst_ids[*idx]))
            .collect();
        {
            let c: &mut ControllerNode = engine.node_mut(ctrl_id);
            for (p, f, inst) in shadow {
                c.seed_route(p, f, inst);
            }
        }

        Scenario { engine, cfg: self.cfg, ctrl: ctrl_id, sw: sw_id, instances: inst_ids, hosts: host_ids }
    }
}

/// A built scenario: the engine plus the node handles and metric helpers.
pub struct Scenario {
    /// The simulation engine.
    pub engine: Engine<Msg>,
    /// Config in force.
    pub cfg: NetConfig,
    /// Controller node id.
    pub ctrl: NodeId,
    /// Switch node id.
    pub sw: NodeId,
    /// NF instance ids, in insertion order.
    pub instances: Vec<NodeId>,
    /// Host ids, in insertion order.
    pub hosts: Vec<NodeId>,
}

impl Scenario {
    /// Issues a northbound command at `at` (relative to now).
    pub fn issue_at(&mut self, at: Dur, cmd: Command) {
        self.engine.inject(self.ctrl, at, Msg::Command(cmd));
    }

    /// Runs until `deadline` (absolute virtual time).
    pub fn run_until(&mut self, deadline: Time) {
        self.engine.run_until(deadline);
    }

    /// Runs until the event queue drains (guard: 50M events).
    pub fn run_to_completion(&mut self) {
        self.engine.run_to_completion(50_000_000);
    }

    /// The controller.
    pub fn controller(&self) -> &ControllerNode {
        self.engine.node(self.ctrl)
    }

    /// The run's telemetry handle (the controller's).
    pub fn telemetry(&self) -> Telemetry {
        self.controller().telemetry().clone()
    }

    /// The switch.
    pub fn switch(&self) -> &SwitchNode {
        self.engine.node(self.sw)
    }

    /// Instance `idx` as an [`NfNode`].
    pub fn nf(&self, idx: usize) -> &NfNode {
        self.engine.node(self.instances[idx])
    }

    /// Mutable instance access.
    pub fn nf_mut(&mut self, idx: usize) -> &mut NfNode {
        let id = self.instances[idx];
        self.engine.node_mut(id)
    }

    /// Total packets dropped across instances (silent + event drops).
    pub fn total_nf_drops(&self) -> usize {
        self.instances
            .iter()
            .map(|id| {
                let n: &NfNode = self.engine.node(*id);
                n.harness().drop_count()
            })
            .sum()
    }

    /// Builds the guarantee oracle from the switch log and every
    /// instance's processing records.
    pub fn oracle(&self) -> Oracle {
        let sw: &SwitchNode = self.engine.node(self.sw);
        let mut oracle = Oracle::new(&sw.forward_log);
        for id in &self.instances {
            let n: &NfNode = self.engine.node(*id);
            oracle.add_instance(n.records.iter().map(|r| (r.uid, r.done_ns)));
        }
        oracle
    }

    /// Uids whose loss/duplication is already accounted for: data-plane
    /// packets the fault layer dropped or duplicated (from the engine's
    /// fault record) plus every uid an aborted operation explicitly
    /// reported as unaccountable.
    pub fn accounted_uids(&self) -> Vec<u64> {
        let mut uids = Vec::new();
        if let Some(f) = self.engine.fault() {
            for (_, _, _, msg) in f.lost.iter().chain(f.duplicated.iter()) {
                if let Some(uid) = msg.packet_uid() {
                    uids.push(uid);
                }
            }
        }
        for report in &self.controller().reports {
            uids.extend(report.abort_lost.iter().copied());
        }
        uids.sort_unstable();
        uids.dedup();
        uids
    }

    /// Builds the oracle with every fault-explained packet excused — the
    /// exactly-once-or-accounted check for runs under a
    /// [`FaultPlan`].
    pub fn oracle_with_faults(&self) -> Oracle {
        let mut oracle = self.oracle();
        oracle.excuse(self.accounted_uids());
        oracle
    }

    /// Per-packet latency (done - ingress) statistics, split into packets
    /// that took a controller detour or buffer (`affected`) and those that
    /// did not (`baseline`). The Figure 10(b) metric is
    /// `affected - median(baseline)`.
    pub fn latency_split(&self) -> (Summary, Summary) {
        let mut affected = Summary::new();
        let mut baseline = Summary::new();
        for id in &self.instances {
            let n: &NfNode = self.engine.node(*id);
            for r in &n.records {
                let lat_ms = (r.done_ns.saturating_sub(r.ingress_ns)) as f64 / 1e6;
                if r.via_controller || r.from_buffer {
                    affected.record(lat_ms);
                } else {
                    baseline.record(lat_ms);
                }
            }
        }
        (affected, baseline)
    }

    /// Added latency (ms) for affected packets over the unaffected median:
    /// `(average, maximum, count)`.
    pub fn added_latency(&self) -> (f64, f64, usize) {
        let (affected, mut baseline) = self.latency_split();
        if affected.is_empty() {
            return (0.0, 0.0, 0);
        }
        let base = baseline.median();
        let avg = (affected.mean() - base).max(0.0);
        let max = (affected.max() - base).max(0.0);
        (avg, max, affected.count())
    }
}

