//! The `move` operation (§5.1): no-guarantee, loss-free, and loss-free +
//! order-preserving variants, with the parallelize (PL) and early-release /
//! late-locking (ER) optimizations of §5.1.3. The loss-free +
//! order-preserving sequence follows Figure 6 line by line, including the
//! two-phase forwarding update and the counter check of footnote 9.

use std::collections::{HashMap, HashSet, VecDeque};

use opennf_net::RuleId;
use opennf_nf::{Chunk, EventAction, NfEvent, Scope};
use opennf_packet::{Filter, FlowId, Packet};
use opennf_sim::{Dur, NodeId};
use opennf_telemetry::SpanId;

use crate::journal::JournalPhase;
use crate::msg::{Msg, MoveProps, MoveVariant, OpId, SbCall, SbReply, ScopeSet};
use crate::ops::report::OpReport;
use crate::ops::OpCtx;

/// Timer tags.
const TAG_FIRST_PKT_TIMEOUT: u32 = 10;
const TAG_COUNTER_POLL: u32 = 11;
/// Watchdog timer tags: high bits mark the watchdog, low 16 bits carry a
/// generation number so a timer armed for an earlier phase is ignored
/// once the op has moved on.
const TAG_WATCHDOG_BASE: u32 = 0x57A0_0000;
const TAG_WATCHDOG_MASK: u32 = 0xFFFF_0000;

/// FlowMod tags.
const FM_ROUTE: u32 = 1;
const FM_OP_LOW: u32 = 2;
const FM_OP_HIGH: u32 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Multi,
    Per,
    All,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the initial enableEvents / drop-filter ack.
    Arming,
    /// ER only: transfer drained; installing the *global* drop-event
    /// filter at the source before a catch-up export round. Late-locking
    /// only froze flows that existed when the export was listed; flows
    /// created mid-move must be frozen and shipped too, or the source
    /// would retain state and (for OP) the last-packet wait could hang on
    /// events an unlocked flow never raises.
    Sealing,
    /// A stage's export/import is in flight.
    Transferring,
    /// NG/LF: route flow-mod sent, waiting for it to apply.
    RouteUpdate,
    /// OP: waiting for dst `enableEvents(filter, BUFFER)` ack (Fig. 6 l.22).
    OpEnableDstBuffer,
    /// OP: low-priority `{src, ctrl}` rule sent (l.23).
    OpPhase1,
    /// OP: waiting for ≥1 packet from the switch (l.24).
    OpAwaitFirstPkt,
    /// OP: high-priority `dst` rule sent (l.25).
    OpPhase2,
    /// OP: confirming via counters that the last packet reached us (fn. 9).
    OpDrain,
    /// OP: waiting for src's event for the last packet (l.26 first half).
    OpAwaitSrcLast,
    /// OP: waiting for dst's event for the last packet (l.26 second half).
    OpAwaitDstLast,
    /// OP: dst `disableEvents` sent (l.27).
    OpDisablingDst,
    /// Finished.
    Done,
}

/// One in-flight `move`.
pub struct MoveOp {
    /// Operation id.
    pub id: OpId,
    src: NodeId,
    dst: NodeId,
    filter: Filter,
    props: MoveProps,
    /// Priorities allocated for this op's rules (low, high).
    prio: (u16, u16),
    phase: Phase,
    stages: VecDeque<Stage>,
    cur_stage: Option<Stage>,
    export_done: bool,
    pending_imports: usize,
    pending_acks: usize,
    exported_ids: Vec<FlowId>,
    /// Event packets held while `shouldBufferEvents` (Fig. 6 l.2-3), in
    /// arrival order.
    buffered: Vec<Packet>,
    /// ER: flows whose chunk has been imported; their events flow through.
    released: HashSet<FlowId>,
    /// ER: per-flow event buffers.
    per_flow_buf: HashMap<FlowId, Vec<Packet>>,
    flushed: bool,
    /// ER: the global source lock has been installed (catch-up round ran).
    sealed: bool,
    /// ER: stage to repeat under the global lock.
    seal_stage: Option<Stage>,
    /// Outstanding flow-mod confirmations for the last forwarding update.
    /// Multi-switch topologies fan the same flow-mod to every switch on
    /// the path; the op advances only once all of them have applied it,
    /// so no switch can still forward by a stale rule after the op moves
    /// on. Flow-mod phases are strictly sequential, so one counter
    /// suffices.
    fm_pending: usize,
    // Order-preserving bookkeeping.
    low_rule: Option<RuleId>,
    pkt_ins: u64,
    last_pktin: Option<u64>,
    forwarded_src_uids: HashSet<u64>,
    dst_event_uids: HashSet<u64>,
    /// Every packet-in uid seen in the OP window; an abort accounts for
    /// the ones never confirmed via a src or dst event.
    pktin_uids: HashSet<u64>,
    // P2P bulk transfer (footnote 10).
    /// Current transfer round; bumped per retry so stale acks and
    /// straggler batches are distinguishable.
    p2p_xfer: u32,
    /// Flows the source reported exported, in serialization order,
    /// cumulative across rounds (with a set mirror for O(1) membership).
    p2p_exported: Vec<FlowId>,
    p2p_exported_set: HashSet<FlowId>,
    /// The destination's latest cumulative imported set.
    p2p_imported: Vec<FlowId>,
    /// Round bookkeeping: both acks (src export, dst import) must land
    /// before the round reconciles.
    p2p_round_exported: bool,
    p2p_round_done: bool,
    /// Transfer retry budget (separate from the southbound-ack budget).
    p2p_retries_left: u32,
    // Failure handling.
    /// Every chunk shipped to the destination, retained so an abort can
    /// re-import it at the source.
    moved_chunks: Vec<Chunk>,
    /// Generation of the currently armed phase watchdog; timers carrying
    /// an older generation are stale and ignored.
    watchdog_gen: u16,
    /// Southbound re-sends left in the current phase.
    retries_left: u32,
    /// Delay before the next re-send; doubles each retry.
    backoff: Dur,
    /// Set on a pre-flush abort: the route still points at the source and
    /// the controller must forget the move's shadow routing entry.
    route_reverted: bool,
    /// The op's outcome report.
    pub report: OpReport,
    /// Phase boundaries crossed since the controller last drained this
    /// list into the write-ahead journal.
    pub jlog: Vec<JournalPhase>,
    /// Set when the report has been collected; the op then lingers only to
    /// forward late events until cleanup.
    pub reported: bool,
    // Telemetry spans. The five phases tile the op disjointly (export →
    // transfer → import → flush → fwd_update), so their durations sum to
    // at most the report's total and the begin order matches the threaded
    // runtime's trace record for record.
    sp_export: Option<SpanId>,
    sp_transfer: Option<SpanId>,
    sp_import: Option<SpanId>,
    sp_fwd: Option<SpanId>,
    /// Per-op root span (named exactly `move`, `op=<id>` arg); the phase
    /// spans above are its children so the trace analyzer can group
    /// interleaved ops by parentage.
    sp_root: Option<SpanId>,
}

impl MoveOp {
    /// Creates the op; call [`MoveOp::start`] next.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: OpId,
        src: NodeId,
        dst: NodeId,
        filter: Filter,
        scope: ScopeSet,
        props: MoveProps,
        prio: (u16, u16),
        now_ns: u64,
    ) -> Self {
        assert!(
            !(props.early_release && scope.per_flow && scope.multi_flow),
            "ER cannot be applied to a move involving both per-flow and multi-flow state (§5.1.3)"
        );
        assert!(
            !(props.p2p && props.early_release),
            "P2P composes with PL, not ER: late-locking needs the controller to see every chunk"
        );
        let mut stages = VecDeque::new();
        // Multi-flow state first (applications are told to provide
        // multi-flow state before per-flow processing resumes, §5.2).
        if scope.multi_flow {
            stages.push_back(Stage::Multi);
        }
        if scope.per_flow {
            stages.push_back(Stage::Per);
        }
        if scope.all_flows {
            stages.push_back(Stage::All);
        }
        let kind = format!(
            "move[{}{}{}{}]",
            match props.variant {
                MoveVariant::NoGuarantee => "NG",
                MoveVariant::LossFree => "LF",
                MoveVariant::LossFreeOrderPreserving => "LF+OP",
            },
            if props.parallel { " PL" } else { "" },
            if props.early_release { "+ER" } else { "" },
            if props.p2p { "+P2P" } else { "" },
        );
        MoveOp {
            id,
            src,
            dst,
            filter,
            props,
            prio,
            phase: Phase::Arming,
            stages,
            cur_stage: None,
            export_done: false,
            pending_imports: 0,
            pending_acks: 0,
            exported_ids: Vec::new(),
            buffered: Vec::new(),
            released: HashSet::new(),
            per_flow_buf: HashMap::new(),
            flushed: false,
            sealed: false,
            seal_stage: None,
            fm_pending: 0,
            low_rule: None,
            pkt_ins: 0,
            last_pktin: None,
            forwarded_src_uids: HashSet::new(),
            dst_event_uids: HashSet::new(),
            pktin_uids: HashSet::new(),
            p2p_xfer: 0,
            p2p_exported: Vec::new(),
            p2p_exported_set: HashSet::new(),
            p2p_imported: Vec::new(),
            p2p_round_exported: false,
            p2p_round_done: false,
            p2p_retries_left: 0,
            moved_chunks: Vec::new(),
            watchdog_gen: 0,
            retries_left: 0,
            backoff: Dur::ZERO,
            route_reverted: false,
            report: OpReport::new(id, kind, now_ns),
            jlog: Vec::new(),
            reported: false,
            sp_export: None,
            sp_transfer: None,
            sp_import: None,
            sp_fwd: None,
            sp_root: None,
        }
    }

    /// The first export for this op is complete: close the export span and
    /// open the transfer span (later stages and P2P rounds reuse the
    /// flag without touching the spans).
    fn mark_export_done(&mut self, o: &mut OpCtx<'_, '_>) {
        self.export_done = true;
        if let Some(s) = self.sp_export.take() {
            o.span_end(s);
            self.sp_transfer = Some(o.span_begin_under(self.sp_root, "move.transfer"));
            self.jlog.push(JournalPhase::ExportDone);
        }
    }

    /// First confirmation from the far side after the export finished:
    /// the wire transfer is over, the remaining waits are imports.
    fn mark_transfer_ack(&mut self, o: &mut OpCtx<'_, '_>) {
        if self.export_done {
            if let Some(s) = self.sp_transfer.take() {
                o.span_end(s);
                self.sp_import = Some(o.span_begin_under(self.sp_root, "move.import"));
                self.jlog.push(JournalPhase::Transferred);
            }
        }
    }

    /// Closes whatever phase spans are still open (abort path).
    fn close_spans(&mut self, o: &mut OpCtx<'_, '_>) {
        for s in [
            self.sp_export.take(),
            self.sp_transfer.take(),
            self.sp_import.take(),
            self.sp_fwd.take(),
            self.sp_root.take(),
        ]
        .into_iter()
        .flatten()
        {
            o.span_end(s);
        }
    }

    /// True once the move has finished (it may linger to forward late
    /// events from packets that were in flight toward the source).
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Source instance.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination instance.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The flows being moved.
    pub fn filter(&self) -> &Filter {
        &self.filter
    }

    /// True if the move aborted before the route changed: traffic still
    /// flows to the source, so the controller must drop the shadow
    /// routing entry it recorded for this move.
    pub fn route_reverted(&self) -> bool {
        self.route_reverted
    }

    /// The `(priority, filter, dst)` shadow routing entry the controller
    /// recorded for this move.
    pub fn shadow_key(&self) -> (u16, Filter, NodeId) {
        (self.prio.1, self.filter, self.dst)
    }

    /// The event filters this op wants installed at `inst` right now —
    /// the controller's restart re-synchronization consults this. Only the
    /// source's drop filter is claimed: a completed (lingering) or aborted
    /// move wants nothing, which is exactly what clears a crash-stale
    /// filter, and a destination buffer filter is never re-claimed (a
    /// restarted destination lost its buffer; buffering anew could only
    /// wedge packets).
    pub fn desired_filters(&self, inst: NodeId) -> Vec<(Filter, EventAction)> {
        if self.reported
            || inst != self.src
            || matches!(self.props.variant, MoveVariant::NoGuarantee)
        {
            return Vec::new();
        }
        vec![(self.filter, EventAction::Drop)]
    }

    /// Enters `phase`: resets the retry budget and arms a fresh watchdog.
    fn enter(&mut self, o: &mut OpCtx<'_, '_>, phase: Phase) {
        self.phase = phase;
        self.retries_left = o.cfg.op.sb_retries;
        self.backoff = o.cfg.op.sb_retry_backoff;
        self.arm_watchdog(o);
    }

    fn arm_watchdog(&mut self, o: &mut OpCtx<'_, '_>) {
        self.rearm_after(o, Dur::ZERO);
    }

    fn rearm_after(&mut self, o: &mut OpCtx<'_, '_>, extra: Dur) {
        self.watchdog_gen = self.watchdog_gen.wrapping_add(1);
        o.timer(
            self.id,
            TAG_WATCHDOG_BASE | self.watchdog_gen as u32,
            o.cfg.op.phase_timeout + extra,
        );
    }

    /// Invalidates any pending watchdog without arming a new one (used
    /// for phases that have their own progress timer).
    fn disarm_watchdog(&mut self) {
        self.watchdog_gen = self.watchdog_gen.wrapping_add(1);
    }

    /// The (target, call) pair a retryable phase is waiting on; re-sent
    /// verbatim on retry (all four calls are idempotent filter updates).
    fn phase_call(&self) -> (NodeId, SbCall) {
        match self.phase {
            Phase::Arming => match self.props.variant {
                MoveVariant::NoGuarantee => {
                    (self.src, SbCall::AddDropFilter { filter: self.filter })
                }
                _ => (
                    self.src,
                    SbCall::EnableEvents { filter: self.filter, action: EventAction::Drop },
                ),
            },
            Phase::Sealing => (
                self.src,
                SbCall::EnableEvents { filter: self.filter, action: EventAction::Drop },
            ),
            Phase::OpEnableDstBuffer => (
                self.dst,
                SbCall::EnableEvents { filter: self.filter, action: EventAction::Buffer },
            ),
            Phase::OpDisablingDst => {
                (self.dst, SbCall::DisableEvents { filter: self.filter })
            }
            _ => unreachable!("phase_call is only defined for retryable phases"),
        }
    }

    /// The ingress switch — the first switch on every flow's path, and
    /// therefore the only one that punts packet-ins and whose low-rule
    /// counters decide the order-preserving drain check.
    fn ingress(o: &OpCtx<'_, '_>) -> NodeId {
        o.switches.first().copied().unwrap_or(o.sw)
    }

    /// Fans a forwarding update to every switch on the flow's path. Each
    /// switch resolves the same `to_nodes` through its own ports (local
    /// attach or trunk toward the owner), so one logical rule covers the
    /// whole path; `to_controller` punts only at the ingress switch so a
    /// packet produces exactly one packet-in. Any wait on confirmation is
    /// gated on *all* switches acking (`fm_pending`).
    fn send_flow_mod(
        &mut self,
        o: &mut OpCtx<'_, '_>,
        tag: u32,
        priority: u16,
        to_nodes: Vec<NodeId>,
        to_controller: bool,
    ) {
        let switches: Vec<NodeId> = o.switches.to_vec();
        self.fm_pending = switches.len();
        for (i, sw) in switches.into_iter().enumerate() {
            o.to_switch_at(
                sw,
                Msg::FlowMod {
                    op: self.id,
                    tag,
                    priority,
                    filter: self.filter,
                    to_nodes: to_nodes.clone(),
                    to_controller: to_controller && i == 0,
                },
            );
        }
    }

    /// Re-sends the flow-mod a switch-wait phase is blocked on.
    fn resend_flow_mod(&mut self, o: &mut OpCtx<'_, '_>) {
        let (tag, priority, to_nodes, to_controller) = match self.phase {
            Phase::RouteUpdate => (FM_ROUTE, self.prio.1, vec![self.dst], false),
            Phase::OpPhase1 => (FM_OP_LOW, self.prio.0, vec![self.src], true),
            _ => (FM_OP_HIGH, self.prio.1, vec![self.dst], false),
        };
        self.send_flow_mod(o, tag, priority, to_nodes, to_controller);
    }

    /// The phase watchdog fired: retry if the phase is retryable and the
    /// budget allows, otherwise abort. Returns true when the op finishes.
    fn on_watchdog(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        match self.phase {
            Phase::Arming | Phase::Sealing | Phase::OpEnableDstBuffer | Phase::OpDisablingDst => {
                let (target, call) = self.phase_call();
                if self.retries_left > 0 {
                    self.retries_left -= 1;
                    self.report.retries += 1;
                    let backoff = self.backoff;
                    self.backoff = self.backoff + self.backoff;
                    o.sb_after(target, self.id, call, backoff);
                    self.rearm_after(o, backoff);
                    false
                } else {
                    let reason = format!(
                        "{:?}: southbound call unacknowledged after {} retries",
                        self.phase, o.cfg.op.sb_retries
                    );
                    if self.flushed {
                        self.abort_forward(o, reason, Some(target))
                    } else {
                        self.abort_rollback(o, reason, Some(target))
                    }
                }
            }
            Phase::Transferring => {
                if self.props.p2p && self.cur_stage == Some(Stage::Per) {
                    // The direct transfer stalled (a chunk batch or a summary
                    // ack went missing); the source kept its copy, so a fresh
                    // round is safe.
                    let missing = self.p2p_missing();
                    return self.p2p_retry(o, missing);
                }
                let blame = if self.export_done { self.dst } else { self.src };
                self.abort_rollback(
                    o,
                    "Transferring: state transfer stalled past the phase timeout".into(),
                    Some(blame),
                )
            }
            Phase::RouteUpdate | Phase::OpPhase1 | Phase::OpPhase2 => {
                if self.retries_left > 0 {
                    self.retries_left -= 1;
                    self.report.retries += 1;
                    self.resend_flow_mod(o);
                    self.arm_watchdog(o);
                    false
                } else {
                    let reason = format!("{:?}: flow-mod never confirmed", self.phase);
                    self.abort_forward(o, reason, None)
                }
            }
            Phase::OpDrain | Phase::OpAwaitSrcLast | Phase::OpAwaitDstLast => {
                let reason = format!("{:?}: ordering wait timed out", self.phase);
                self.abort_forward(o, reason, None)
            }
            // OpAwaitFirstPkt has its own progress timer; Done is over.
            Phase::OpAwaitFirstPkt | Phase::Done => false,
        }
    }

    /// Aborts before the route changed (arming, transfer, or sealing
    /// failed). Restores shipped chunks at the source, deletes the copies
    /// at the destination, replays every buffered event back through the
    /// source (marked `do_not_buffer` + `do_not_drop` so they are
    /// processed exactly once), and removes the move's filters. The route
    /// never left the source, so afterwards the network behaves as if the
    /// move had not been attempted.
    fn abort_rollback(
        &mut self,
        o: &mut OpCtx<'_, '_>,
        reason: String,
        blame: Option<NodeId>,
    ) -> bool {
        if self.props.p2p && self.p2p_xfer > 0 && !self.export_done {
            // Tear down the direct transfer: the destination deletes whatever
            // it imported and tombstones the round, so straggler batches
            // still in flight on the src → dst link cannot resurrect the
            // state. Copy-then-delete means the source still holds every
            // flow (the DelPerflow only goes out after full confirmation);
            // record which transfers were cut off mid-flight. (If
            // `export_done` the rounds reconciled clean and the source may
            // already have deleted — then the destination's copy is the only
            // one and must survive the abort.)
            o.sb(
                self.dst,
                self.id,
                SbCall::AbortTransfer {
                    flow_ids: self.p2p_imported.clone(),
                    xfer: self.p2p_xfer,
                },
            );
            self.report.p2p_inflight = self.p2p_missing();
        }
        let mut per = Vec::new();
        let mut multi = Vec::new();
        let mut all = Vec::new();
        for c in self.moved_chunks.drain(..) {
            match c.scope {
                Scope::PerFlow => per.push(c),
                Scope::MultiFlow => multi.push(c),
                Scope::AllFlows => all.push(c),
            }
        }
        if !per.is_empty() {
            let ids: Vec<FlowId> = per.iter().map(|c| c.flow_id).collect();
            o.sb(self.dst, self.id, SbCall::DelPerflow { flow_ids: ids });
            o.sb(self.src, self.id, SbCall::PutPerflow { chunks: per });
        }
        if !multi.is_empty() {
            let ids: Vec<FlowId> = multi.iter().map(|c| c.flow_id).collect();
            o.sb(self.dst, self.id, SbCall::DelMultiflow { flow_ids: ids });
            o.sb(self.src, self.id, SbCall::PutMultiflow { chunks: multi });
        }
        if !all.is_empty() {
            // No delAllflows exists (§4.2); re-import at the source so it
            // resumes with the freshest copy.
            o.sb(self.src, self.id, SbCall::PutAllflows { chunks: all });
        }
        // Replay buffered events through the source. They were captured
        // by the source's drop-event filter once already, so they bypass
        // both buffering and the (still installed) drop filter.
        let mut packets: Vec<Packet> = std::mem::take(&mut self.buffered);
        let mut rest: Vec<Packet> =
            std::mem::take(&mut self.per_flow_buf).into_values().flatten().collect();
        rest.sort_by_key(|p| p.uid);
        packets.extend(rest);
        for mut pkt in packets {
            pkt.do_not_buffer = true;
            pkt.do_not_drop = true;
            self.report.events_released += 1;
            o.to_switch(Msg::PacketOut { packet: pkt, to: self.src });
        }
        // Remove the move's filters at the source promptly so fresh
        // traffic resumes normal processing.
        match self.props.variant {
            MoveVariant::NoGuarantee => {
                o.sb(self.src, self.id, SbCall::RemoveDropFilter { filter: self.filter });
            }
            _ => {
                o.sb(self.src, self.id, SbCall::DisableEvents { filter: self.filter });
                for id in self.released.iter() {
                    let f = Filter::from_flow_id(*id);
                    o.sb(self.src, self.id, SbCall::DisableEvents { filter: f });
                }
            }
        }
        self.route_reverted = true;
        self.finish_aborted(o, reason, blame)
    }

    /// Aborts after the buffered-event flush: state and flushed events
    /// already live at the destination, so rolling back would reprocess
    /// them. Fail forward instead — (re)install a plain route to the
    /// destination, dismantle the ordering machinery, and account for
    /// every packet-in whose processing was never confirmed.
    fn abort_forward(
        &mut self,
        o: &mut OpCtx<'_, '_>,
        reason: String,
        blame: Option<NodeId>,
    ) -> bool {
        self.send_flow_mod(o, FM_ROUTE, self.prio.1, vec![self.dst], false);
        if !matches!(self.phase, Phase::RouteUpdate) {
            // The OP machinery may have enabled buffering at dst; clearing
            // it releases anything held there.
            o.sb(self.dst, self.id, SbCall::DisableEvents { filter: self.filter });
        }
        // Deferred source cleanup, as on normal completion.
        let cleanup_delay = Dur::millis(500);
        let call = match self.props.variant {
            MoveVariant::NoGuarantee => SbCall::RemoveDropFilter { filter: self.filter },
            _ => SbCall::DisableEvents { filter: self.filter },
        };
        o.ctx.send(self.src, cleanup_delay, Msg::Sb { op: self.id, call });
        if self.props.early_release {
            for id in self.released.iter() {
                o.ctx.send(
                    self.src,
                    cleanup_delay,
                    Msg::Sb {
                        op: self.id,
                        call: SbCall::DisableEvents { filter: Filter::from_flow_id(*id) },
                    },
                );
            }
        }
        let mut lost: Vec<u64> = self
            .pktin_uids
            .iter()
            .filter(|u| {
                !self.forwarded_src_uids.contains(u) && !self.dst_event_uids.contains(u)
            })
            .copied()
            .collect();
        lost.sort_unstable();
        self.report.abort_lost = lost;
        self.finish_aborted(o, reason, blame)
    }

    fn finish_aborted(&mut self, o: &mut OpCtx<'_, '_>, reason: String, blame: Option<NodeId>) -> bool {
        self.disarm_watchdog();
        self.close_spans(o);
        o.tel_event("move.abort", Some(reason.clone()));
        self.report.abort(reason, blame);
        self.report.end_ns = o.now().as_nanos();
        self.phase = Phase::Done;
        self.jlog.push(JournalPhase::Aborted);
        true
    }

    /// Kicks the operation off. Returns true if already complete.
    pub fn start(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        self.sp_root = Some(o.op_root("move", self.id));
        self.jlog.push(JournalPhase::Armed);
        match self.props.variant {
            MoveVariant::NoGuarantee => {
                // Split/Merge behaviour: silently drop traffic at the
                // source while state moves.
                o.sb(self.src, self.id, SbCall::AddDropFilter { filter: self.filter });
                self.enter(o, Phase::Arming);
            }
            MoveVariant::LossFree | MoveVariant::LossFreeOrderPreserving => {
                if self.props.early_release {
                    // Late-locking: flows lock one by one during export.
                    return self.begin_stage(o);
                }
                o.sb(
                    self.src,
                    self.id,
                    SbCall::EnableEvents { filter: self.filter, action: EventAction::Drop },
                );
                self.enter(o, Phase::Arming);
            }
        }
        false
    }

    fn lossfree(&self) -> bool {
        !matches!(self.props.variant, MoveVariant::NoGuarantee)
    }

    fn begin_stage(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        match self.stages.pop_front() {
            None => {
                if self.props.early_release && self.lossfree() && !self.sealed {
                    // ER endgame: freeze everything at the source, then run
                    // a catch-up export for state created mid-move.
                    self.sealed = true;
                    self.enter(o, Phase::Sealing);
                    o.sb(
                        self.src,
                        self.id,
                        SbCall::EnableEvents { filter: self.filter, action: EventAction::Drop },
                    );
                    return false;
                }
                self.after_transfer(o)
            }
            Some(stage) => {
                self.cur_stage = Some(stage);
                self.export_done = false;
                if self.sp_export.is_none()
                    && self.sp_transfer.is_none()
                    && self.sp_import.is_none()
                    && !self.flushed
                {
                    self.sp_export = Some(o.span_begin_under(self.sp_root, "move.export"));
                }
                self.enter(o, Phase::Transferring);
                if self.seal_stage.is_none() {
                    self.seal_stage = Some(stage);
                }
                let call = match stage {
                    // Footnote 10: per-flow state streams src → dst directly;
                    // the controller only sees the export/import summaries.
                    Stage::Per if self.props.p2p => {
                        self.p2p_xfer += 1;
                        self.p2p_round_exported = false;
                        self.p2p_round_done = false;
                        self.p2p_retries_left = o.cfg.op.sb_retries;
                        SbCall::TransferPerflow {
                            filter: self.filter,
                            peer: self.dst,
                            xfer: self.p2p_xfer,
                            only: Vec::new(),
                        }
                    }
                    Stage::Per => SbCall::GetPerflow {
                        filter: self.filter,
                        stream: self.props.parallel,
                        // No late-locking in the sealed catch-up round: the
                        // global filter is already in place.
                        late_lock: self.props.early_release && self.lossfree() && !self.sealed,
                    },
                    Stage::Multi => {
                        SbCall::GetMultiflow { filter: self.filter, stream: self.props.parallel }
                    }
                    Stage::All => SbCall::GetAllflows,
                };
                o.sb(self.src, self.id, call);
                false
            }
        }
    }

    fn stage_del_call(&self, stage: Stage) -> Option<SbCall> {
        match stage {
            Stage::Per => Some(SbCall::DelPerflow { flow_ids: self.exported_ids.clone() }),
            Stage::Multi => Some(SbCall::DelMultiflow { flow_ids: self.exported_ids.clone() }),
            // There is no delAllflows (§4.2).
            Stage::All => None,
        }
    }

    /// The flows the source reported exported but the destination never
    /// confirmed, in serialization order.
    fn p2p_missing(&self) -> Vec<FlowId> {
        let imported: HashSet<FlowId> = self.p2p_imported.iter().copied().collect();
        self.p2p_exported.iter().filter(|f| !imported.contains(f)).copied().collect()
    }

    /// Both summaries of a P2P round (source export, destination import)
    /// have possibly landed: compare them. Everything confirmed → delete
    /// at the source (copy-then-delete: only now does the source let go)
    /// and finish the stage; otherwise re-request the gap or give up.
    fn p2p_reconcile(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        if !(self.p2p_round_exported && self.p2p_round_done) {
            return false;
        }
        let missing = self.p2p_missing();
        if missing.is_empty() {
            self.mark_export_done(o);
            if !self.p2p_imported.is_empty() {
                self.pending_acks += 1;
                o.sb(
                    self.src,
                    self.id,
                    SbCall::DelPerflow { flow_ids: self.p2p_imported.clone() },
                );
            }
            return self.maybe_stage_done(o);
        }
        self.p2p_retry(o, missing)
    }

    /// Re-requests `missing` flows in a fresh transfer round (an empty list
    /// re-requests the whole filter — the round may have stalled before the
    /// source even reported its export), or aborts once the budget is spent.
    fn p2p_retry(&mut self, o: &mut OpCtx<'_, '_>, missing: Vec<FlowId>) -> bool {
        if self.p2p_retries_left == 0 {
            let blame = if self.p2p_round_exported { self.dst } else { self.src };
            return self.abort_rollback(
                o,
                format!(
                    "Transferring: P2P transfer incomplete after {} retries ({} flows unconfirmed)",
                    o.cfg.op.sb_retries,
                    missing.len()
                ),
                Some(blame),
            );
        }
        self.p2p_retries_left -= 1;
        self.report.retries += 1;
        self.p2p_xfer += 1;
        o.tel_event(
            "move.p2p_round",
            Some(format!("xfer={} missing={}", self.p2p_xfer, missing.len())),
        );
        self.p2p_round_exported = false;
        self.p2p_round_done = false;
        o.sb(
            self.src,
            self.id,
            SbCall::TransferPerflow {
                filter: self.filter,
                peer: self.dst,
                xfer: self.p2p_xfer,
                only: missing,
            },
        );
        self.arm_watchdog(o);
        false
    }

    fn maybe_stage_done(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        if self.phase == Phase::Transferring
            && self.export_done
            && self.pending_imports == 0
            && self.pending_acks == 0
        {
            self.cur_stage = None;
            self.exported_ids.clear();
            return self.begin_stage(o);
        }
        false
    }

    /// Flush controller-buffered events toward dst (Fig. 6 l.19-21) and
    /// run the variant-specific endgame.
    fn after_transfer(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        // Transfer and import are over (a stage that drained in a single
        // handler may not have seen a far-side ack; close its spans here so
        // the tiling stays intact).
        if let Some(s) = self.sp_transfer.take() {
            o.span_end(s);
            self.sp_import = Some(o.span_begin_under(self.sp_root, "move.import"));
        }
        if let Some(s) = self.sp_import.take() {
            o.span_end(s);
        }
        self.jlog.push(JournalPhase::Imported);
        let sp_flush = o.span_begin_under(self.sp_root, "move.flush");
        // Release everything still buffered, in arrival order.
        let mut packets: Vec<Packet> = std::mem::take(&mut self.buffered);
        // ER: any flows never released (e.g. flows that appeared after the
        // export listing) flush now, in arrival order.
        let mut rest: Vec<Packet> = std::mem::take(&mut self.per_flow_buf)
            .into_values()
            .flatten()
            .collect();
        rest.sort_by_key(|p| p.uid);
        packets.extend(rest);
        for mut pkt in packets {
            pkt.do_not_buffer = true;
            self.report.events_released += 1;
            o.to_switch(Msg::PacketOut { packet: pkt, to: self.dst });
        }
        self.flushed = true;
        self.jlog.push(JournalPhase::Flushed);
        o.span_end(sp_flush);
        self.sp_fwd = Some(o.span_begin_under(self.sp_root, "move.fwd_update"));

        match self.props.variant {
            MoveVariant::NoGuarantee | MoveVariant::LossFree => {
                self.send_flow_mod(o, FM_ROUTE, self.prio.1, vec![self.dst], false);
                self.enter(o, Phase::RouteUpdate);
            }
            MoveVariant::LossFreeOrderPreserving => {
                o.sb(
                    self.dst,
                    self.id,
                    SbCall::EnableEvents { filter: self.filter, action: EventAction::Buffer },
                );
                self.enter(o, Phase::OpEnableDstBuffer);
            }
        }
        false
    }

    fn complete(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        // A duplicated FlowModApplied can land here twice; the journal
        // records the commit once.
        if self.phase != Phase::Done {
            self.jlog.push(JournalPhase::Committed);
        }
        self.disarm_watchdog();
        self.phase = Phase::Done;
        if let Some(s) = self.sp_fwd.take() {
            o.span_end(s);
        }
        if let Some(s) = self.sp_root.take() {
            o.span_end(s);
        }
        self.report.end_ns = o.now().as_nanos();
        // Deferred cleanup (§5.1.1: disabling source events is unnecessary
        // for correctness; do it once in-flight traffic has surely drained).
        let cleanup_delay = opennf_sim::Dur::millis(500);
        match self.props.variant {
            MoveVariant::NoGuarantee => {
                o.ctx.send(
                    self.src,
                    cleanup_delay,
                    Msg::Sb { op: self.id, call: SbCall::RemoveDropFilter { filter: self.filter } },
                );
            }
            _ => {
                o.ctx.send(
                    self.src,
                    cleanup_delay,
                    Msg::Sb { op: self.id, call: SbCall::DisableEvents { filter: self.filter } },
                );
                if self.props.early_release {
                    // Late-locked per-flow filters need individual removal.
                    for id in self.released.iter() {
                        o.ctx.send(
                            self.src,
                            cleanup_delay,
                            Msg::Sb {
                                op: self.id,
                                call: SbCall::DisableEvents { filter: Filter::from_flow_id(*id) },
                            },
                        );
                    }
                }
            }
        }
        true
    }

    /// Drives the op to a deterministic outcome after a controller
    /// restart, from the last phase the journal recorded durably. Past
    /// the event flush the remaining work is an idempotent forwarding
    /// update, so NG/LF moves *resume* by re-issuing the route flow-mod;
    /// an order-preserving move fails forward instead (its ordering
    /// window — packet-ins, counter polls, timers — died with the
    /// crash, so `abort_lost` accounts the unconfirmed packet-ins).
    /// Before the flush the op rolls back through the abort path: the
    /// route never left the source, so the network ends up as if the
    /// move had not been attempted. Returns true when the op finished.
    pub fn recover(&mut self, o: &mut OpCtx<'_, '_>, durable: JournalPhase) -> bool {
        if self.phase == Phase::Done {
            return false;
        }
        o.tel_event(
            "recovery.op",
            Some(format!("{} {} from {:?}", self.id, self.report.kind, durable)),
        );
        if durable >= JournalPhase::Flushed {
            match self.props.variant {
                MoveVariant::LossFreeOrderPreserving => self.abort_forward(
                    o,
                    "controller restart: order-preserving window lost".into(),
                    None,
                ),
                _ => {
                    // Resume from the durable flush: the only step left
                    // is the route update, and installing a flow-mod
                    // twice is idempotent at the switch.
                    self.enter(o, Phase::RouteUpdate);
                    self.resend_flow_mod(o);
                    false
                }
            }
        } else {
            self.abort_rollback(o, "controller restart before event flush".into(), None)
        }
    }

    /// Southbound ack dispatch. Returns true when the op is complete.
    pub fn on_sb_ack(&mut self, o: &mut OpCtx<'_, '_>, reply: SbReply) -> bool {
        match (self.phase, reply) {
            (Phase::Arming, SbReply::Done) => self.begin_stage(o),
            (Phase::Sealing, SbReply::Done) => {
                // Global lock in place: catch-up round over the same stage.
                if let Some(stage) = self.seal_stage {
                    self.stages.push_back(stage);
                }
                self.begin_stage(o)
            }
            (Phase::Transferring, SbReply::ChunkStream { chunk, last }) => {
                self.arm_watchdog(o);
                if let Some(chunk) = chunk {
                    self.exported_ids.push(chunk.flow_id);
                    self.report.chunks += 1;
                    self.report.bytes += chunk.len() as u64;
                    self.pending_imports += 1;
                    self.moved_chunks.push(chunk.clone());
                    o.sb(self.dst, self.id, SbCall::PutChunk { chunk });
                }
                if last {
                    self.mark_export_done(o);
                    // get → del → put ordering (§5.1): delete at the source
                    // once the export is complete.
                    if let Some(del) = self.cur_stage.and_then(|s| self.stage_del_call(s)) {
                        self.pending_acks += 1;
                        o.sb(self.src, self.id, del);
                    }
                }
                self.maybe_stage_done(o)
            }
            (Phase::Transferring, SbReply::Chunks { chunks }) => {
                self.arm_watchdog(o);
                self.mark_export_done(o);
                for c in &chunks {
                    self.exported_ids.push(c.flow_id);
                    self.report.chunks += 1;
                    self.report.bytes += c.len() as u64;
                    self.moved_chunks.push(c.clone());
                }
                if let Some(del) = self.cur_stage.and_then(|s| self.stage_del_call(s)) {
                    self.pending_acks += 1;
                    o.sb(self.src, self.id, del);
                }
                if chunks.is_empty() {
                    return self.maybe_stage_done(o);
                }
                self.pending_acks += 1;
                let call = match self.cur_stage {
                    Some(Stage::Per) => SbCall::PutPerflow { chunks },
                    Some(Stage::Multi) => SbCall::PutMultiflow { chunks },
                    _ => SbCall::PutAllflows { chunks },
                };
                o.sb(self.dst, self.id, call);
                false
            }
            (Phase::Transferring, SbReply::ChunkImported { flow_id }) => {
                self.arm_watchdog(o);
                self.mark_transfer_ack(o);
                self.pending_imports = self.pending_imports.saturating_sub(1);
                if self.props.early_release {
                    // Early release: this flow's events can flow to dst now.
                    self.released.insert(flow_id);
                    if let Some(buf) = self.per_flow_buf.remove(&flow_id) {
                        for mut pkt in buf {
                            pkt.do_not_buffer = true;
                            self.report.events_released += 1;
                            o.to_switch(Msg::PacketOut { packet: pkt, to: self.dst });
                        }
                    }
                }
                self.maybe_stage_done(o)
            }
            (Phase::Transferring, SbReply::Done) => {
                self.arm_watchdog(o);
                self.mark_transfer_ack(o);
                self.pending_acks = self.pending_acks.saturating_sub(1);
                self.maybe_stage_done(o)
            }
            (Phase::Transferring, SbReply::TransferExported { xfer, flow_ids, bytes }) => {
                if xfer != self.p2p_xfer {
                    return false; // ack from a superseded transfer round
                }
                self.arm_watchdog(o);
                self.report.chunks += flow_ids.len();
                self.report.bytes += bytes;
                for id in flow_ids {
                    if self.p2p_exported_set.insert(id) {
                        self.p2p_exported.push(id);
                    }
                }
                self.p2p_round_exported = true;
                self.p2p_reconcile(o)
            }
            (Phase::Transferring, SbReply::TransferDone { xfer, imported }) => {
                if xfer != self.p2p_xfer {
                    return false; // ack from a superseded transfer round
                }
                self.arm_watchdog(o);
                self.p2p_imported = imported;
                self.p2p_round_done = true;
                self.p2p_reconcile(o)
            }
            (Phase::OpEnableDstBuffer, SbReply::Done) => {
                // Fig. 6 l.23: low-priority rule to {src, ctrl}.
                self.send_flow_mod(o, FM_OP_LOW, self.prio.0, vec![self.src], true);
                self.enter(o, Phase::OpPhase1);
                false
            }
            (Phase::OpDisablingDst, SbReply::Done) => self.complete(o),
            // Late cleanup acks and benign races.
            _ => false,
        }
    }

    /// An event arrived from `from`. Returns true when the op is complete.
    pub fn on_event(&mut self, o: &mut OpCtx<'_, '_>, from: NodeId, ev: &NfEvent) -> bool {
        let NfEvent::Received(pkt) = ev else {
            return false;
        };
        if self.route_reverted {
            // Aborted with rollback: flows live at the source again. An
            // event raised before the abort's filter removal landed is
            // replayed back through the source, marked so it is processed
            // exactly once.
            if from == self.src {
                let mut p = pkt.clone();
                p.do_not_buffer = true;
                p.do_not_drop = true;
                self.report.events_released += 1;
                o.to_switch(Msg::PacketOut { packet: p, to: self.src });
            }
            return false;
        }
        if from == self.src {
            if !self.flushed {
                self.report.events_buffered += 1;
                if self.props.early_release {
                    let fid = pkt.flow_id();
                    if self.released.contains(&fid) {
                        let mut p = pkt.clone();
                        p.do_not_buffer = true;
                        self.report.events_released += 1;
                        o.to_switch(Msg::PacketOut { packet: p, to: self.dst });
                    } else {
                        self.per_flow_buf.entry(fid).or_default().push(pkt.clone());
                    }
                } else {
                    self.buffered.push(pkt.clone());
                }
            } else {
                // "Handled immediately in the same way" (§5.1.1).
                let mut p = pkt.clone();
                p.do_not_buffer = true;
                self.report.events_released += 1;
                self.forwarded_src_uids.insert(pkt.uid);
                o.to_switch(Msg::PacketOut { packet: p, to: self.dst });
                if self.phase == Phase::OpAwaitSrcLast {
                    if let Some(last) = self.last_pktin {
                        if self.forwarded_src_uids.contains(&last) {
                            return self.advance_to_dst_wait(o);
                        }
                    }
                }
            }
        } else if from == self.dst {
            self.dst_event_uids.insert(pkt.uid);
            if self.phase == Phase::OpAwaitDstLast {
                if let Some(last) = self.last_pktin {
                    if self.dst_event_uids.contains(&last) {
                        return self.disable_dst(o);
                    }
                }
            }
        }
        false
    }

    fn advance_to_dst_wait(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        if let Some(last) = self.last_pktin {
            if self.dst_event_uids.contains(&last) {
                return self.disable_dst(o);
            }
        }
        self.enter(o, Phase::OpAwaitDstLast);
        false
    }

    fn disable_dst(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        o.sb(self.dst, self.id, SbCall::DisableEvents { filter: self.filter });
        self.enter(o, Phase::OpDisablingDst);
        false
    }

    /// A packet-in matching this op's filter arrived (OP phase window).
    pub fn on_packet_in(&mut self, o: &mut OpCtx<'_, '_>, pkt: &Packet) -> bool {
        self.pkt_ins += 1;
        self.report.packet_ins += 1;
        self.last_pktin = Some(pkt.uid);
        self.pktin_uids.insert(pkt.uid);
        if self.phase == Phase::OpAwaitFirstPkt {
            // Fig. 6 l.24-25: first packet seen — install the high rule.
            self.send_flow_mod(o, FM_OP_HIGH, self.prio.1, vec![self.dst], false);
            self.enter(o, Phase::OpPhase2);
        }
        false
    }

    /// A flow-mod for this op took effect at switch `from`. The op
    /// advances only once every switch the update fanned to has confirmed
    /// it; rule ids differ per switch, so the low rule polled for the
    /// drain check is the ingress switch's (the one whose counter counts
    /// the punted packet-ins).
    pub fn on_flow_mod_applied(
        &mut self,
        o: &mut OpCtx<'_, '_>,
        from: NodeId,
        tag: u32,
        rule: RuleId,
    ) -> bool {
        if tag == FM_OP_LOW && from == Self::ingress(o) {
            self.low_rule = Some(rule);
        }
        self.fm_pending = self.fm_pending.saturating_sub(1);
        if self.fm_pending > 0 {
            return false;
        }
        match tag {
            FM_ROUTE => self.complete(o),
            FM_OP_LOW => {
                self.phase = Phase::OpAwaitFirstPkt;
                // The first-packet timer is this phase's own watchdog.
                self.disarm_watchdog();
                o.timer(self.id, TAG_FIRST_PKT_TIMEOUT, o.cfg.op_first_packet_timeout);
                false
            }
            FM_OP_HIGH => {
                self.enter(o, Phase::OpDrain);
                if let Some(rule) = self.low_rule {
                    let ingress = Self::ingress(o);
                    o.to_switch_at(ingress, Msg::CounterQuery { op: self.id, rule });
                }
                false
            }
            _ => false,
        }
    }

    /// Counter read-back during the drain check (fn. 9).
    pub fn on_counter_reply(&mut self, o: &mut OpCtx<'_, '_>, packets: u64) -> bool {
        if self.phase != Phase::OpDrain {
            return false;
        }
        if packets == self.pkt_ins {
            // Everything the low rule forwarded has reached us.
            match self.last_pktin {
                None => self.disable_dst(o), // idle flows: nothing to order
                Some(last) => {
                    if self.forwarded_src_uids.contains(&last) {
                        self.advance_to_dst_wait(o)
                    } else {
                        self.enter(o, Phase::OpAwaitSrcLast);
                        false
                    }
                }
            }
        } else {
            o.timer(self.id, TAG_COUNTER_POLL, o.cfg.counter_poll);
            false
        }
    }

    /// Timer dispatch.
    pub fn on_timer(&mut self, o: &mut OpCtx<'_, '_>, tag: u32) -> bool {
        match tag {
            TAG_FIRST_PKT_TIMEOUT if self.phase == Phase::OpAwaitFirstPkt => {
                // No traffic arrived for the moved flows; install the high
                // rule and skip the ordering waits.
                self.send_flow_mod(o, FM_OP_HIGH, self.prio.1, vec![self.dst], false);
                self.phase = Phase::OpPhase2;
                false
            }
            TAG_COUNTER_POLL if self.phase == Phase::OpDrain => {
                if let Some(rule) = self.low_rule {
                    let ingress = Self::ingress(o);
                    o.to_switch_at(ingress, Msg::CounterQuery { op: self.id, rule });
                }
                false
            }
            tag if tag & TAG_WATCHDOG_MASK == TAG_WATCHDOG_BASE => {
                if (tag & 0xFFFF) as u16 != self.watchdog_gen || self.phase == Phase::Done {
                    return false; // stale: the phase already moved on
                }
                self.on_watchdog(o)
            }
            _ => false,
        }
    }
}
