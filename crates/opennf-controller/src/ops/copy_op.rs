//! The `copy` operation (§5.2.1): clone state from one instance to
//! another. No forwarding change, no deletion — the source keeps
//! processing and updating its copy. Eventual consistency is the
//! application's job (re-issue `copy`, typically from a `notify`
//! callback or a timer), exactly as the paper prescribes.

use std::collections::VecDeque;

use opennf_sim::NodeId;

use crate::msg::{OpId, SbCall, SbReply, ScopeSet};
use crate::ops::report::OpReport;
use crate::ops::OpCtx;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Per,
    Multi,
    All,
}

/// One in-flight `copy`.
pub struct CopyOp {
    /// Operation id.
    pub id: OpId,
    src: NodeId,
    dst: NodeId,
    filter: opennf_packet::Filter,
    stages: VecDeque<Stage>,
    cur: Option<Stage>,
    parallel: bool,
    export_done: bool,
    pending_imports: usize,
    pending_acks: usize,
    /// The op's outcome report.
    pub report: OpReport,
}

impl CopyOp {
    /// Creates the op; call [`CopyOp::start`] next.
    pub fn new(
        id: OpId,
        src: NodeId,
        dst: NodeId,
        filter: opennf_packet::Filter,
        scope: ScopeSet,
        parallel: bool,
        now_ns: u64,
    ) -> Self {
        let mut stages = VecDeque::new();
        if scope.multi_flow {
            stages.push_back(Stage::Multi);
        }
        if scope.per_flow {
            stages.push_back(Stage::Per);
        }
        if scope.all_flows {
            stages.push_back(Stage::All);
        }
        CopyOp {
            id,
            src,
            dst,
            filter,
            stages,
            cur: None,
            parallel,
            export_done: false,
            pending_imports: 0,
            pending_acks: 0,
            report: OpReport::new(id, "copy".into(), now_ns),
        }
    }

    /// Source instance.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Kicks the operation off. Returns true if already complete (empty
    /// scope).
    pub fn start(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        self.next_stage(o)
    }

    fn next_stage(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        match self.stages.pop_front() {
            None => {
                self.report.end_ns = o.now().as_nanos();
                true
            }
            Some(stage) => {
                self.cur = Some(stage);
                self.export_done = false;
                let call = match stage {
                    Stage::Per => SbCall::GetPerflow {
                        filter: self.filter,
                        stream: self.parallel,
                        late_lock: false,
                    },
                    Stage::Multi => {
                        SbCall::GetMultiflow { filter: self.filter, stream: self.parallel }
                    }
                    Stage::All => SbCall::GetAllflows,
                };
                o.sb(self.src, self.id, call);
                false
            }
        }
    }

    fn maybe_done(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        if self.export_done && self.pending_imports == 0 && self.pending_acks == 0 {
            return self.next_stage(o);
        }
        false
    }

    /// Southbound ack dispatch. Returns true when the op is complete.
    pub fn on_sb_ack(&mut self, o: &mut OpCtx<'_, '_>, reply: SbReply) -> bool {
        match reply {
            SbReply::ChunkStream { chunk, last } => {
                if let Some(chunk) = chunk {
                    self.report.chunks += 1;
                    self.report.bytes += chunk.len() as u64;
                    self.pending_imports += 1;
                    o.sb(self.dst, self.id, SbCall::PutChunk { chunk });
                }
                if last {
                    self.export_done = true;
                }
                self.maybe_done(o)
            }
            SbReply::Chunks { chunks } => {
                self.export_done = true;
                if chunks.is_empty() {
                    return self.maybe_done(o);
                }
                for c in &chunks {
                    self.report.chunks += 1;
                    self.report.bytes += c.len() as u64;
                }
                self.pending_acks += 1;
                let call = match self.cur {
                    Some(Stage::Per) => SbCall::PutPerflow { chunks },
                    Some(Stage::Multi) => SbCall::PutMultiflow { chunks },
                    _ => SbCall::PutAllflows { chunks },
                };
                o.sb(self.dst, self.id, call);
                false
            }
            SbReply::ChunkImported { .. } => {
                self.pending_imports -= 1;
                self.maybe_done(o)
            }
            SbReply::Done => {
                self.pending_acks -= 1;
                self.maybe_done(o)
            }
        }
    }
}
