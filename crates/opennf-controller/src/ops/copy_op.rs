//! The `copy` operation (§5.2.1): clone state from one instance to
//! another. No forwarding change, no deletion — the source keeps
//! processing and updating its copy. Eventual consistency is the
//! application's job (re-issue `copy`, typically from a `notify`
//! callback or a timer), exactly as the paper prescribes.
//!
//! Failure handling: each stage runs under a watchdog. A stalled stage
//! re-issues its export (gets are read-only and puts idempotent, so a
//! duplicate round is harmless) with exponential backoff; when the retry
//! budget is exhausted the copy aborts. Aborting a copy needs no
//! rollback — nothing was deleted anywhere — so the abort is purely a
//! truthful report.

use std::collections::VecDeque;

use opennf_sim::{Dur, NodeId};
use opennf_telemetry::SpanId;

use crate::journal::JournalPhase;
use crate::msg::{OpId, SbCall, SbReply, ScopeSet};
use crate::ops::report::OpReport;
use crate::ops::OpCtx;

/// Watchdog timer tags (same scheme as `move_op`): high bits mark the
/// watchdog, low 16 bits carry a generation number.
const TAG_WATCHDOG_BASE: u32 = 0x57A0_0000;
const TAG_WATCHDOG_MASK: u32 = 0xFFFF_0000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Per,
    Multi,
    All,
}

/// One in-flight `copy`.
pub struct CopyOp {
    /// Operation id.
    pub id: OpId,
    src: NodeId,
    dst: NodeId,
    filter: opennf_packet::Filter,
    stages: VecDeque<Stage>,
    cur: Option<Stage>,
    parallel: bool,
    export_done: bool,
    pending_imports: usize,
    pending_acks: usize,
    watchdog_gen: u16,
    retries_left: u32,
    backoff: Dur,
    done: bool,
    /// The op's outcome report.
    pub report: OpReport,
    /// Phase boundaries crossed since the controller last drained this
    /// list into the write-ahead journal.
    pub jlog: Vec<JournalPhase>,
    // Telemetry spans: export = first get → source's last reply; import =
    // the rest of the op (puts confirmed at the destination).
    sp_export: Option<SpanId>,
    sp_import: Option<SpanId>,
    /// Per-op root span (named exactly `copy`, `op=<id>` arg); the phase
    /// spans above are its children.
    sp_root: Option<SpanId>,
}

impl CopyOp {
    /// Creates the op; call [`CopyOp::start`] next.
    pub fn new(
        id: OpId,
        src: NodeId,
        dst: NodeId,
        filter: opennf_packet::Filter,
        scope: ScopeSet,
        parallel: bool,
        now_ns: u64,
    ) -> Self {
        let mut stages = VecDeque::new();
        if scope.multi_flow {
            stages.push_back(Stage::Multi);
        }
        if scope.per_flow {
            stages.push_back(Stage::Per);
        }
        if scope.all_flows {
            stages.push_back(Stage::All);
        }
        CopyOp {
            id,
            src,
            dst,
            filter,
            stages,
            cur: None,
            parallel,
            export_done: false,
            pending_imports: 0,
            pending_acks: 0,
            watchdog_gen: 0,
            retries_left: 0,
            backoff: Dur::ZERO,
            done: false,
            report: OpReport::new(id, "copy".into(), now_ns),
            jlog: Vec::new(),
            sp_export: None,
            sp_import: None,
            sp_root: None,
        }
    }

    /// The first export finished: close the export span, open the import
    /// span (later stages reuse the flag without touching the spans).
    fn mark_export_done(&mut self, o: &mut OpCtx<'_, '_>) {
        self.export_done = true;
        if let Some(s) = self.sp_export.take() {
            o.span_end(s);
            self.sp_import = Some(o.span_begin_under(self.sp_root, "copy.import"));
            self.jlog.push(JournalPhase::ExportDone);
        }
    }

    fn close_spans(&mut self, o: &mut OpCtx<'_, '_>) {
        for s in [self.sp_export.take(), self.sp_import.take(), self.sp_root.take()]
            .into_iter()
            .flatten()
        {
            o.span_end(s);
        }
    }

    /// Source instance.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Kicks the operation off. Returns true if already complete (empty
    /// scope).
    pub fn start(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        self.sp_root = Some(o.op_root("copy", self.id));
        self.jlog.push(JournalPhase::Armed);
        self.next_stage(o)
    }

    /// Re-arms the op after a controller restart. Gets are read-only and
    /// puts idempotent, so a copy needs no rollback: re-issue the current
    /// stage's export (fenced — the pre-crash original may still land)
    /// and let the existing watchdog/retry machinery carry it home.
    pub fn recover(&mut self, o: &mut OpCtx<'_, '_>, durable: JournalPhase) -> bool {
        if self.done {
            return false;
        }
        o.tel_event("recovery.op", Some(format!("{} copy from {:?}", self.id, durable)));
        match self.cur {
            Some(stage) => {
                self.retries_left = o.cfg.op.sb_retries;
                self.backoff = o.cfg.op.sb_retry_backoff;
                self.arm_watchdog(o);
                o.sb(self.src, self.id, self.stage_call(stage));
                false
            }
            // Armed but no stage begun (empty scope was handled in
            // start): nothing outstanding.
            None => self.next_stage(o),
        }
    }

    fn arm_watchdog(&mut self, o: &mut OpCtx<'_, '_>) {
        self.rearm_after(o, Dur::ZERO);
    }

    fn rearm_after(&mut self, o: &mut OpCtx<'_, '_>, extra: Dur) {
        self.watchdog_gen = self.watchdog_gen.wrapping_add(1);
        o.timer(
            self.id,
            TAG_WATCHDOG_BASE | self.watchdog_gen as u32,
            o.cfg.op.phase_timeout + extra,
        );
    }

    fn stage_call(&self, stage: Stage) -> SbCall {
        match stage {
            Stage::Per => SbCall::GetPerflow {
                filter: self.filter,
                stream: self.parallel,
                late_lock: false,
            },
            Stage::Multi => SbCall::GetMultiflow { filter: self.filter, stream: self.parallel },
            Stage::All => SbCall::GetAllflows,
        }
    }

    fn next_stage(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        match self.stages.pop_front() {
            None => {
                // Invalidate the pending watchdog and finish.
                self.watchdog_gen = self.watchdog_gen.wrapping_add(1);
                self.done = true;
                self.close_spans(o);
                self.report.end_ns = o.now().as_nanos();
                self.jlog.push(JournalPhase::Committed);
                true
            }
            Some(stage) => {
                self.cur = Some(stage);
                self.export_done = false;
                if self.sp_export.is_none() && self.sp_import.is_none() {
                    self.sp_export = Some(o.span_begin_under(self.sp_root, "copy.export"));
                }
                self.retries_left = o.cfg.op.sb_retries;
                self.backoff = o.cfg.op.sb_retry_backoff;
                self.arm_watchdog(o);
                o.sb(self.src, self.id, self.stage_call(stage));
                false
            }
        }
    }

    fn maybe_done(&mut self, o: &mut OpCtx<'_, '_>) -> bool {
        if self.export_done && self.pending_imports == 0 && self.pending_acks == 0 {
            return self.next_stage(o);
        }
        false
    }

    /// Southbound ack dispatch. Returns true when the op is complete.
    pub fn on_sb_ack(&mut self, o: &mut OpCtx<'_, '_>, reply: SbReply) -> bool {
        if self.done {
            return false;
        }
        self.arm_watchdog(o);
        match reply {
            SbReply::ChunkStream { chunk, last } => {
                if let Some(chunk) = chunk {
                    self.report.chunks += 1;
                    self.report.bytes += chunk.len() as u64;
                    self.pending_imports += 1;
                    o.sb(self.dst, self.id, SbCall::PutChunk { chunk });
                }
                if last {
                    self.mark_export_done(o);
                }
                self.maybe_done(o)
            }
            SbReply::Chunks { chunks } => {
                self.mark_export_done(o);
                if chunks.is_empty() {
                    return self.maybe_done(o);
                }
                for c in &chunks {
                    self.report.chunks += 1;
                    self.report.bytes += c.len() as u64;
                }
                self.pending_acks += 1;
                let call = match self.cur {
                    Some(Stage::Per) => SbCall::PutPerflow { chunks },
                    Some(Stage::Multi) => SbCall::PutMultiflow { chunks },
                    _ => SbCall::PutAllflows { chunks },
                };
                o.sb(self.dst, self.id, call);
                false
            }
            SbReply::ChunkImported { .. } => {
                self.pending_imports = self.pending_imports.saturating_sub(1);
                self.maybe_done(o)
            }
            SbReply::Done => {
                self.pending_acks = self.pending_acks.saturating_sub(1);
                self.maybe_done(o)
            }
            // P2P transfer summaries belong to move ops only.
            SbReply::TransferExported { .. } | SbReply::TransferDone { .. } => false,
        }
    }

    /// Timer dispatch. Returns true when the op finishes (aborted).
    pub fn on_timer(&mut self, o: &mut OpCtx<'_, '_>, tag: u32) -> bool {
        if tag & TAG_WATCHDOG_MASK != TAG_WATCHDOG_BASE
            || (tag & 0xFFFF) as u16 != self.watchdog_gen
            || self.done
        {
            return false; // stale watchdog, or not ours
        }
        if self.retries_left > 0 {
            self.retries_left -= 1;
            self.report.retries += 1;
            let backoff = self.backoff;
            self.backoff = self.backoff + self.backoff;
            if let Some(stage) = self.cur {
                o.sb_after(self.src, self.id, self.stage_call(stage), backoff);
            }
            self.rearm_after(o, backoff);
            false
        } else {
            // Non-destructive abort: the source keeps its state; nothing
            // was removed anywhere, so reporting truthfully is enough.
            let blame = if self.export_done { self.dst } else { self.src };
            self.close_spans(o);
            o.tel_event("copy.abort", None);
            self.report.abort(
                format!("copy stalled ({} retries exhausted)", o.cfg.op.sb_retries),
                Some(blame),
            );
            self.report.end_ns = o.now().as_nanos();
            self.done = true;
            self.jlog.push(JournalPhase::Aborted);
            true
        }
    }
}
