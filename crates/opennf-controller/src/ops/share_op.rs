//! The `share` operation (§5.2.2): keep state readable/updatable at
//! several instances with strong or strict consistency.
//!
//! **Strong**: events are enabled with action=drop on every instance;
//! state is initially synchronized; then, one packet at a time per flow
//! group, the controller re-injects the packet (marked `do-not-drop`) at
//! its original instance, waits for the completion event, pulls the
//! updated state, and pushes it to every other instance.
//!
//! **Strict**: forwarding rules are replaced so matching packets come to
//! the controller itself, which serializes them in switch-arrival order
//! and runs the same inject → completion → sync cycle through a single
//! global queue.
//!
//! Ack routing: the controller allocates op ids in a sparse namespace
//! (multiples of 2²⁰); a share op uses offsets within its namespace to
//! give every flow group its own southbound correlation id, so the
//! fan-out acks of concurrent groups can never be confused.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

use opennf_nf::NfEvent;
use opennf_packet::{Filter, FlowId, Ipv4Prefix, Packet};
use opennf_sim::{Dur, NodeId};
use opennf_telemetry::SpanId;

use crate::journal::JournalPhase;
use crate::msg::{ConsistencyLevel, Msg, OpId, SbCall, SbReply, ScopeSet};
use crate::ops::report::OpReport;
use crate::ops::OpCtx;

/// Watchdog timer tags (same scheme as `move_op`): high bits mark the
/// watchdog, low 16 bits carry a generation number.
const TAG_WATCHDOG_BASE: u32 = 0x57A0_0000;
const TAG_WATCHDOG_MASK: u32 = 0xFFFF_0000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// enableEvents acks outstanding.
    Arming,
    /// Initial state synchronization (gets, then puts).
    InitialSync,
    /// Normal operation: queues draining.
    Running,
}

/// Per-flow-group serializer state.
struct Group {
    /// This group's southbound correlation id.
    sub: OpId,
    queue: VecDeque<(NodeId, Packet)>,
    /// An inject → sync cycle is in flight.
    busy: bool,
    /// uid of the injected packet we are waiting on.
    waiting_uid: Option<u64>,
    /// Instance currently holding the write.
    origin: Option<NodeId>,
    /// Puts outstanding in the sync fan-out.
    pending_puts: usize,
    /// Telemetry span covering the in-flight inject → sync cycle.
    span: Option<SpanId>,
}

/// One in-flight `share` (runs until the experiment ends; the harness
/// reads its counters afterwards).
pub struct ShareOp {
    /// Operation id (base of this op's id namespace).
    pub id: OpId,
    insts: Vec<NodeId>,
    filter: Filter,
    scope: ScopeSet,
    consistency: ConsistencyLevel,
    phase: Phase,
    acks_outstanding: usize,
    init_gets_outstanding: usize,
    init_chunks: Vec<opennf_nf::Chunk>,
    groups: HashMap<FlowId, Group>,
    /// sub-id → group key.
    sub_index: HashMap<OpId, FlowId>,
    next_sub: u64,
    /// Strict: pre-share routing (instance each flow belongs to).
    route: Vec<(Filter, NodeId)>,
    watchdog_gen: u16,
    retries_left: u32,
    backoff: Dur,
    /// Instances whose current setup-phase ack is still outstanding (one
    /// entry per outstanding call) — the out-of-sync set a strict teardown
    /// reports.
    pending_insts: Vec<NodeId>,
    /// The share was torn down after retry exhaustion
    /// ([`crate::config::OpConfig::strict_share`]); it accepts no further
    /// traffic and the controller drops it.
    torn_down: bool,
    /// Packets fully synchronized so far.
    pub packets_synced: u64,
    /// The op's report (`end_ns` stays at start: shares don't complete).
    pub report: OpReport,
    /// Phase boundaries crossed since the controller last drained this
    /// list into the write-ahead journal.
    pub jlog: Vec<JournalPhase>,
    // Telemetry spans for the two setup phases.
    sp_arm: Option<SpanId>,
    sp_init: Option<SpanId>,
    /// Per-op root span (named exactly `share`, `op=<id>` arg). Stays open
    /// for the op's whole life — shares run until teardown.
    sp_root: Option<SpanId>,
}

impl ShareOp {
    /// Creates the op; call [`ShareOp::start`] next. `route` is the
    /// pre-share instance assignment, needed for strict-mode injection.
    pub fn new(
        id: OpId,
        insts: Vec<NodeId>,
        filter: Filter,
        scope: ScopeSet,
        consistency: ConsistencyLevel,
        route: Vec<(Filter, NodeId)>,
        now_ns: u64,
    ) -> Self {
        let kind = match consistency {
            ConsistencyLevel::Strong => "share[strong]",
            ConsistencyLevel::Strict => "share[strict]",
        };
        ShareOp {
            id,
            insts,
            filter,
            scope,
            consistency,
            phase: Phase::Arming,
            acks_outstanding: 0,
            init_gets_outstanding: 0,
            init_chunks: Vec::new(),
            groups: HashMap::new(),
            sub_index: HashMap::new(),
            next_sub: 1,
            route,
            watchdog_gen: 0,
            retries_left: 0,
            backoff: Dur::ZERO,
            pending_insts: Vec::new(),
            torn_down: false,
            packets_synced: 0,
            report: OpReport::new(id, kind.into(), now_ns),
            jlog: Vec::new(),
            sp_arm: None,
            sp_init: None,
            sp_root: None,
        }
    }

    /// The instances sharing state.
    pub fn instances(&self) -> &[NodeId] {
        &self.insts
    }

    /// The share's filter.
    pub fn filter(&self) -> &Filter {
        &self.filter
    }

    /// Flow grouping: "flows are grouped based on the coarsest granularity
    /// of state being shared" — the multi-flow state here is per-host, so
    /// groups are the packet's source host. Strict mode uses one global
    /// group (switch arrival order is total).
    fn group_of(&self, pkt: &Packet) -> FlowId {
        match self.consistency {
            ConsistencyLevel::Strong => FlowId::host(pkt.src_ip()),
            ConsistencyLevel::Strict => FlowId::default(),
        }
    }

    fn group_filter(host: Option<Ipv4Addr>) -> Filter {
        match host {
            Some(ip) => Filter::from_src(Ipv4Prefix::host(ip)).bidi(),
            None => Filter::any(),
        }
    }

    fn group_entry(&mut self, gid: FlowId) -> &mut Group {
        if !self.groups.contains_key(&gid) {
            let sub = OpId(self.id.0 + self.next_sub);
            self.next_sub += 1;
            self.sub_index.insert(sub, gid);
            self.groups.insert(
                gid,
                Group {
                    sub,
                    queue: VecDeque::new(),
                    busy: false,
                    waiting_uid: None,
                    origin: None,
                    pending_puts: 0,
                    span: None,
                },
            );
        }
        self.groups.get_mut(&gid).unwrap()
    }

    fn arm_watchdog(&mut self, o: &mut OpCtx<'_, '_>) {
        self.rearm_after(o, Dur::ZERO);
    }

    fn rearm_after(&mut self, o: &mut OpCtx<'_, '_>, extra: Dur) {
        self.watchdog_gen = self.watchdog_gen.wrapping_add(1);
        o.timer(
            self.id,
            TAG_WATCHDOG_BASE | self.watchdog_gen as u32,
            o.cfg.op.phase_timeout + extra,
        );
    }

    /// Invalidates the pending watchdog (used entering `Running`: the
    /// steady-state sync cycles are driven by events, not deadlines).
    fn disarm_watchdog(&mut self) {
        self.watchdog_gen = self.watchdog_gen.wrapping_add(1);
    }

    fn event_action(&self) -> opennf_nf::EventAction {
        match self.consistency {
            ConsistencyLevel::Strong => opennf_nf::EventAction::Drop,
            ConsistencyLevel::Strict => opennf_nf::EventAction::Process,
        }
    }

    /// Kicks the operation off.
    pub fn start(&mut self, o: &mut OpCtx<'_, '_>) {
        self.sp_root = Some(o.op_root("share", self.id));
        self.jlog.push(JournalPhase::Armed);
        self.sp_arm = Some(o.span_begin_under(self.sp_root, "share.arm"));
        let action = self.event_action();
        for inst in self.insts.clone() {
            self.acks_outstanding += 1;
            self.pending_insts.push(inst);
            o.sb(inst, self.id, SbCall::EnableEvents { filter: self.filter, action });
        }
        self.retries_left = o.cfg.op.sb_retries;
        self.backoff = o.cfg.op.sb_retry_backoff;
        self.arm_watchdog(o);
        if matches!(self.consistency, ConsistencyLevel::Strict) {
            // Redirect all matching traffic to the controller itself.
            o.to_switch(Msg::FlowMod {
                op: self.id,
                tag: 90,
                priority: u16::MAX,
                filter: self.filter,
                to_nodes: vec![],
                to_controller: true,
            });
        }
    }

    fn begin_initial_sync(&mut self, o: &mut OpCtx<'_, '_>) {
        self.phase = Phase::InitialSync;
        if let Some(s) = self.sp_arm.take() {
            o.span_end(s);
        }
        self.sp_init = Some(o.span_begin_under(self.sp_root, "share.init_sync"));
        for inst in self.insts.clone() {
            if self.scope.multi_flow {
                self.init_gets_outstanding += 1;
                self.pending_insts.push(inst);
                o.sb(inst, self.id, SbCall::GetMultiflow { filter: self.filter, stream: false });
            }
            if self.scope.all_flows {
                self.init_gets_outstanding += 1;
                self.pending_insts.push(inst);
                o.sb(inst, self.id, SbCall::GetAllflows);
            }
        }
        if self.init_gets_outstanding == 0 {
            self.phase = Phase::Running;
            if let Some(s) = self.sp_init.take() {
                o.span_end(s);
            }
            self.disarm_watchdog();
        } else {
            self.retries_left = o.cfg.op.sb_retries;
            self.backoff = o.cfg.op.sb_retry_backoff;
            self.arm_watchdog(o);
        }
    }

    fn finish_initial_sync(&mut self, o: &mut OpCtx<'_, '_>) {
        // Push the union of everything gathered to every instance; NFs
        // merge on import. (Experiments start shares before traffic, so
        // this is usually empty.)
        let chunks = std::mem::take(&mut self.init_chunks);
        if !chunks.is_empty() {
            for inst in self.insts.clone() {
                self.acks_outstanding += 1;
                o.sb(inst, self.id, SbCall::PutMultiflow { chunks: chunks.clone() });
            }
        }
        self.phase = Phase::Running;
        if let Some(s) = self.sp_init.take() {
            o.span_end(s);
        }
        self.pending_insts.clear();
        self.disarm_watchdog();
        self.jlog.push(JournalPhase::Imported);
    }

    /// Removes one outstanding-ack entry for `inst`.
    fn settle_pending(&mut self, inst: NodeId) {
        if let Some(pos) = self.pending_insts.iter().position(|i| *i == inst) {
            self.pending_insts.remove(pos);
        }
    }

    /// True once a strict teardown ran; the controller finalizes the
    /// report and drops the op.
    pub fn torn_down(&self) -> bool {
        self.torn_down
    }

    /// The instances whose setup acks never arrived (deduplicated).
    pub fn out_of_sync(&self) -> Vec<NodeId> {
        let mut out = self.pending_insts.clone();
        out.sort();
        out.dedup();
        out
    }

    /// The event filters this op wants installed at `inst` right now (the
    /// controller's restart re-synchronization consults this).
    pub fn desired_filters(&self, inst: NodeId) -> Vec<(Filter, opennf_nf::EventAction)> {
        if self.torn_down || !self.insts.contains(&inst) {
            return Vec::new();
        }
        vec![(self.filter, self.event_action())]
    }

    /// Re-arms the op after a controller restart. Setup phases re-send
    /// their (idempotent) calls and restart the watchdog. A running
    /// share un-wedges every busy group: the inject → sync cycle's
    /// confirmation may have died with the crash, so the in-flight
    /// packet's fate is unknowable — account it in `abort_lost` — and
    /// the queue resumes pumping behind it.
    pub fn recover(&mut self, o: &mut OpCtx<'_, '_>, durable: JournalPhase) {
        if self.torn_down {
            return;
        }
        o.tel_event(
            "recovery.op",
            Some(format!("{} {} from {:?}", self.id, self.report.kind, durable)),
        );
        if self.phase == Phase::Running {
            let mut stuck: Vec<(FlowId, u64)> = self
                .groups
                .iter()
                .filter_map(|(gid, g)| {
                    (g.busy).then_some((*gid, g.waiting_uid.unwrap_or_default()))
                })
                .collect();
            stuck.sort_unstable();
            for (gid, uid) in stuck {
                if uid != 0 {
                    self.report.abort_lost.push(uid);
                }
                // Not `cycle_done`: the cycle never confirmed, so it
                // must not count as synced.
                let group = self.groups.get_mut(&gid).expect("group");
                group.busy = false;
                group.waiting_uid = None;
                group.origin = None;
                if let Some(s) = group.span.take() {
                    o.tel.end_at(s, o.ctx.now().as_nanos());
                }
                self.pump_group(o, gid);
            }
            return;
        }
        self.retries_left = o.cfg.op.sb_retries;
        self.backoff = o.cfg.op.sb_retry_backoff;
        match self.phase {
            Phase::Arming => {
                let action = self.event_action();
                for inst in self.insts.clone() {
                    o.sb(inst, self.id, SbCall::EnableEvents { filter: self.filter, action });
                }
            }
            Phase::InitialSync => {
                for inst in self.insts.clone() {
                    if self.scope.multi_flow {
                        o.sb(
                            inst,
                            self.id,
                            SbCall::GetMultiflow { filter: self.filter, stream: false },
                        );
                    }
                    if self.scope.all_flows {
                        o.sb(inst, self.id, SbCall::GetAllflows);
                    }
                }
            }
            Phase::Running => {}
        }
        self.arm_watchdog(o);
    }

    fn pump_group(&mut self, o: &mut OpCtx<'_, '_>, gid: FlowId) {
        let Some(group) = self.groups.get_mut(&gid) else {
            return;
        };
        if group.busy {
            return;
        }
        let Some((origin, mut pkt)) = group.queue.pop_front() else {
            return;
        };
        group.busy = true;
        group.origin = Some(origin);
        group.waiting_uid = Some(pkt.uid);
        group.span = Some(o.span_begin_under(self.sp_root, "share.sync_cycle"));
        // Inject at the originating instance, marked so it is processed
        // despite the drop-action event filter.
        pkt.do_not_drop = true;
        o.to_switch(Msg::PacketOut { packet: pkt, to: origin });
    }

    /// Event dispatch.
    pub fn on_event(&mut self, o: &mut OpCtx<'_, '_>, from: NodeId, ev: &NfEvent) {
        if self.torn_down {
            return;
        }
        match ev {
            NfEvent::Received(pkt) => {
                if matches!(self.consistency, ConsistencyLevel::Strict) || pkt.do_not_drop {
                    // Strict consumes packets via packet-in; a marked
                    // packet is our own injection echoing back.
                    return;
                }
                if self.phase != Phase::Running {
                    // Packets racing the arming phase are dropped by the
                    // NF (action=drop) and resync via the next sync cycle.
                    return;
                }
                let gid = self.group_of(pkt);
                self.group_entry(gid).queue.push_back((from, pkt.clone()));
                self.pump_group(o, gid);
            }
            NfEvent::Processed(pkt) => {
                let gid = self.group_of(pkt);
                let ready = self
                    .groups
                    .get(&gid)
                    .map(|g| g.busy && g.waiting_uid == Some(pkt.uid))
                    .unwrap_or(false);
                if ready {
                    // Pull the updated state from the origin.
                    let sub = self.groups[&gid].sub;
                    let filter = match self.consistency {
                        ConsistencyLevel::Strong => Self::group_filter(gid.nw_src),
                        ConsistencyLevel::Strict => Self::group_filter(Some(pkt.src_ip())),
                    };
                    o.sb(from, sub, SbCall::GetMultiflow { filter, stream: false });
                }
            }
        }
    }

    /// Strict mode: a matching packet arrived at the controller.
    pub fn on_packet_in(&mut self, o: &mut OpCtx<'_, '_>, pkt: &Packet) {
        if self.torn_down {
            return;
        }
        if !matches!(self.consistency, ConsistencyLevel::Strict) {
            return;
        }
        let inst = self
            .route
            .iter()
            .find(|(f, _)| f.matches_packet(pkt))
            .map(|(_, n)| *n)
            .unwrap_or(self.insts[0]);
        let gid = FlowId::default();
        self.group_entry(gid).queue.push_back((inst, pkt.clone()));
        self.pump_group(o, gid);
    }

    /// Southbound ack dispatch. `op` is the correlation id the reply came
    /// back with (base id or a group sub-id).
    pub fn on_sb_ack(&mut self, o: &mut OpCtx<'_, '_>, from: NodeId, op: OpId, reply: SbReply) {
        if self.torn_down {
            return;
        }
        if op == self.id {
            // Base-id control traffic: arming + initial sync.
            match (self.phase, reply) {
                // Phase advancement keys off `pending_insts`, not a bare
                // count: watchdog retries re-send to every instance, so a
                // reachable one acks twice — a count would hit zero and
                // advance with the unreachable instance still un-armed.
                (Phase::Arming, SbReply::Done) => {
                    self.acks_outstanding = self.acks_outstanding.saturating_sub(1);
                    self.settle_pending(from);
                    if self.pending_insts.is_empty() {
                        self.begin_initial_sync(o);
                    }
                }
                (Phase::InitialSync, SbReply::Chunks { chunks }) => {
                    if !self.pending_insts.contains(&from) {
                        return; // duplicate reply from a retry re-send
                    }
                    self.init_chunks.extend(chunks);
                    self.init_gets_outstanding = self.init_gets_outstanding.saturating_sub(1);
                    self.settle_pending(from);
                    if self.pending_insts.is_empty() {
                        self.finish_initial_sync(o);
                    }
                }
                (_, SbReply::Done) => {
                    self.acks_outstanding = self.acks_outstanding.saturating_sub(1);
                }
                _ => {}
            }
            return;
        }
        // Group traffic.
        let Some(gid) = self.sub_index.get(&op).copied() else {
            return;
        };
        match reply {
            SbReply::Chunks { chunks } => {
                let origin = self.groups[&gid].origin;
                let others: Vec<NodeId> =
                    self.insts.iter().copied().filter(|i| Some(*i) != origin).collect();
                if chunks.is_empty() || others.is_empty() {
                    self.cycle_done(o, gid);
                    return;
                }
                self.report.bytes += chunks.iter().map(|c| c.len() as u64).sum::<u64>();
                self.report.chunks += chunks.len();
                let sub = self.groups[&gid].sub;
                self.groups.get_mut(&gid).unwrap().pending_puts = others.len();
                for inst in others {
                    o.sb(inst, sub, SbCall::PutMultiflow { chunks: chunks.clone() });
                }
            }
            SbReply::Done => {
                let group = self.groups.get_mut(&gid).expect("group");
                if group.pending_puts > 0 {
                    group.pending_puts -= 1;
                    if group.pending_puts == 0 {
                        self.cycle_done(o, gid);
                    }
                }
            }
            _ => {}
        }
    }

    fn cycle_done(&mut self, o: &mut OpCtx<'_, '_>, gid: FlowId) {
        let group = self.groups.get_mut(&gid).expect("group");
        group.busy = false;
        group.waiting_uid = None;
        group.origin = None;
        if let Some(s) = group.span.take() {
            o.tel.end_at(s, o.ctx.now().as_nanos());
        }
        self.packets_synced += 1;
        self.pump_group(o, gid);
    }

    /// Timer dispatch: the setup-phase watchdog. A stalled `Arming` or
    /// `InitialSync` re-sends its (idempotent) calls with backoff; when
    /// the budget runs out, the share proceeds degraded with what it has
    /// and the report says so — a share never completes, so wedging it
    /// would silently lose the whole steady state.
    pub fn on_timer(&mut self, o: &mut OpCtx<'_, '_>, tag: u32) {
        if tag & TAG_WATCHDOG_MASK != TAG_WATCHDOG_BASE
            || (tag & 0xFFFF) as u16 != self.watchdog_gen
            || self.phase == Phase::Running
        {
            return; // stale, or the setup already finished
        }
        if self.retries_left > 0 {
            self.retries_left -= 1;
            self.report.retries += 1;
            let backoff = self.backoff;
            self.backoff = self.backoff + self.backoff;
            match self.phase {
                Phase::Arming => {
                    let action = self.event_action();
                    for inst in self.insts.clone() {
                        o.sb_after(
                            inst,
                            self.id,
                            SbCall::EnableEvents { filter: self.filter, action },
                            backoff,
                        );
                    }
                }
                Phase::InitialSync => {
                    for inst in self.insts.clone() {
                        if self.scope.multi_flow {
                            o.sb_after(
                                inst,
                                self.id,
                                SbCall::GetMultiflow { filter: self.filter, stream: false },
                                backoff,
                            );
                        }
                        if self.scope.all_flows {
                            o.sb_after(inst, self.id, SbCall::GetAllflows, backoff);
                        }
                    }
                }
                Phase::Running => {}
            }
            self.rearm_after(o, backoff);
        } else if o.cfg.op.strict_share {
            // Strict mode: an instance that never acked its setup call is
            // out of sync with the share group; proceeding would hand it
            // live traffic against stale state. Tear the share down —
            // disable the event filters everywhere (best effort: an
            // unreachable instance is re-synced by the restart
            // announcement path when it comes back) and report exactly
            // which instances were left behind.
            let out = self.out_of_sync();
            self.report.abort(
                format!(
                    "share setup stalled in {:?} ({} retries exhausted); torn down, out-of-sync instances: {:?}",
                    self.phase, o.cfg.op.sb_retries, out
                ),
                out.first().copied(),
            );
            // The structured list rides on the report unconditionally: a
            // teardown that caught zero queued packets still names the
            // instances it left behind (previously only the reason string
            // carried them, so harnesses reading the report saw nothing).
            self.report.out_of_sync = out;
            self.torn_down = true;
            self.jlog.push(JournalPhase::Aborted);
            for s in [self.sp_arm.take(), self.sp_init.take(), self.sp_root.take()]
                .into_iter()
                .flatten()
            {
                o.span_end(s);
            }
            o.tel_event("share.teardown", None);
            // Packets queued for an inject → sync cycle that will now
            // never run were dropped at their instance: account them.
            let mut lost: Vec<u64> = self
                .groups
                .values()
                .flat_map(|g| g.queue.iter().map(|(_, p)| p.uid))
                .collect();
            lost.sort_unstable();
            lost.dedup();
            self.report.abort_lost.extend(lost);
            for inst in self.insts.clone() {
                o.sb(inst, self.id, SbCall::DisableEvents { filter: self.filter });
            }
            self.groups.clear();
            self.sub_index.clear();
            self.disarm_watchdog();
        } else {
            self.report.abort(
                format!("share setup stalled in {:?} ({} retries exhausted)",
                    self.phase, o.cfg.op.sb_retries),
                None,
            );
            // Proceed degraded rather than wedge (the historical default;
            // see `OpConfig::strict_share` for the teardown alternative).
            match self.phase {
                Phase::Arming => {
                    self.acks_outstanding = 0;
                    self.begin_initial_sync(o);
                }
                Phase::InitialSync => {
                    self.init_gets_outstanding = 0;
                    self.finish_initial_sync(o);
                }
                Phase::Running => {}
            }
        }
    }
}
