//! Northbound operation state machines.
//!
//! Each operation (`move`, `copy`, `share`) is a state machine owned by
//! the controller node and advanced by the messages it receives: southbound
//! acks, NF events, packet-ins, flow-mod confirmations, counter replies,
//! and timers. The machines never block; every wait in the paper's
//! pseudo-code (Figure 6) is a state.

pub mod copy_op;
pub mod move_op;
pub mod report;
pub mod share_op;

use opennf_sim::{Ctx, Dur, NodeId, Time};
use opennf_telemetry::{SpanId, Telemetry};

use crate::config::NetConfig;
use crate::msg::{Msg, OpId, SbCall};

/// What an op needs to act: the node context plus the controller's
/// service-time offset (the controller is a serial CPU; every reaction to
/// a message is delayed by the controller's busy time, which is how the
/// Figure 13 scalability behaviour arises).
pub struct OpCtx<'a, 'b> {
    /// Raw simulation context.
    pub ctx: &'a mut Ctx<'b, Msg>,
    /// Cost/latency constants.
    pub cfg: &'a NetConfig,
    /// The switch (the controller's primary switch; also where packet-outs
    /// and counter queries go).
    pub sw: NodeId,
    /// Every switch in the topology, in chain order starting at the
    /// ingress switch — forwarding updates fan out to all of them so each
    /// switch on a flow's path resolves the rule through its own ports.
    /// Length 1 (just `sw`) in the classic single-switch topology.
    pub switches: &'a [NodeId],
    /// Shard tag for telemetry spans (`Some("shard=N")` only when the
    /// control plane is sharded, keeping single-shard traces unchanged).
    pub shard_arg: Option<&'a str>,
    /// Controller service offset for this message.
    pub off: Dur,
    /// The run's telemetry (manual clock, stamped by the controller node
    /// before each dispatch).
    pub tel: &'a Telemetry,
    /// The controller's restart epoch (0 until its first recovery pass).
    pub epoch: u64,
    /// Mint for fence sequence numbers (shared across all ops so every
    /// fenced message in an epoch carries a distinct `(epoch, seq)`).
    pub fence: &'a mut u64,
    /// Set by the recovery pass: every southbound call issued through
    /// this context goes out as [`Msg::SbFenced`], so an instance that
    /// already applied the pre-crash original discards the reissue
    /// instead of double-applying.
    pub fenced: bool,
}

impl OpCtx<'_, '_> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// Opens a telemetry span stamped with the current virtual time (and
    /// tagged with the issuing shard when the control plane is sharded).
    pub fn span_begin(&self, name: &'static str) -> SpanId {
        match self.shard_arg {
            Some(tag) => self.tel.begin_at_arg(name, self.now().as_nanos(), Some(tag.to_string())),
            None => self.tel.begin_at(name, self.now().as_nanos()),
        }
    }

    /// Opens a per-op *root* span (named exactly `move`/`copy`/`share`,
    /// parentless, tagged `op=<id>`). Ops parent their phase spans under
    /// this root so the trace analyzer can group interleaved ops by
    /// parentage instead of guessing from thread stacks.
    pub fn op_root(&self, kind: &'static str, op: OpId) -> SpanId {
        let mut arg = format!("op={}", op.0);
        if let Some(tag) = self.shard_arg {
            arg.push(' ');
            arg.push_str(tag);
        }
        self.tel.begin_linked_at_arg(0, kind, self.now().as_nanos(), Some(arg))
    }

    /// Opens a phase span under the op's root (falling back to plain
    /// stack attribution when the op never opened a root — e.g. an op
    /// resumed from the journal by a pre-root controller build).
    pub fn span_begin_under(&self, root: Option<SpanId>, name: &'static str) -> SpanId {
        match root {
            Some(r) => self.tel.begin_under_at_arg(
                r,
                name,
                self.now().as_nanos(),
                self.shard_arg.map(str::to_string),
            ),
            None => self.span_begin(name),
        }
    }

    /// Closes a telemetry span at the current virtual time.
    pub fn span_end(&self, span: SpanId) {
        self.tel.end_at(span, self.now().as_nanos());
    }

    /// Records an instantaneous telemetry event at the current virtual
    /// time.
    pub fn tel_event(&self, name: &'static str, arg: Option<String>) {
        self.tel.event_at(name, self.now().as_nanos(), arg);
    }

    /// Wraps a southbound call for the wire: plain in normal operation,
    /// fenced with a fresh `(epoch, seq)` during the recovery pass.
    fn wrap(&mut self, op: OpId, call: SbCall) -> Msg {
        if self.fenced {
            let seq = *self.fence;
            *self.fence += 1;
            Msg::SbFenced { epoch: self.epoch, seq, op, call }
        } else {
            Msg::Sb { op, call }
        }
    }

    /// Issues a southbound call.
    pub fn sb(&mut self, inst: NodeId, op: OpId, call: SbCall) {
        let d = self.off + self.cfg.ctrl_to_nf;
        let msg = self.wrap(op, call);
        self.ctx.send(inst, d, msg);
    }

    /// Issues a southbound call after an extra delay (retry backoff).
    pub fn sb_after(&mut self, inst: NodeId, op: OpId, call: SbCall, extra: Dur) {
        let d = self.off + self.cfg.ctrl_to_nf + extra;
        let msg = self.wrap(op, call);
        self.ctx.send(inst, d, msg);
    }

    /// Sends a control message to the switch.
    pub fn to_switch(&mut self, msg: Msg) {
        let d = self.off + self.cfg.sw_to_ctrl;
        self.ctx.send(self.sw, d, msg);
    }

    /// Sends a control message to a specific switch (multi-switch
    /// forwarding updates fan the same flow-mod to every path switch).
    pub fn to_switch_at(&mut self, sw: NodeId, msg: Msg) {
        let d = self.off + self.cfg.sw_to_ctrl;
        self.ctx.send(sw, d, msg);
    }

    /// Arms a timer back to the controller.
    pub fn timer(&mut self, op: OpId, tag: u32, delay: Dur) {
        self.ctx.send_self(self.off + delay, Msg::Timer { op, tag });
    }
}
