//! Per-operation outcome reports: what the experiment harnesses read.

use serde::{Deserialize, Serialize};

use crate::msg::OpId;
use opennf_sim::NodeId;

/// How a northbound operation ended.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OpOutcome {
    /// The operation ran to completion with its guarantees intact.
    #[default]
    Completed,
    /// The operation was abandoned after a failure; any half-applied
    /// changes were rolled back, and `OpReport::abort_lost` accounts for
    /// packets whose fate the controller can no longer guarantee.
    Aborted {
        /// Why the operation gave up (phase + exhausted retries, crash…).
        reason: String,
    },
}

impl OpOutcome {
    /// True if the operation was aborted.
    pub fn is_aborted(&self) -> bool {
        matches!(self, OpOutcome::Aborted { .. })
    }
}

/// Summary of one completed northbound operation. Serializable so
/// harnesses (the conformance soak, the bench suite) can round-trip
/// reports through JSON repro logs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpReport {
    /// Operation id.
    pub op: OpId,
    /// Human-readable kind, e.g. `"move[LF PL+ER]"`, `"copy"`.
    pub kind: String,
    /// Virtual start time (command receipt), ns.
    pub start_ns: u64,
    /// Virtual completion time, ns.
    pub end_ns: u64,
    /// State chunks transferred.
    pub chunks: usize,
    /// State bytes transferred.
    pub bytes: u64,
    /// Events buffered at the controller during the op.
    pub events_buffered: usize,
    /// Events forwarded to the destination via packet-out.
    pub events_released: usize,
    /// Packet-ins received (order-preserving phase window).
    pub packet_ins: usize,
    /// Completed, or aborted with a reason.
    pub outcome: OpOutcome,
    /// Southbound calls re-sent after a watchdog timeout.
    pub retries: u32,
    /// Uids of packets the controller saw but can no longer account for
    /// after an abort — the explicit loss report that keeps the
    /// exactly-once-or-accounted oracle honest.
    pub abort_lost: Vec<u64>,
    /// P2P aborts only: flows whose chunk batches were still in flight on
    /// the direct src → dst link when the transfer was abandoned. Kept
    /// separate from `abort_lost` (flow ids, not packet uids): the source
    /// retained its copy (copy-then-delete), so no packet is lost — but
    /// the accounting records exactly which transfers were cut short.
    pub p2p_inflight: Vec<opennf_packet::FlowId>,
    /// The instance blamed for an abort (unresponsive or crashed), if the
    /// failure localized to one.
    pub failed_inst: Option<NodeId>,
    /// Strict-share teardowns: every instance whose setup ack never
    /// arrived, i.e. the instances left out of sync with the share group.
    /// Populated unconditionally on teardown — a share that spanned zero
    /// queued packets still names the instances it left behind.
    #[serde(default)]
    pub out_of_sync: Vec<NodeId>,
}

impl OpReport {
    /// Creates an empty report started at `start_ns`.
    pub fn new(op: OpId, kind: String, start_ns: u64) -> Self {
        OpReport {
            op,
            kind,
            start_ns,
            end_ns: start_ns,
            chunks: 0,
            bytes: 0,
            events_buffered: 0,
            events_released: 0,
            packet_ins: 0,
            outcome: OpOutcome::Completed,
            retries: 0,
            abort_lost: Vec::new(),
            p2p_inflight: Vec::new(),
            failed_inst: None,
            out_of_sync: Vec::new(),
        }
    }

    /// Marks the report aborted with `reason`, blaming `failed_inst` if
    /// the failure localized to one instance.
    pub fn abort(&mut self, reason: impl Into<String>, failed_inst: Option<NodeId>) {
        self.outcome = OpOutcome::Aborted { reason: reason.into() };
        if self.failed_inst.is_none() {
            self.failed_inst = failed_inst;
        }
    }

    /// Operation duration in fractional milliseconds.
    pub fn duration_ms(&self) -> f64 {
        (self.end_ns.saturating_sub(self.start_ns)) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_computes() {
        let mut r = OpReport::new(OpId(1), "move".into(), 1_000_000);
        r.end_ns = 3_500_000;
        assert!((r.duration_ms() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn duration_saturates() {
        let r = OpReport::new(OpId(1), "move".into(), 5);
        assert_eq!(r.duration_ms(), 0.0);
    }
}
