//! Per-operation outcome reports: what the experiment harnesses read.

use crate::msg::OpId;

/// Summary of one completed northbound operation.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Operation id.
    pub op: OpId,
    /// Human-readable kind, e.g. `"move[LF PL+ER]"`, `"copy"`.
    pub kind: String,
    /// Virtual start time (command receipt), ns.
    pub start_ns: u64,
    /// Virtual completion time, ns.
    pub end_ns: u64,
    /// State chunks transferred.
    pub chunks: usize,
    /// State bytes transferred.
    pub bytes: u64,
    /// Events buffered at the controller during the op.
    pub events_buffered: usize,
    /// Events forwarded to the destination via packet-out.
    pub events_released: usize,
    /// Packet-ins received (order-preserving phase window).
    pub packet_ins: usize,
}

impl OpReport {
    /// Creates an empty report started at `start_ns`.
    pub fn new(op: OpId, kind: String, start_ns: u64) -> Self {
        OpReport {
            op,
            kind,
            start_ns,
            end_ns: start_ns,
            chunks: 0,
            bytes: 0,
            events_buffered: 0,
            events_released: 0,
            packet_ins: 0,
        }
    }

    /// Operation duration in fractional milliseconds.
    pub fn duration_ms(&self) -> f64 {
        (self.end_ns.saturating_sub(self.start_ns)) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_computes() {
        let mut r = OpReport::new(OpId(1), "move".into(), 1_000_000);
        r.end_ns = 3_500_000;
        assert!((r.duration_ms() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn duration_saturates() {
        let r = OpReport::new(OpId(1), "move".into(), 5);
        assert_eq!(r.duration_ms(), 0.0);
    }
}
