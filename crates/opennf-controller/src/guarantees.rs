//! Machine-checked guarantee oracles.
//!
//! §5.1 defines the two move guarantees:
//!
//! * **Loss-free** — "All state updates resulting from packet processing
//!   should be reflected at the destination instance, and all packets the
//!   switch receives should be processed."
//! * **Order-preserving** — "All packets should be processed in the order
//!   they were forwarded to the NF instances by the switch." The property
//!   "applies within one direction of a flow …, across both directions of
//!   a flow …, and, for moves including multi-flow state, across flows."
//!
//! The paper proves its protocols satisfy these in a tech report; this
//! reproduction *checks them on every run*: the switch records the order
//! in which it first forwarded each packet ([`crate::SwitchNode`]'s
//! `forward_log`) and each NF instance records the order in which it
//! processed packets; the oracle cross-checks. Two ordering scopes are
//! reported:
//!
//! * **per-flow** (`reordered_per_flow`) — inversions between packets of
//!   the *same connection*: what every order-preserving move must prevent;
//! * **global** (`reordered_global`) — inversions across all packets: what
//!   a move of multi-flow state (and the buffer-everything, non-ER
//!   order-preserving move) additionally prevents. Early release trades
//!   global ordering away by design, per-flow ordering never.

use std::collections::{HashMap, HashSet};

use opennf_packet::{ConnKey, Filter, Packet};
use opennf_sim::NodeId;

/// Outcome of checking one run.
#[derive(Debug, Clone, Default)]
pub struct GuaranteeReport {
    /// Packets the switch forwarded that no instance ever processed.
    pub lost: Vec<u64>,
    /// Packets processed more than once (across all instances).
    pub duplicated: Vec<u64>,
    /// Forwarded-but-unprocessed packets whose loss is *accounted for* —
    /// excused via [`Oracle::excuse`] because the fault log or an abort
    /// report explains their fate.
    pub excused_lost: Vec<u64>,
    /// Multiply-processed packets whose duplication is accounted for
    /// (e.g. a fault-injected duplicate delivery).
    pub excused_duplicated: Vec<u64>,
    /// Packets processed after a later-forwarded packet of the *same
    /// connection* had already been processed.
    pub reordered_per_flow: Vec<u64>,
    /// Packets processed after any later-forwarded packet had already
    /// been processed.
    pub reordered_global: Vec<u64>,
    /// Total packets the switch forwarded.
    pub forwarded: usize,
    /// Total packets processed across instances.
    pub processed: usize,
}

impl GuaranteeReport {
    /// True iff no forwarded packet was lost or duplicated.
    pub fn is_loss_free(&self) -> bool {
        self.lost.is_empty() && self.duplicated.is_empty()
    }

    /// The fault-run guarantee: every forwarded packet was processed
    /// exactly once, or its absence/duplication is explicitly accounted
    /// for (fault log or abort report). An operation under injected
    /// failures must never *silently* lose or duplicate a packet.
    pub fn is_exactly_once_or_accounted(&self) -> bool {
        self.lost.is_empty() && self.duplicated.is_empty()
    }

    /// True iff processing order matched switch forwarding order within
    /// every connection — the §5.1.2 guarantee for per-flow moves.
    pub fn is_order_preserving(&self) -> bool {
        self.reordered_per_flow.is_empty()
    }

    /// True iff processing order matched switch forwarding order across
    /// *all* packets — the stronger property a non-early-release
    /// order-preserving move (and a strict share) provides.
    pub fn is_globally_order_preserving(&self) -> bool {
        self.reordered_global.is_empty()
    }
}

/// The oracle. Build one from the switch's forwarding log, then feed it
/// each instance's processing sequence (with processing timestamps so the
/// cross-instance order is well-defined).
pub struct Oracle {
    /// uid → (forwarding index, connection).
    forward_index: HashMap<u64, (usize, ConnKey)>,
    forwarded_in_order: Vec<u64>,
    /// `(done_ns, seq, uid)` processing events across all instances.
    processing: Vec<(u64, usize, u64)>,
    seq: usize,
    /// Packets whose loss or duplication is accounted for.
    excused: HashSet<u64>,
}

impl Oracle {
    /// Creates an oracle from the switch forwarding log (`(uid, conn)` in
    /// first-forwarding order; duplicates collapse to the first
    /// occurrence).
    pub fn new(forward_log: &[(u64, ConnKey)]) -> Self {
        let mut forward_index = HashMap::new();
        let mut forwarded_in_order = Vec::new();
        for (uid, conn) in forward_log {
            forward_index.entry(*uid).or_insert_with(|| {
                forwarded_in_order.push(*uid);
                (forwarded_in_order.len() - 1, *conn)
            });
        }
        Oracle {
            forward_index,
            forwarded_in_order,
            processing: Vec::new(),
            seq: 0,
            excused: HashSet::new(),
        }
    }

    /// Excuses packets whose loss or duplication is already accounted for
    /// elsewhere — fault-injected drops/duplicates recorded in the
    /// engine's fault log, or uids listed in an operation's abort report.
    /// Excused packets show up in `excused_lost`/`excused_duplicated`
    /// rather than failing the run.
    pub fn excuse(&mut self, uids: impl IntoIterator<Item = u64>) {
        self.excused.extend(uids);
    }

    /// Restricts the oracle to a subset of packets (e.g. only the flows a
    /// move covered).
    pub fn retain(&mut self, keep: impl Fn(u64) -> bool) {
        self.forwarded_in_order.retain(|uid| keep(*uid));
        let conns: HashMap<u64, ConnKey> =
            self.forward_index.iter().map(|(u, (_, c))| (*u, *c)).collect();
        self.forward_index = self
            .forwarded_in_order
            .iter()
            .enumerate()
            .map(|(i, uid)| (*uid, (i, conns[uid])))
            .collect();
        self.processing.retain(|(_, _, uid)| keep(*uid));
    }

    /// Adds one instance's processing records: `(uid, done_ns)` pairs in
    /// that instance's processing order.
    pub fn add_instance(&mut self, records: impl IntoIterator<Item = (u64, u64)>) {
        for (uid, done_ns) in records {
            self.processing.push((done_ns, self.seq, uid));
            self.seq += 1;
        }
    }

    /// Runs the checks.
    pub fn check(&self) -> GuaranteeReport {
        let mut report = GuaranteeReport {
            forwarded: self.forwarded_in_order.len(),
            ..GuaranteeReport::default()
        };

        // Sort processing events by completion time (ties by insertion —
        // i.e. per-instance order).
        let mut events = self.processing.clone();
        events.sort();
        report.processed = events.len();

        let mut seen: HashSet<u64> = HashSet::new();
        let mut max_global: Option<usize> = None;
        let mut max_per_conn: HashMap<ConnKey, usize> = HashMap::new();
        for (_, _, uid) in &events {
            if !seen.insert(*uid) {
                if self.excused.contains(uid) {
                    report.excused_duplicated.push(*uid);
                } else {
                    report.duplicated.push(*uid);
                }
                continue;
            }
            if let Some((idx, conn)) = self.forward_index.get(uid) {
                if let Some(max) = max_global {
                    if *idx < max {
                        report.reordered_global.push(*uid);
                    }
                }
                max_global = Some(max_global.unwrap_or(0).max(*idx));
                let entry = max_per_conn.entry(*conn).or_insert(*idx);
                if *idx < *entry {
                    report.reordered_per_flow.push(*uid);
                } else {
                    *entry = *idx;
                }
            }
            // Packets processed but never forwarded by the switch (e.g.
            // injected directly) are ignored for ordering.
        }
        for uid in &self.forwarded_in_order {
            if !seen.contains(uid) {
                if self.excused.contains(uid) {
                    report.excused_lost.push(*uid);
                } else {
                    report.lost.push(*uid);
                }
            }
        }
        report
    }
}

/// One packet a switch delivered to an NF instance that no longer owned
/// its flow — a stale forwarding rule survived a committed move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathViolation {
    /// The switch that made the stale delivery.
    pub switch: NodeId,
    /// The packet's uid.
    pub uid: u64,
    /// When the packet entered the network.
    pub ingress_ns: u64,
    /// When the switch forwarded it.
    pub forwarded_ns: u64,
    /// The stale target (the move's old source instance).
    pub stale_dst: NodeId,
    /// When the move that re-owned the flow committed.
    pub commit_ns: u64,
}

/// One final-hop delivery from a switch's forwarding log:
/// `(virtual time forwarded, packet, locally attached NF delivered to)`.
pub type NfDelivery = (u64, Packet, NodeId);

/// The multi-switch path-consistency oracle: after a move *commits*
/// (which strictly follows every path switch acking the new rule), no
/// switch may deliver a packet that **originated after the commit** to
/// the move's old source. Packets already in flight at commit time are
/// exempt — hence the comparison against the packet's ingress time, not
/// its forwarding time, which needs no slack constant.
///
/// Inputs: each switch's final-hop delivery log (`(t_ns, packet, nf)` for
/// every packet handed to a locally attached NF) and every controller
/// shard's committed route flips (`(filter, old_src, commit_ns)`). A flow
/// moved several times is judged against the *latest* flip committed
/// before the packet originated, so a move back to the original instance
/// is not a violation.
pub fn path_consistency_violations(
    switch_logs: &[(NodeId, Vec<NfDelivery>)],
    route_flips: &[(Filter, NodeId, u64)],
) -> Vec<PathViolation> {
    let mut out = Vec::new();
    for (sw, log) in switch_logs {
        for (t_ns, pkt, to) in log {
            let latest = route_flips
                .iter()
                .filter(|(f, _, commit)| *commit < pkt.ingress_ns && f.matches_packet(pkt))
                .max_by_key(|(_, _, commit)| *commit);
            if let Some((_, stale_src, commit_ns)) = latest {
                if to == stale_src {
                    out.push(PathViolation {
                        switch: *sw,
                        uid: pkt.uid,
                        ingress_ns: pkt.ingress_ns,
                        forwarded_ns: *t_ns,
                        stale_dst: *to,
                        commit_ns: *commit_ns,
                    });
                }
            }
        }
    }
    out.sort_by_key(|v| (v.forwarded_ns, v.uid));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_packet::FlowKey;

    fn conn(n: u16) -> ConnKey {
        FlowKey::tcp("10.0.0.1".parse().unwrap(), 1000 + n, "1.1.1.1".parse().unwrap(), 80)
            .conn_key()
    }

    fn log(entries: &[(u64, u16)]) -> Vec<(u64, ConnKey)> {
        entries.iter().map(|(u, c)| (*u, conn(*c))).collect()
    }

    fn times(uids: &[u64], start: u64) -> Vec<(u64, u64)> {
        uids.iter().enumerate().map(|(i, u)| (*u, start + i as u64)).collect()
    }

    #[test]
    fn clean_run_passes_everything() {
        let mut o = Oracle::new(&log(&[(1, 0), (2, 0), (3, 1), (4, 1)]));
        o.add_instance(times(&[1, 2], 10));
        o.add_instance(times(&[3, 4], 20));
        let r = o.check();
        assert!(r.is_loss_free(), "{r:?}");
        assert!(r.is_order_preserving(), "{r:?}");
        assert!(r.is_globally_order_preserving(), "{r:?}");
        assert_eq!(r.forwarded, 4);
        assert_eq!(r.processed, 4);
    }

    #[test]
    fn detects_loss() {
        let mut o = Oracle::new(&log(&[(1, 0), (2, 0), (3, 0)]));
        o.add_instance(times(&[1, 3], 10));
        let r = o.check();
        assert!(!r.is_loss_free());
        assert_eq!(r.lost, vec![2]);
    }

    #[test]
    fn detects_duplication() {
        let mut o = Oracle::new(&log(&[(1, 0), (2, 0)]));
        o.add_instance(times(&[1, 2], 10));
        o.add_instance(times(&[2], 30));
        let r = o.check();
        assert!(!r.is_loss_free());
        assert_eq!(r.duplicated, vec![2]);
    }

    #[test]
    fn same_flow_inversion_flags_both_scopes() {
        // Flow 0's packets 1 and 3; packet 2 of flow 0 processed last.
        let mut o = Oracle::new(&log(&[(1, 0), (2, 0), (3, 0)]));
        o.add_instance(vec![(1, 10), (3, 20)]);
        o.add_instance(vec![(2, 30)]);
        let r = o.check();
        assert!(r.is_loss_free());
        assert!(!r.is_order_preserving());
        assert!(!r.is_globally_order_preserving());
        assert_eq!(r.reordered_per_flow, vec![2]);
    }

    #[test]
    fn cross_flow_inversion_only_flags_global() {
        // Packet 2 (flow 1) processed after packet 3 (flow 0): global
        // inversion, but each flow's internal order is intact.
        let mut o = Oracle::new(&log(&[(1, 0), (2, 1), (3, 0)]));
        o.add_instance(vec![(1, 10), (3, 20)]);
        o.add_instance(vec![(2, 30)]);
        let r = o.check();
        assert!(r.is_order_preserving(), "{r:?}");
        assert!(!r.is_globally_order_preserving());
        assert_eq!(r.reordered_global, vec![2]);
    }

    #[test]
    fn duplicate_forwarding_collapses_to_first() {
        // Phase-1 rules forward to {src, ctrl}: same uid appears twice in
        // the raw log but defines one position.
        let mut o = Oracle::new(&log(&[(1, 0), (1, 0), (2, 0), (2, 0), (3, 0)]));
        o.add_instance(times(&[1, 2, 3], 10));
        let r = o.check();
        assert!(r.is_loss_free());
        assert_eq!(r.forwarded, 3);
    }

    #[test]
    fn retain_limits_scope() {
        let mut o = Oracle::new(&log(&[(1, 0), (2, 1), (3, 0), (4, 1)]));
        o.add_instance(times(&[1, 3], 10));
        o.retain(|uid| uid % 2 == 1);
        let r = o.check();
        assert!(r.is_loss_free(), "evens are out of scope: {r:?}");
        assert!(r.is_order_preserving());
    }

    #[test]
    fn excused_loss_and_duplication_are_accounted_not_failed() {
        let mut o = Oracle::new(&log(&[(1, 0), (2, 0), (3, 0)]));
        o.add_instance(times(&[1, 3], 10));
        o.add_instance(times(&[3], 30));
        // Without excusal: 2 is lost, 3 duplicated.
        let strict = o.check();
        assert_eq!(strict.lost, vec![2]);
        assert_eq!(strict.duplicated, vec![3]);
        assert!(!strict.is_exactly_once_or_accounted());
        // Excuse both (as a fault log / abort report would).
        o.excuse([2, 3]);
        let r = o.check();
        assert!(r.is_exactly_once_or_accounted(), "{r:?}");
        assert_eq!(r.excused_lost, vec![2]);
        assert_eq!(r.excused_duplicated, vec![3]);
        assert!(r.lost.is_empty() && r.duplicated.is_empty());
    }

    #[test]
    fn unexcused_loss_still_fails_alongside_excused() {
        let mut o = Oracle::new(&log(&[(1, 0), (2, 0), (3, 0)]));
        o.add_instance(times(&[1], 10));
        o.excuse([2]);
        let r = o.check();
        assert_eq!(r.excused_lost, vec![2]);
        assert_eq!(r.lost, vec![3], "3 was silently lost");
        assert!(!r.is_exactly_once_or_accounted());
    }

    #[test]
    fn injected_unforwarded_packets_ignored_for_order() {
        let mut o = Oracle::new(&log(&[(1, 0), (2, 0)]));
        o.add_instance(vec![(99, 5), (1, 10), (2, 20)]);
        let r = o.check();
        assert!(r.is_order_preserving());
        assert_eq!(r.processed, 3);
    }

    fn pkt(uid: u64, ingress_ns: u64) -> Packet {
        let key = FlowKey::tcp(
            "10.0.0.1".parse().unwrap(),
            1000,
            "1.1.1.1".parse().unwrap(),
            80,
        );
        Packet::builder(uid, key).ingress_ns(ingress_ns).build()
    }

    #[test]
    fn path_oracle_flags_stale_delivery_after_commit() {
        let src = NodeId(2);
        let dst = NodeId(3);
        let flips = vec![(Filter::any(), src, 1_000u64)];
        let logs = vec![(
            NodeId(1),
            vec![
                (900u64, pkt(1, 500), src),  // originated pre-commit: exempt
                (1_500u64, pkt(2, 800), src), // in flight at commit: exempt
                (2_000u64, pkt(3, 1_500), dst), // new owner: fine
                (2_100u64, pkt(4, 1_600), src), // stale rule: violation
            ],
        )];
        let v = path_consistency_violations(&logs, &flips);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].uid, 4);
        assert_eq!(v[0].stale_dst, src);
        assert_eq!(v[0].switch, NodeId(1));
    }

    #[test]
    fn path_oracle_judges_against_latest_flip() {
        // A→B at t=1000, back B→A at t=2000: a post-2000 packet may go
        // to A again, but not to B.
        let a = NodeId(2);
        let b = NodeId(3);
        let flips = vec![(Filter::any(), a, 1_000u64), (Filter::any(), b, 2_000u64)];
        let logs = vec![(
            NodeId(1),
            vec![
                (2_500u64, pkt(1, 2_100), a), // back home: fine
                (2_600u64, pkt(2, 2_200), b), // stale rule: violation
            ],
        )];
        let v = path_consistency_violations(&logs, &flips);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].uid, 2);
        assert_eq!(v[0].stale_dst, b);
    }
}
