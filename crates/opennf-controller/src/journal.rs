//! The write-ahead op journal: the controller's durable record of every
//! northbound operation's phase boundaries.
//!
//! The controller enforces OpenNF's guarantees, so a controller crash
//! mid-move would otherwise strand exported state, orphaned event
//! filters, and half-updated forwarding rules. Each op appends a
//! [`JournalRecord`] at every phase boundary (armed, export done,
//! transferred, imported, flushed, committed/aborted), carrying a
//! snapshot of the op's [`OpReport`] at that instant. On restart the
//! recovery pass replays the journal: every op whose last record is not
//! terminal ([`JournalPhase::is_terminal`]) is driven to a deterministic
//! outcome — resumed from its last durable phase when the remaining work
//! is idempotent (a loss-free move past its event flush only needs the
//! route re-installed), or rolled back through the abort path with the
//! loss accounted in `abort_lost`.
//!
//! In the simulator the journal lives on the [`crate::ControllerNode`]
//! struct, which survives a crash window (the engine's crash model is a
//! recovered process, not a fresh one): the struct field *is* the
//! durable store, while the in-flight messages and timers that die with
//! the crash model the volatile state a real controller would lose.

use serde::{Deserialize, Serialize};

use crate::msg::OpId;
use crate::ops::report::OpReport;

/// A durable phase boundary. The five non-terminal phases mirror the
/// five telemetry spans of a move (`move.export` → `move.transfer` →
/// `move.import` → `move.flush` → `move.fwd_update`); copy and share
/// journal the subset they pass through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum JournalPhase {
    /// The op started: filters armed, first export requested.
    Armed,
    /// The source finished exporting the current scope.
    ExportDone,
    /// The far side confirmed the wire transfer.
    Transferred,
    /// Every import was acknowledged.
    Imported,
    /// Controller-buffered events were flushed toward the destination.
    /// Past this point a rollback would reprocess them: recovery must
    /// fail *forward*.
    Flushed,
    /// The op completed with its guarantees intact. Terminal.
    Committed,
    /// The op was abandoned; `OpReport::abort_lost` accounts the loss.
    /// Terminal.
    Aborted,
}

impl JournalPhase {
    /// True for the two phases that end an op's journal stream.
    pub fn is_terminal(self) -> bool {
        matches!(self, JournalPhase::Committed | JournalPhase::Aborted)
    }
}

/// One journal entry: which op crossed which boundary, when, and the
/// op's report snapshot at that instant (the recovery pass rebuilds its
/// picture of the op from these snapshots alone).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalRecord {
    /// The operation.
    pub op: OpId,
    /// The boundary crossed.
    pub phase: JournalPhase,
    /// Virtual time of the boundary, ns.
    pub t_ns: u64,
    /// The op's report as of this boundary.
    pub report: OpReport,
}

/// The journal itself: an append-only record list plus the restart
/// epoch. The epoch increments on every recovery pass and fences the
/// southbound — commands reissued during recovery carry `(epoch, op,
/// seq)` so an instance can discard duplicates and stale-epoch replays.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OpJournal {
    /// Every record appended so far, in append order.
    pub records: Vec<JournalRecord>,
    /// Restart generation: 0 until the first recovery pass.
    pub epoch: u64,
}

impl OpJournal {
    /// An empty journal at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record.
    pub fn append(&mut self, rec: JournalRecord) {
        self.records.push(rec);
    }

    /// The last phase journaled for `op`, if any.
    pub fn last_phase(&self, op: OpId) -> Option<JournalPhase> {
        self.records.iter().rev().find(|r| r.op == op).map(|r| r.phase)
    }

    /// Ops whose journal stream has started but not reached a terminal
    /// phase, with their last durable phase, in ascending op-id order
    /// (the order the recovery pass visits them — part of what makes
    /// recovery deterministic).
    pub fn in_flight(&self) -> Vec<(OpId, JournalPhase)> {
        let mut last: Vec<(OpId, JournalPhase)> = Vec::new();
        for r in &self.records {
            match last.iter_mut().find(|(op, _)| *op == r.op) {
                Some((_, ph)) => *ph = r.phase,
                None => last.push((r.op, r.phase)),
            }
        }
        last.retain(|(_, ph)| !ph.is_terminal());
        last.sort_by_key(|(op, _)| *op);
        last
    }

    /// Truncates the committed prefix: every record belonging to an op
    /// whose stream has reached a terminal phase is dropped, so a
    /// long-lived controller's recovery replay stays O(in-flight) instead
    /// of O(history). Records of in-flight ops are kept in full — recovery
    /// rebuilds its picture of an op from *all* its snapshots, so partial
    /// truncation within an op would be unsound. Compaction is explicit
    /// (an operator/maintenance action), never automatic: post-mortem
    /// dumps of un-compacted journals keep the full phase ledger.
    /// Returns the number of records dropped.
    pub fn compact(&mut self) -> usize {
        let terminal: std::collections::HashSet<OpId> = self
            .records
            .iter()
            .filter(|r| r.phase.is_terminal())
            .map(|r| r.op)
            .collect();
        let before = self.records.len();
        self.records.retain(|r| !terminal.contains(&r.op));
        before - self.records.len()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes the journal (pretty JSON — soak failures dump it next
    /// to the flight recorders for post-mortem reading).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("journal serialization cannot fail")
    }

    /// Deserializes a journal dumped by [`OpJournal::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: u64, phase: JournalPhase, t_ns: u64) -> JournalRecord {
        let mut report = OpReport::new(OpId(op), "move[LF PL]".into(), 0);
        report.end_ns = t_ns;
        if phase == JournalPhase::Aborted {
            report.abort("test", None);
            report.abort_lost = vec![3, 5];
        }
        JournalRecord { op: OpId(op), phase, t_ns, report }
    }

    #[test]
    fn serde_round_trip_preserves_every_field() {
        let mut j = OpJournal::new();
        j.epoch = 2;
        j.append(rec(1 << 20, JournalPhase::Armed, 10));
        j.append(rec(1 << 20, JournalPhase::ExportDone, 20));
        j.append(rec(2 << 20, JournalPhase::Armed, 25));
        j.append(rec(1 << 20, JournalPhase::Flushed, 30));
        j.append(rec(2 << 20, JournalPhase::Aborted, 40));
        let back = OpJournal::from_json(&j.to_json()).expect("round trip");
        assert_eq!(back.epoch, 2);
        assert_eq!(back.records.len(), j.records.len());
        for (a, b) in j.records.iter().zip(&back.records) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.t_ns, b.t_ns);
            assert_eq!(a.report.kind, b.report.kind);
            assert_eq!(a.report.abort_lost, b.report.abort_lost);
            assert_eq!(a.report.outcome.is_aborted(), b.report.outcome.is_aborted());
        }
    }

    #[test]
    fn in_flight_skips_terminal_ops_and_orders_by_id() {
        let mut j = OpJournal::new();
        j.append(rec(3 << 20, JournalPhase::Armed, 1));
        j.append(rec(1 << 20, JournalPhase::Armed, 2));
        j.append(rec(1 << 20, JournalPhase::Flushed, 3));
        j.append(rec(2 << 20, JournalPhase::Armed, 4));
        j.append(rec(2 << 20, JournalPhase::Committed, 5));
        let inflight = j.in_flight();
        assert_eq!(
            inflight,
            vec![
                (OpId(1 << 20), JournalPhase::Flushed),
                (OpId(3 << 20), JournalPhase::Armed),
            ]
        );
        assert_eq!(j.last_phase(OpId(2 << 20)), Some(JournalPhase::Committed));
        assert_eq!(j.last_phase(OpId(9 << 20)), None);
    }

    #[test]
    fn compaction_empties_a_fully_committed_history() {
        // A long-lived controller: 1000 ops, each armed and committed.
        let mut j = OpJournal::new();
        for i in 1..=1000u64 {
            j.append(rec(i << 20, JournalPhase::Armed, i));
            j.append(rec(i << 20, JournalPhase::Committed, i + 1));
        }
        assert_eq!(j.len(), 2000);
        let dropped = j.compact();
        assert_eq!(dropped, 2000);
        assert!(j.is_empty(), "a committed history compacts to empty");
        assert!(j.in_flight().is_empty());
    }

    #[test]
    fn compaction_keeps_every_record_of_a_mid_flight_op() {
        let mut j = OpJournal::new();
        j.epoch = 1;
        j.append(rec(1 << 20, JournalPhase::Armed, 1));
        j.append(rec(1 << 20, JournalPhase::Committed, 2));
        // The mid-flight op's records interleave with committed ones.
        j.append(rec(2 << 20, JournalPhase::Armed, 3));
        j.append(rec(3 << 20, JournalPhase::Armed, 4));
        j.append(rec(2 << 20, JournalPhase::ExportDone, 5));
        j.append(rec(3 << 20, JournalPhase::Aborted, 6));
        j.append(rec(2 << 20, JournalPhase::Transferred, 7));
        let dropped = j.compact();
        assert_eq!(dropped, 4, "committed + aborted streams dropped");
        let phases: Vec<(OpId, JournalPhase)> =
            j.records.iter().map(|r| (r.op, r.phase)).collect();
        assert_eq!(
            phases,
            vec![
                (OpId(2 << 20), JournalPhase::Armed),
                (OpId(2 << 20), JournalPhase::ExportDone),
                (OpId(2 << 20), JournalPhase::Transferred),
            ],
            "the in-flight op survives compaction intact, in order"
        );
        assert_eq!(j.in_flight(), vec![(OpId(2 << 20), JournalPhase::Transferred)]);
        assert_eq!(j.epoch, 1, "compaction never touches the fencing epoch");
        // Compaction is idempotent.
        assert_eq!(j.compact(), 0);
    }

    #[test]
    fn phase_ordering_matches_the_lifecycle() {
        assert!(JournalPhase::Armed < JournalPhase::Flushed);
        assert!(JournalPhase::Flushed < JournalPhase::Committed);
        assert!(JournalPhase::Committed.is_terminal());
        assert!(JournalPhase::Aborted.is_terminal());
        assert!(!JournalPhase::Flushed.is_terminal());
    }
}
