//! A Split/Merge-style migration controller \[34\], as §5.1 describes it:
//!
//! 1. halt matching traffic: install a rule punting it to the controller,
//!    which buffers the packet-ins;
//! 2. drop packets that still arrive at the source instance (in-flight or
//!    queued there) — this loses their updates;
//! 3. move the state (bulk get → del → put);
//! 4. flush the buffer toward the destination and *then* request the
//!    forwarding update — the race of Figure 5: packets punted to the
//!    controller after the flush but before the new rule applies reach
//!    the destination after packets the switch already forwarded directly.

use opennf_controller::msg::{Msg, OpId, SbCall, SbReply};
use opennf_controller::NetConfig;
use opennf_packet::{Filter, Packet};
use opennf_sim::{Ctx, Dur, Node, NodeId};

/// FlowMod tags.
const FM_HALT: u32 = 1;
const FM_ROUTE: u32 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Halting,
    Moving,
    Done,
}

/// A minimal controller implementing only `migrate(f)`.
pub struct SplitMergeController {
    sw: NodeId,
    src: NodeId,
    dst: NodeId,
    filter: Filter,
    /// When to start the migration.
    start_at: Dur,
    cfg: NetConfig,
    phase: Phase,
    buffer: Vec<Packet>,
    flushed: bool,
    pending_acks: usize,
    /// Packets buffered at the controller during the halt.
    pub buffered_count: usize,
    /// Migration start/end (virtual ns).
    pub started_ns: u64,
    /// Completion time (virtual ns).
    pub finished_ns: u64,
}

impl SplitMergeController {
    /// Creates the controller; the migration fires at `start_at`.
    pub fn new(
        cfg: NetConfig,
        sw: NodeId,
        src: NodeId,
        dst: NodeId,
        filter: Filter,
        start_at: Dur,
    ) -> Self {
        SplitMergeController {
            sw,
            src,
            dst,
            filter,
            start_at,
            cfg,
            phase: Phase::Idle,
            buffer: Vec::new(),
            flushed: false,
            pending_acks: 0,
            buffered_count: 0,
            started_ns: 0,
            finished_ns: 0,
        }
    }

    /// True when the migration finished.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    fn sb(&self, ctx: &mut Ctx<'_, Msg>, inst: NodeId, call: SbCall) {
        ctx.send(inst, self.cfg.ctrl_to_nf, Msg::Sb { op: OpId(1), call });
    }
}

impl Node<Msg> for SplitMergeController {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.send_self(self.start_at, Msg::Timer { op: OpId(1), tag: 0 });
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::Timer { .. } if self.phase == Phase::Idle => {
                self.phase = Phase::Halting;
                self.started_ns = ctx.now().as_nanos();
                // Drop anything that still reaches the source (Split/Merge
                // "drops these packets when they are dequeued at srcInst").
                self.sb(ctx, self.src, SbCall::AddDropFilter { filter: self.filter });
                // Halt: punt matching traffic to the controller.
                ctx.send(
                    self.sw,
                    self.cfg.sw_to_ctrl,
                    Msg::FlowMod {
                        op: OpId(1),
                        tag: FM_HALT,
                        priority: 100,
                        filter: self.filter,
                        to_nodes: vec![],
                        to_controller: true,
                    },
                );
            }
            Msg::PacketIn(pkt) => {
                if self.flushed {
                    // The Figure 5 race: late punted packets chase the
                    // directly-forwarded ones.
                    ctx.send(self.sw, self.cfg.sw_to_ctrl, Msg::PacketOut { packet: pkt, to: self.dst });
                } else {
                    self.buffered_count += 1;
                    self.buffer.push(pkt);
                }
            }
            Msg::FlowModApplied { tag, .. } => match tag {
                FM_HALT => {
                    self.phase = Phase::Moving;
                    self.sb(
                        ctx,
                        self.src,
                        SbCall::GetPerflow { filter: self.filter, stream: false, late_lock: false },
                    );
                }
                FM_ROUTE => {
                    self.phase = Phase::Done;
                    self.finished_ns = ctx.now().as_nanos();
                }
                _ => {}
            },
            Msg::SbAck { reply, .. } => match reply {
                SbReply::Chunks { chunks } if self.phase == Phase::Moving => {
                    let ids: Vec<_> = chunks.iter().map(|c| c.flow_id).collect();
                    self.sb(ctx, self.src, SbCall::DelPerflow { flow_ids: ids });
                    self.pending_acks += 1;
                    if chunks.is_empty() {
                        // Nothing to move; skip the put.
                        return;
                    }
                    self.pending_acks += 1;
                    self.sb(ctx, self.dst, SbCall::PutPerflow { chunks });
                }
                SbReply::Done if self.phase == Phase::Moving && self.pending_acks > 0 => {
                    self.pending_acks -= 1;
                    if self.pending_acks == 0 {
                        // Flush the buffer, then request the route update —
                        // without the two-phase scheme this is racy.
                        for pkt in std::mem::take(&mut self.buffer) {
                            ctx.send(
                                self.sw,
                                self.cfg.sw_to_ctrl,
                                Msg::PacketOut { packet: pkt, to: self.dst },
                            );
                        }
                        self.flushed = true;
                        ctx.send(
                            self.sw,
                            self.cfg.sw_to_ctrl,
                            Msg::FlowMod {
                                op: OpId(1),
                                tag: FM_ROUTE,
                                priority: 101,
                                filter: self.filter,
                                to_nodes: vec![self.dst],
                                to_controller: false,
                            },
                        );
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_controller::guarantees::Oracle;
    use opennf_controller::{NfNode, SwitchNode};
    use opennf_nfs::AssetMonitor;
    use opennf_packet::{FlowKey, TcpFlags};
    use opennf_sim::Engine;
    use std::collections::BTreeMap;

    /// Builds: host → sw → {m1, m2}, Split/Merge controller.
    fn run(pps: u64, flows: u32) -> (Engine<Msg>, NodeId, NodeId, NodeId, NodeId) {
        let cfg = NetConfig::default();
        let mut eng: Engine<Msg> = Engine::new(5);
        // Ids: 0 ctrl, 1 sw, 2 m1, 3 m2, 4 host.
        let ctrl = NodeId(0);
        let swid = NodeId(1);
        let m1 = NodeId(2);
        let m2 = NodeId(3);
        let smc =
            SplitMergeController::new(cfg, swid, m1, m2, Filter::any(), Dur::millis(100));
        assert_eq!(eng.add_node(Box::new(smc)), ctrl);
        let mut ports = BTreeMap::new();
        ports.insert(1u16, m1);
        ports.insert(2u16, m2);
        let mut sw = SwitchNode::new(cfg, ctrl, ports);
        sw.preinstall(0, Filter::any(), &[m1]);
        assert_eq!(eng.add_node(Box::new(sw)), swid);
        assert_eq!(
            eng.add_node(Box::new(NfNode::new("m1", Box::new(AssetMonitor::new()), cfg, ctrl))),
            m1
        );
        assert_eq!(
            eng.add_node(Box::new(NfNode::new("m2", Box::new(AssetMonitor::new()), cfg, ctrl))),
            m2
        );
        // Traffic: steady flows for 600 ms.
        let mut sched = Vec::new();
        let gap = 1_000_000_000 / pps;
        let total = 600_000_000 / gap;
        for i in 0..total {
            let f = (i % flows as u64) as u32;
            let key = FlowKey::tcp(
                format!("10.0.0.{}", f % 250 + 1).parse().unwrap(),
                3000 + f as u16,
                "1.1.1.1".parse().unwrap(),
                80,
            );
            let flags = if i < flows as u64 { TcpFlags::SYN } else { TcpFlags::ACK };
            sched.push((i * gap, Packet::builder(0, key).flags(flags).build()));
        }
        for (i, (_, p)) in sched.iter_mut().enumerate() {
            p.uid = i as u64 + 1;
        }
        let host = eng.add_node(Box::new(opennf_controller::HostNode::new(swid, cfg, sched)));
        assert_eq!(host, NodeId(4));
        eng.run_to_completion(10_000_000);
        (eng, ctrl, swid, m1, m2)
    }

    #[test]
    fn migrate_moves_state_but_violates_guarantees() {
        let (eng, ctrl, swid, m1, m2) = run(2_500, 40);
        let c: &SplitMergeController = eng.node(ctrl);
        assert!(c.is_done());
        assert!(c.buffered_count > 0, "halted traffic was buffered at the controller");

        let n1: &NfNode = eng.node(m1);
        let n2: &NfNode = eng.node(m2);
        assert_eq!(n2.nf_as::<AssetMonitor>().conn_count(), 40, "state moved");
        assert!(n1.harness().drop_count() > 0, "in-flight packets dropped at src");

        // Oracle: loss from the dropped packets.
        let sw: &SwitchNode = eng.node(swid);
        let mut oracle = Oracle::new(&sw.forward_log);
        oracle.add_instance(n1.records.iter().map(|r| (r.uid, r.done_ns)));
        oracle.add_instance(n2.records.iter().map(|r| (r.uid, r.done_ns)));
        let report = oracle.check();
        assert!(!report.is_loss_free(), "Split/Merge migrate loses updates: {report:?}");
    }

    #[test]
    fn migrate_reorders_at_high_rate() {
        // Higher rate widens the Figure 5 race window.
        let (eng, ctrl, swid, m1, m2) = run(10_000, 40);
        let c: &SplitMergeController = eng.node(ctrl);
        assert!(c.is_done());
        let sw: &SwitchNode = eng.node(swid);
        let n1: &NfNode = eng.node(m1);
        let n2: &NfNode = eng.node(m2);
        let mut oracle = Oracle::new(&sw.forward_log);
        oracle.add_instance(n1.records.iter().map(|r| (r.uid, r.done_ns)));
        oracle.add_instance(n2.records.iter().map(|r| (r.uid, r.done_ns)));
        let report = oracle.check();
        assert!(
            !report.is_order_preserving() || !report.is_loss_free(),
            "the flush/route race must violate a guarantee: {report:?}"
        );
    }
}
