//! VM replication \[18\] / process replication \[5\]: clone an NF instance in
//! its entirety. "The additional, unneeded state included in a clone not
//! only wastes memory, but more crucially can cause undesirable NF
//! behavior: e.g., an IDS may generate false alerts" (§2.2). §8.4
//! quantifies both: megabytes of unneeded snapshot delta, and thousands of
//! incorrect conn.log entries when the cloned flows terminate abruptly.

use opennf_nf::{Chunk, NetworkFunction};
use opennf_packet::Filter;

/// Outcome of a wholesale clone.
#[derive(Debug, Clone)]
pub struct VmSnapshot {
    /// Bytes of per-flow state copied.
    pub per_flow_bytes: usize,
    /// Bytes of multi-flow state copied.
    pub multi_flow_bytes: usize,
    /// Bytes of all-flows state copied.
    pub all_flows_bytes: usize,
    /// Chunks copied in total.
    pub chunks: usize,
}

impl VmSnapshot {
    /// Total bytes in the snapshot.
    pub fn total_bytes(&self) -> usize {
        self.per_flow_bytes + self.multi_flow_bytes + self.all_flows_bytes
    }
}

/// Clones **all** state from `src` into `dst` — the VM-replication
/// baseline. Unlike an OpenNF `move`, nothing is filtered, nothing is
/// deleted at the source, and both instances end up holding state for
/// flows they will never see again.
pub fn vm_replicate(src: &mut dyn NetworkFunction, dst: &mut dyn NetworkFunction) -> VmSnapshot {
    let any = Filter::any();
    let per = src.get_perflow(&any);
    let multi = src.get_multiflow(&any);
    let all = src.get_allflows();
    let snap = VmSnapshot {
        per_flow_bytes: per.iter().map(Chunk::len).sum(),
        multi_flow_bytes: multi.iter().map(Chunk::len).sum(),
        all_flows_bytes: all.iter().map(Chunk::len).sum(),
        chunks: per.len() + multi.len() + all.len(),
    };
    dst.put_perflow(per).expect("clone per-flow");
    dst.put_multiflow(multi).expect("clone multi-flow");
    dst.put_allflows(all).expect("clone all-flows");
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_nfs::ids::{Ids, IdsConfig};
    use opennf_nfs::AssetMonitor;
    use opennf_packet::{FlowKey, Packet, TcpFlags};

    fn pkt(uid: u64, sport: u16) -> Packet {
        Packet::builder(
            uid,
            FlowKey::tcp("10.0.0.1".parse().unwrap(), sport, "1.1.1.1".parse().unwrap(), 80),
        )
        .flags(if uid == 1 { TcpFlags::SYN } else { TcpFlags::ACK })
        .ingress_ns(uid * 1000)
        .build()
    }

    #[test]
    fn clone_copies_everything() {
        let mut src = AssetMonitor::new();
        for i in 0..10 {
            src.process_packet(&pkt(i + 1, 4000 + i as u16)).unwrap();
        }
        let mut dst = AssetMonitor::new();
        let snap = vm_replicate(&mut src, &mut dst);
        assert_eq!(dst.conn_count(), src.conn_count());
        assert!(snap.per_flow_bytes > 0);
        assert!(snap.total_bytes() >= snap.per_flow_bytes);
        // Crucially the source still has everything (nothing was deleted).
        assert_eq!(src.conn_count(), 10);
    }

    #[test]
    fn cloned_idle_flows_produce_bogus_conn_log_entries() {
        // Build HTTP-ish activity at the source.
        let mut src = Ids::new(IdsConfig::default());
        for i in 0..20u16 {
            let k = FlowKey::tcp(
                "10.0.0.5".parse().unwrap(),
                4000 + i,
                "1.2.3.4".parse().unwrap(),
                80,
            );
            let p = Packet::builder(i as u64 + 1, k)
                .flags(TcpFlags::ACK)
                .payload(vec![0u8; 64])
                .ingress_ns(1_000_000)
                .build();
            use opennf_nf::NetworkFunction as _;
            src.process_packet(&p).unwrap();
        }
        let mut clone = Ids::new(IdsConfig::default());
        vm_replicate(&mut src, &mut clone);
        use opennf_nf::NetworkFunction as _;
        assert_eq!(clone.conn_count(), 20, "unneeded state present in the clone");
        // The cloned flows never receive another packet; they time out and
        // log abnormal entries — the §8.4 "incorrect entries".
        let expired = clone.expire_idle(10_000_000_000_000);
        assert_eq!(expired, 20);
        let logs = clone.drain_logs();
        let incorrect = logs.iter().filter(|l| Ids::is_abnormal_entry(l)).count();
        assert_eq!(incorrect, 20);
    }
}
