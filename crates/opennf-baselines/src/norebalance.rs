//! Scaling without rebalancing active flows \[22\]: the new instance only
//! receives *new* flows; the old instance must stay up until every
//! pre-existing flow terminates. With the paper's heavy-tailed flow
//! durations ("≈9 % of the HTTP flows in our cloud trace were longer than
//! 25 minutes", §8.4) that means waiting tens of minutes before scale-in —
//! versus an OpenNF move measured in hundreds of milliseconds.

/// Given flow start times and durations (seconds), returns how long after
/// `scale_out_at` the last pre-existing flow finishes — the time the old
/// instance is pinned ("NFs are unnecessarily held up as long as flows are
/// active").
pub fn scale_in_wait_secs(starts: &[f64], durations: &[f64], scale_out_at: f64) -> f64 {
    assert_eq!(starts.len(), durations.len());
    starts
        .iter()
        .zip(durations)
        .filter(|(s, _)| **s <= scale_out_at)
        .map(|(s, d)| (s + d - scale_out_at).max(0.0))
        .fold(0.0, f64::max)
}

/// The fraction of pre-existing flows still active `wait` seconds after
/// scale-out (how much of the old instance's load persists).
pub fn still_active_fraction(starts: &[f64], durations: &[f64], scale_out_at: f64, wait: f64) -> f64 {
    let pre: Vec<_> = starts
        .iter()
        .zip(durations)
        .filter(|(s, _)| **s <= scale_out_at)
        .collect();
    if pre.is_empty() {
        return 0.0;
    }
    let active = pre.iter().filter(|(s, d)| *s + **d > scale_out_at + wait).count();
    active as f64 / pre.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use opennf_trace::heavy_tail_durations;

    #[test]
    fn wait_is_max_residual() {
        let starts = [0.0, 5.0, 20.0];
        let durs = [100.0, 10.0, 50.0];
        // Scale out at t=10: flows 1 (ends 15) and 0 (ends 100) pre-exist.
        let w = scale_in_wait_secs(&starts[..2], &durs[..2], 10.0);
        assert_eq!(w, 90.0);
        // A flow starting after scale-out doesn't pin the old instance.
        let w = scale_in_wait_secs(&starts, &durs, 10.0);
        assert_eq!(w, 90.0);
    }

    #[test]
    fn heavy_tail_pins_instance_for_tens_of_minutes() {
        let durs = heavy_tail_durations(5_000, 7);
        let starts = vec![0.0; durs.len()];
        let wait = scale_in_wait_secs(&starts, &durs, 1.0);
        assert!(
            wait > 25.0 * 60.0,
            "with 9% of flows >25 min the max residual must exceed 25 min: {wait}"
        );
        // And a meaningful fraction is still active at 25 minutes.
        let frac = still_active_fraction(&starts, &durs, 1.0, 25.0 * 60.0);
        assert!((0.04..0.15).contains(&frac), "≈9% expected, got {frac}");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(scale_in_wait_secs(&[], &[], 0.0), 0.0);
        assert_eq!(still_active_fraction(&[], &[], 0.0, 10.0), 0.0);
    }
}
