//! The prior control planes OpenNF is evaluated against (§2.2, §8.4).
//!
//! * [`splitmerge`] — a Split/Merge-style `migrate(f)`: traffic is halted
//!   and buffered at the controller while state moves, packets in flight to
//!   the source are dropped, and a race between the buffer flush and the
//!   forwarding update reorders packets (Figure 5). The oracle shows it is
//!   neither loss-free nor order-preserving.
//! * [`vmrepl`] — VM replication: clone an instance's entire state. The
//!   clone carries *unneeded state* whose flows terminate abruptly,
//!   producing bogus `conn.log` entries (§8.4 quantifies this).
//! * [`norebalance`] — scaling without rebalancing active flows: new flows
//!   go to the new instance, old flows pin the old instance until they
//!   die — tens of minutes under the paper's flow-duration tail.

pub mod norebalance;
pub mod splitmerge;
pub mod vmrepl;

pub use norebalance::scale_in_wait_secs;
pub use splitmerge::SplitMergeController;
pub use vmrepl::{vm_replicate, VmSnapshot};
