//! Spans, metrics, and a flight recorder shared by every OpenNF runtime.
//!
//! The paper's evaluation (§7–§8) is about *where time goes* inside a
//! move/copy/share — serialization vs. transfer vs. event flushing. This
//! crate is the substrate that answers that question in both runtimes:
//!
//! * **Spans** — named intervals (`move.export`, `rt.replay`, …) with
//!   begin/end records. The threaded runtime uses RAII guards on a wall
//!   clock ([`Telemetry::span`] / [`span!`]); the simulator, whose time is
//!   virtual, stamps explicitly ([`Telemetry::begin_at`] /
//!   [`Telemetry::end_at`]) from its own clock. Every span end feeds a
//!   log2 histogram keyed by the span name, so per-phase p50/p95/p99 fall
//!   out for free.
//! * **Metrics** — counters/gauges handed out as `Arc<AtomicU64>` (one
//!   relaxed `fetch_add` on the hot path) and fixed-bucket histograms.
//! * **Flight recorder** — a bounded ring of the most recent records,
//!   dumped on failure as JSONL or a Chrome trace
//!   ([`Telemetry::export_jsonl`] / [`Telemetry::export_chrome`]).
//!
//! A [`Telemetry`] is a cheap `Arc` handle: clone it into every node,
//! worker, and shim of one run. There is deliberately no process-global
//! instance — parallel tests and differential sim/rt runs each get their
//! own isolated timeline. A disabled handle ([`Telemetry::disabled`], or
//! [`Telemetry::set_enabled`]) reduces every operation to one atomic load,
//! which keeps the telemetry-off path within noise on the bulk-move bench.
//!
//! Span-name convention: `<layer>.<phase>` — `move.*`/`copy.*`/`share.*`
//! for northbound operation phases (identical names in both runtimes so
//! traces diff cleanly), `rt.*` for runtime plumbing, `fault.*` for
//! injected faults, `net.*` for switch-level counters.

mod clock;
mod export;
mod metrics;
mod recorder;

pub use export::{parse_jsonl, JsonlSummary, OwnedRec};
pub use metrics::{Hist, HistSnapshot, Registry};
pub use recorder::{Kind, Rec, Ring as Recorder};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use clock::Clock;
use recorder::Ring;

/// Default flight-recorder capacity (records).
pub const DEFAULT_RECORDER_CAPACITY: usize = 4_096;

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: Cell<Option<u64>> = const { Cell::new(None) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn thread_tid() -> u64 {
    TID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

struct Inner {
    enabled: AtomicBool,
    clock: Clock,
    next_span: AtomicU64,
    ring: Mutex<Ring>,
    registry: Registry,
}

/// One run's telemetry: clock + recorder + metrics behind an `Arc`.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

/// An open span. `Copy`, so operation state machines can stash it in a
/// field across messages and close it from a later handler.
#[derive(Debug, Clone, Copy)]
pub struct SpanId {
    id: u64,
    t0: u64,
    name: &'static str,
}

impl SpanId {
    /// The no-op span a disabled handle returns.
    fn none() -> Self {
        SpanId { id: 0, t0: 0, name: "" }
    }

    /// Whether this span is live (came from an enabled handle).
    pub fn is_live(&self) -> bool {
        self.id != 0
    }

    /// The raw record id, for carrying a span reference across a process
    /// or wire boundary (0 for a dead span). Pair with
    /// [`Telemetry::begin_linked_arg`] on the far side.
    pub fn raw(&self) -> u64 {
        self.id
    }
}

/// RAII span for wall-clock runtimes: ends the span when dropped and
/// maintains the thread-local span stack for parent attribution.
pub struct SpanGuard {
    tel: Option<Telemetry>,
    span: SpanId,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(tel) = self.tel.take() {
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
            tel.end(self.span);
        }
    }
}

impl Telemetry {
    fn build(clock: Clock, enabled: bool, capacity: usize) -> Self {
        Self::build_ring(clock, enabled, Ring::new(capacity))
    }

    fn build_ring(clock: Clock, enabled: bool, ring: Ring) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                clock,
                next_span: AtomicU64::new(1),
                ring: Mutex::new(ring),
                registry: Registry::default(),
            }),
        }
    }

    /// Wall-clock telemetry (threaded runtime), enabled, default ring.
    pub fn wall() -> Self {
        Self::build(Clock::wall(), true, DEFAULT_RECORDER_CAPACITY)
    }

    /// Manually clocked telemetry (simulator), enabled, default ring. Drive
    /// it with [`Telemetry::set_time_ns`].
    pub fn manual() -> Self {
        Self::build(Clock::manual(), true, DEFAULT_RECORDER_CAPACITY)
    }

    /// A disabled handle: every operation early-outs on one atomic load.
    pub fn disabled() -> Self {
        Self::build(Clock::wall(), false, 16)
    }

    /// Wall-clock telemetry with an explicit recorder capacity.
    pub fn wall_with_capacity(capacity: usize) -> Self {
        Self::build(Clock::wall(), true, capacity)
    }

    /// Wall-clock telemetry whose recorder keeps only one in `n`
    /// instantaneous events (spans are always kept) — see
    /// [`Recorder::sampled`]. Long fault soaks use this to stretch the
    /// ring's history without losing the span skeleton.
    pub fn wall_sampled(capacity: usize, n: u64) -> Self {
        Self::build_ring(Clock::wall(), true, Ring::sampled(capacity, n))
    }

    /// Manually clocked telemetry with a 1-in-`n` event-sampling recorder.
    pub fn manual_sampled(capacity: usize, n: u64) -> Self {
        Self::build_ring(Clock::manual(), true, Ring::sampled(capacity, n))
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Advances a manual clock (no-op on wall clocks). The simulator calls
    /// this with its virtual now before dispatching each message.
    pub fn set_time_ns(&self, ns: u64) {
        self.inner.clock.set_ns(ns);
    }

    /// Current time on this handle's clock.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    fn push(&self, rec: Rec) {
        self.inner.ring.lock().unwrap().push(rec);
    }

    // ---- spans ----

    /// Opens a span at an explicit timestamp (simulator API).
    pub fn begin_at(&self, name: &'static str, t_ns: u64) -> SpanId {
        self.begin_at_arg(name, t_ns, None)
    }

    /// [`Telemetry::begin_at`] with formatted attributes.
    pub fn begin_at_arg(&self, name: &'static str, t_ns: u64, arg: Option<String>) -> SpanId {
        if !self.enabled() {
            return SpanId::none();
        }
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        self.push(Rec {
            t_ns,
            kind: Kind::Begin,
            id,
            parent,
            tid: thread_tid(),
            name,
            arg,
        });
        SpanId { id, t0: t_ns, name }
    }

    /// Closes a span at an explicit timestamp and feeds the `name`
    /// histogram with its duration.
    pub fn end_at(&self, span: SpanId, t_ns: u64) {
        if span.id == 0 || !self.enabled() {
            return;
        }
        self.push(Rec {
            t_ns,
            kind: Kind::End,
            id: span.id,
            parent: 0,
            tid: thread_tid(),
            name: span.name,
            arg: None,
        });
        self.inner.registry.hist(span.name).record(t_ns.saturating_sub(span.t0));
    }

    /// Opens a span now (this handle's clock) — simulator state machines
    /// that hold the id across messages pair it with [`Telemetry::end`].
    pub fn begin(&self, name: &'static str) -> SpanId {
        self.begin_at(name, self.now_ns())
    }

    /// Opens a span now under an *explicit* parent, bypassing the
    /// thread-local stack. A concurrent op engine interleaving k
    /// operations on one dispatch thread cannot use stack attribution —
    /// whichever op last touched the stack would adopt every other op's
    /// phases — so each op holds its root `SpanId` and parents its phase
    /// spans here.
    pub fn begin_under(&self, parent: SpanId, name: &'static str) -> SpanId {
        self.begin_under_arg(parent, name, None)
    }

    /// [`Telemetry::begin_under`] with formatted attributes.
    pub fn begin_under_arg(
        &self,
        parent: SpanId,
        name: &'static str,
        arg: Option<String>,
    ) -> SpanId {
        self.begin_linked_arg(parent.id, name, arg)
    }

    /// [`Telemetry::begin_under_arg`] at an explicit timestamp — the
    /// simulator's form (its clock is virtual time stamped by the caller),
    /// used by op state machines parenting phase spans under a per-op root.
    pub fn begin_under_at_arg(
        &self,
        parent: SpanId,
        name: &'static str,
        t_ns: u64,
        arg: Option<String>,
    ) -> SpanId {
        self.begin_linked_at_arg(parent.id, name, t_ns, arg)
    }

    /// Opens a span now whose parent is a *raw* span id — the span-link
    /// form for crossing a thread or wire boundary where only the id
    /// traveled (e.g. a worker's frame-decode span linking back to the
    /// controller span whose request is inside the frame). A `parent_id`
    /// of 0 means "no parent", matching [`SpanId::raw`] of a dead span.
    pub fn begin_linked_arg(
        &self,
        parent_id: u64,
        name: &'static str,
        arg: Option<String>,
    ) -> SpanId {
        if !self.enabled() {
            return SpanId::none();
        }
        let t_ns = self.now_ns();
        self.begin_linked_at_arg(parent_id, name, t_ns, arg)
    }

    /// [`Telemetry::begin_linked_arg`] at an explicit timestamp.
    pub fn begin_linked_at_arg(
        &self,
        parent_id: u64,
        name: &'static str,
        t_ns: u64,
        arg: Option<String>,
    ) -> SpanId {
        if !self.enabled() {
            return SpanId::none();
        }
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        self.push(Rec {
            t_ns,
            kind: Kind::Begin,
            id,
            parent: parent_id,
            tid: thread_tid(),
            name,
            arg,
        });
        SpanId { id, t0: t_ns, name }
    }

    /// Closes a span at now.
    pub fn end(&self, span: SpanId) {
        self.end_at(span, self.now_ns());
    }

    /// RAII span on this handle's clock (threaded-runtime API); prefer the
    /// [`span!`] macro, which skips attribute formatting when disabled.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_arg(name, None)
    }

    /// [`Telemetry::span`] with formatted attributes.
    pub fn span_arg(&self, name: &'static str, arg: Option<String>) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard { tel: None, span: SpanId::none() };
        }
        let span = self.begin_at_arg(name, self.now_ns(), arg);
        SPAN_STACK.with(|s| s.borrow_mut().push(span.id));
        SpanGuard { tel: Some(self.clone()), span }
    }

    // ---- events ----

    /// Records an instantaneous event at now.
    pub fn event(&self, name: &'static str, arg: Option<String>) {
        self.event_at(name, self.now_ns(), arg);
    }

    /// Records an instantaneous event at an explicit timestamp.
    pub fn event_at(&self, name: &'static str, t_ns: u64, arg: Option<String>) {
        if !self.enabled() {
            return;
        }
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        self.push(Rec { t_ns, kind: Kind::Event, id: 0, parent, tid: thread_tid(), name, arg });
    }

    // ---- metrics ----

    /// The counter named `name` (hold the `Arc` on hot paths).
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        self.inner.registry.counter(name)
    }

    /// Adds `n` to the counter named `name` (registration-cost path; hot
    /// paths should hold the handle from [`Telemetry::counter`]).
    pub fn add(&self, name: &str, n: u64) {
        if !self.enabled() {
            return;
        }
        self.inner.registry.counter(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the gauge named `name`.
    pub fn gauge_set(&self, name: &str, v: u64) {
        if !self.enabled() {
            return;
        }
        self.inner.registry.gauge(name).store(v, Ordering::Relaxed);
    }

    /// Records `v` into the histogram named `name`.
    pub fn observe(&self, name: &str, v: u64) {
        if !self.enabled() {
            return;
        }
        self.inner.registry.hist(name).record(v);
    }

    /// The metrics registry (for exporters and report builders).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Snapshot of the histogram named `name`, if any value was recorded.
    pub fn hist_snapshot(&self, name: &str) -> Option<HistSnapshot> {
        let h = self.inner.registry.hist_if_present(name)?;
        let s = h.snapshot();
        (s.count > 0).then_some(s)
    }

    // ---- recorder access / export ----

    /// The recorder's current contents, oldest first.
    pub fn records(&self) -> Vec<Rec> {
        self.inner.ring.lock().unwrap().snapshot()
    }

    /// Records evicted from the ring so far.
    pub fn dropped_records(&self) -> u64 {
        self.inner.ring.lock().unwrap().dropped()
    }

    /// Whether the recorder holds any records (dump gates use this).
    pub fn has_records(&self) -> bool {
        !self.inner.ring.lock().unwrap().is_empty()
    }

    /// Names of spans whose name starts with `prefix`, in begin order —
    /// the cross-runtime conformance check compares these sequences.
    pub fn span_sequence(&self, prefix: &str) -> Vec<String> {
        self.records()
            .iter()
            .filter(|r| r.kind == Kind::Begin && r.name.starts_with(prefix))
            .map(|r| r.name.to_string())
            .collect()
    }

    /// [`Telemetry::span_sequence`] relaxed to per-parent order: matching
    /// spans grouped by their parent span id, each group in begin order,
    /// groups ordered by first appearance. With k interleaved ops the
    /// *global* begin order of phase spans is timing-dependent, but each
    /// op's phases must still begin in protocol order under that op's
    /// root span — this is what the k-parallel oracle checks.
    pub fn span_sequences_by_parent(&self, prefix: &str) -> Vec<(u64, Vec<String>)> {
        let mut groups: Vec<(u64, Vec<String>)> = Vec::new();
        for r in self.records() {
            if r.kind == Kind::Begin && r.name.starts_with(prefix) {
                match groups.iter_mut().find(|(p, _)| *p == r.parent) {
                    Some((_, names)) => names.push(r.name.to_string()),
                    None => groups.push((r.parent, vec![r.name.to_string()])),
                }
            }
        }
        groups
    }

    /// JSONL dump: every record plus a final metrics-summary line.
    pub fn export_jsonl(&self) -> String {
        let (records, dropped) = {
            let ring = self.inner.ring.lock().unwrap();
            (ring.snapshot(), ring.dropped())
        };
        export::jsonl(&records, &self.inner.registry, dropped)
    }

    /// Chrome trace-event dump (open in `chrome://tracing` or Perfetto).
    pub fn export_chrome(&self) -> String {
        export::chrome_trace(&self.records())
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::wall()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("records", &self.inner.ring.lock().unwrap().len())
            .finish()
    }
}

/// Opens an RAII span: `span!(tel, "move.export")` or
/// `span!(tel, "move.export", flows = n, round = r)`. Attribute values are
/// formatted with `Display` — and not formatted at all when the handle is
/// disabled, so an off handle costs one atomic load.
#[macro_export]
macro_rules! span {
    ($tel:expr, $name:expr) => {
        $tel.span($name)
    };
    ($tel:expr, $name:expr, $($k:ident = $v:expr),+ $(,)?) => {{
        let tel = &$tel;
        if tel.enabled() {
            let mut arg = String::new();
            $(
                {
                    use std::fmt::Write as _;
                    if !arg.is_empty() {
                        arg.push(' ');
                    }
                    let _ = write!(arg, concat!(stringify!($k), "={}"), $v);
                }
            )+
            tel.span_arg($name, Some(arg))
        } else {
            tel.span($name)
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    #[test]
    fn explicit_spans_record_and_feed_histograms() {
        let tel = Telemetry::manual();
        tel.set_time_ns(1_000);
        let s = tel.begin("move.export");
        tel.set_time_ns(5_000);
        tel.end(s);
        let recs = tel.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, Kind::Begin);
        assert_eq!(recs[1].kind, Kind::End);
        let snap = tel.hist_snapshot("move.export").expect("histogram fed on end");
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 4_000);
    }

    #[test]
    fn guard_spans_nest_via_the_thread_local_stack() {
        let tel = Telemetry::wall();
        {
            let _outer = span!(tel, "outer");
            let _inner = span!(tel, "inner", flow = 7);
            tel.event("tick", None);
        }
        let recs = tel.records();
        assert_eq!(recs.len(), 5); // B outer, B inner, i tick, E inner, E outer
        let outer_id = recs[0].id;
        assert_eq!(recs[1].parent, outer_id, "inner span's parent is outer");
        assert_eq!(recs[2].parent, recs[1].id, "event attributed to inner span");
        assert_eq!(recs[1].arg.as_deref(), Some("flow=7"));
        assert_eq!(recs[3].name, "inner");
        assert_eq!(recs[4].name, "outer");
    }

    #[test]
    fn begin_under_parents_explicitly_and_ignores_the_stack() {
        let tel = Telemetry::wall();
        // Two "ops" interleave on one thread; each parents its phases
        // under its own root, and the stack (empty here) plays no part.
        let root_a = tel.begin("op.move");
        let root_b = tel.begin("op.move");
        let a1 = tel.begin_under(root_a, "move.export");
        let b1 = tel.begin_under_arg(root_b, "move.export", Some("op=b".into()));
        let a2 = tel.begin_under(root_a, "move.transfer");
        tel.end(a1);
        tel.end(b1);
        tel.end(a2);
        let groups = tel.span_sequences_by_parent("move.");
        assert_eq!(
            groups,
            vec![
                (root_a.raw(), vec!["move.export".to_string(), "move.transfer".to_string()]),
                (root_b.raw(), vec!["move.export".to_string()]),
            ]
        );
    }

    #[test]
    fn linked_spans_carry_a_raw_parent_across_threads() {
        let tel = Telemetry::wall();
        let ctrl_span = tel.begin("move.export");
        let raw = ctrl_span.raw();
        assert!(raw != 0);
        let tel2 = tel.clone();
        std::thread::spawn(move || {
            let sp = tel2.begin_linked_arg(raw, "rt.frame.decode", Some(format!("link={raw}")));
            tel2.end(sp);
        })
        .join()
        .unwrap();
        tel.end(ctrl_span);
        let recs = tel.records();
        let decode = recs
            .iter()
            .find(|r| r.kind == Kind::Begin && r.name == "rt.frame.decode")
            .expect("decode span recorded");
        assert_eq!(decode.parent, raw, "decode span links to the sending span");
    }

    #[test]
    fn span_sequence_filters_by_prefix_in_begin_order() {
        let tel = Telemetry::manual();
        let a = tel.begin("move.export");
        let b = tel.begin("move.transfer");
        tel.begin("rt.pump");
        tel.end(b);
        tel.end(a);
        assert_eq!(tel.span_sequence("move."), vec!["move.export", "move.transfer"]);
    }

    #[test]
    fn disabled_handle_records_nothing_and_spans_are_dead() {
        let tel = Telemetry::disabled();
        let s = tel.begin("x");
        assert!(!s.is_live());
        tel.end(s);
        {
            let _g = span!(tel, "y", big = 12345);
        }
        tel.event("e", None);
        tel.add("c", 5);
        tel.observe("h", 9);
        assert!(tel.records().is_empty());
        assert!(tel.registry().counters().is_empty());
        assert!(tel.hist_snapshot("h").is_none());
    }

    #[test]
    fn enable_toggle_takes_effect_immediately() {
        let tel = Telemetry::disabled();
        tel.set_enabled(true);
        let s = tel.begin("x");
        tel.end(s);
        assert_eq!(tel.records().len(), 2);
    }

    #[test]
    fn exports_are_valid_json() {
        let tel = Telemetry::manual();
        let s = tel.begin_at_arg("move.export", 10, Some("flows=2".into()));
        tel.event_at("fault.drop", 20, None);
        tel.end_at(s, 30);
        tel.add("rt.frames.encoded", 3);

        let chrome = tel.export_chrome();
        let v = Value::parse_json(&chrome).expect("chrome export parses");
        assert_eq!(v.get("traceEvents").and_then(Value::as_array).map(|a| a.len()), Some(3));

        for line in tel.export_jsonl().lines() {
            Value::parse_json(line).expect("jsonl line parses");
        }
    }

    #[test]
    fn counters_are_shared_handles() {
        let tel = Telemetry::wall();
        let c = tel.counter("net.flowtable.lookups");
        c.fetch_add(41, Ordering::Relaxed);
        tel.add("net.flowtable.lookups", 1);
        assert_eq!(tel.registry().counters(), vec![("net.flowtable.lookups".to_string(), 42)]);
    }

    #[test]
    fn ring_is_bounded() {
        let tel = Telemetry::wall_with_capacity(8);
        for _ in 0..20 {
            tel.event("e", None);
        }
        assert_eq!(tel.records().len(), 8);
        assert_eq!(tel.dropped_records(), 12);
    }

    #[test]
    fn disabled_span_overhead_is_cheap() {
        // Not a benchmark assertion (CI machines are noisy) — just pins
        // that the disabled path does no allocation-scale work: 1M no-op
        // spans must finish fast enough that an accidental lock/format on
        // the disabled path (micro-seconds each) would blow the bound.
        let tel = Telemetry::disabled();
        let t0 = std::time::Instant::now();
        for i in 0..1_000_000u64 {
            let _g = span!(tel, "hot", i = i);
        }
        assert!(t0.elapsed().as_secs_f64() < 2.0, "disabled span path must stay trivial");
    }
}
