//! Exporters: JSONL (one record per line, grep-friendly) and the Chrome
//! `chrome://tracing` / Perfetto trace-event format.
//!
//! Both are built through `serde_json::Value` so the output is guaranteed
//! to be syntactically valid JSON — the Chrome file in particular must
//! round-trip through a strict parser or the viewer silently shows an
//! empty timeline.

use serde_json::Value;

use crate::metrics::{HistSnapshot, Registry};
use crate::recorder::{Kind, Rec};

fn obj(fields: Vec<(&'static str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn rec_value(r: &Rec) -> Value {
    let mut fields = vec![
        ("t_ns", Value::UInt(r.t_ns)),
        (
            "kind",
            Value::Str(
                match r.kind {
                    Kind::Begin => "begin",
                    Kind::End => "end",
                    Kind::Event => "event",
                }
                .into(),
            ),
        ),
        ("name", Value::Str(r.name.to_string().into())),
        ("id", Value::UInt(r.id)),
        ("parent", Value::UInt(r.parent)),
        ("tid", Value::UInt(r.tid)),
    ];
    if let Some(arg) = &r.arg {
        fields.push(("arg", Value::Str(arg.clone().into())));
    }
    obj(fields)
}

fn hist_value(s: &HistSnapshot) -> Value {
    obj(vec![
        ("count", Value::UInt(s.count)),
        ("sum", Value::UInt(s.sum)),
        ("p50", Value::UInt(s.p50)),
        ("p95", Value::UInt(s.p95)),
        ("p99", Value::UInt(s.p99)),
        ("min", Value::UInt(s.min)),
        ("max", Value::UInt(s.max)),
    ])
}

/// One line per record, oldest first, then one `{"counters":…}` summary
/// line with every counter, gauge, and histogram snapshot.
pub fn jsonl(records: &[Rec], registry: &Registry, dropped: u64) -> String {
    let mut out = String::new();
    for r in records {
        rec_value(r).encode_json_into(&mut out);
        out.push('\n');
    }
    let summary = obj(vec![
        ("dropped_records", Value::UInt(dropped)),
        (
            "counters",
            Value::Object(
                registry.counters().into_iter().map(|(k, v)| (k.into(), Value::UInt(v))).collect(),
            ),
        ),
        (
            "gauges",
            Value::Object(
                registry.gauges().into_iter().map(|(k, v)| (k.into(), Value::UInt(v))).collect(),
            ),
        ),
        (
            "hists",
            Value::Object(
                registry.hists().into_iter().map(|(k, s)| (k.into(), hist_value(&s))).collect(),
            ),
        ),
    ]);
    summary.encode_json_into(&mut out);
    out.push('\n');
    out
}

/// A flight-recorder record with an owned name, as re-imported from a
/// JSONL dump. Field-for-field identical to [`Rec`] except that the name
/// is a `String` (the `&'static str` interning is lost across the file
/// boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedRec {
    /// Timestamp (ns on the exporting run's clock).
    pub t_ns: u64,
    /// Begin / end / instant.
    pub kind: Kind,
    /// Span id (0 for events).
    pub id: u64,
    /// Parent span id (0 = no parent).
    pub parent: u64,
    /// Recording thread.
    pub tid: u64,
    /// Span or event name.
    pub name: String,
    /// Formatted attributes.
    pub arg: Option<String>,
}

impl From<&Rec> for OwnedRec {
    fn from(r: &Rec) -> Self {
        OwnedRec {
            t_ns: r.t_ns,
            kind: r.kind,
            id: r.id,
            parent: r.parent,
            tid: r.tid,
            name: r.name.to_string(),
            arg: r.arg.clone(),
        }
    }
}

/// The metrics summary line a JSONL dump ends with.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Records the ring evicted before the dump.
    pub dropped_records: u64,
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → last value.
    pub gauges: Vec<(String, u64)>,
    /// Histogram name → snapshot.
    pub hists: Vec<(String, HistSnapshot)>,
}

fn parse_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn parse_name_u64_map(v: Option<&Value>) -> Vec<(String, u64)> {
    v.and_then(Value::as_object)
        .map(|o| {
            o.iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.to_string(), n)))
                .collect()
        })
        .unwrap_or_default()
}

/// Re-imports a [`jsonl`] dump: the inverse of the exporter, so a dump can
/// be analyzed offline with the same tooling that reads a live recorder.
/// Returns the record stream (oldest first) and, when present, the final
/// summary line. Blank lines are skipped; a malformed line is an error.
pub fn parse_jsonl(text: &str) -> Result<(Vec<OwnedRec>, Option<JsonlSummary>), String> {
    let mut records = Vec::new();
    let mut summary = None;
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Value::parse_json(line).map_err(|e| format!("line {}: {e:?}", ln + 1))?;
        if v.get("kind").is_some() {
            let kind = match v.get("kind").and_then(Value::as_str) {
                Some("begin") => Kind::Begin,
                Some("end") => Kind::End,
                Some("event") => Kind::Event,
                other => return Err(format!("line {}: bad kind {other:?}", ln + 1)),
            };
            records.push(OwnedRec {
                t_ns: parse_u64(&v, "t_ns").map_err(|e| format!("line {}: {e}", ln + 1))?,
                kind,
                id: parse_u64(&v, "id").map_err(|e| format!("line {}: {e}", ln + 1))?,
                parent: parse_u64(&v, "parent").map_err(|e| format!("line {}: {e}", ln + 1))?,
                tid: parse_u64(&v, "tid").map_err(|e| format!("line {}: {e}", ln + 1))?,
                name: v
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {}: missing `name`", ln + 1))?
                    .to_string(),
                arg: v.get("arg").and_then(Value::as_str).map(str::to_string),
            });
        } else if v.get("counters").is_some() {
            let hists = v
                .get("hists")
                .and_then(Value::as_object)
                .map(|o| {
                    o.iter()
                        .filter_map(|(k, h)| {
                            Some((
                                k.to_string(),
                                HistSnapshot {
                                    count: h.get("count").and_then(Value::as_u64)?,
                                    sum: h.get("sum").and_then(Value::as_u64)?,
                                    p50: h.get("p50").and_then(Value::as_u64)?,
                                    p95: h.get("p95").and_then(Value::as_u64)?,
                                    p99: h.get("p99").and_then(Value::as_u64)?,
                                    // Dumps from before min/max existed
                                    // re-import as 0 extremes.
                                    min: h.get("min").and_then(Value::as_u64).unwrap_or(0),
                                    max: h.get("max").and_then(Value::as_u64).unwrap_or(0),
                                },
                            ))
                        })
                        .collect()
                })
                .unwrap_or_default();
            summary = Some(JsonlSummary {
                dropped_records: v.get("dropped_records").and_then(Value::as_u64).unwrap_or(0),
                counters: parse_name_u64_map(v.get("counters")),
                gauges: parse_name_u64_map(v.get("gauges")),
                hists,
            });
        } else {
            return Err(format!("line {}: neither record nor summary", ln + 1));
        }
    }
    Ok((records, summary))
}

/// Chrome trace-event JSON (`{"traceEvents": […]}`): load the file via
/// `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are
/// microseconds (the format's unit); span begin/end map to `"B"`/`"E"`
/// phases on the recording thread's track, instants to `"i"`.
pub fn chrome_trace(records: &[Rec]) -> String {
    let events: Vec<Value> = records
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("name", Value::Str(r.name.to_string().into())),
                ("ph", Value::Str(r.kind.phase().to_string().into())),
                ("ts", Value::Float(r.t_ns as f64 / 1_000.0)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(r.tid)),
            ];
            if r.kind == Kind::Event {
                fields.push(("s", Value::Str("t".into())));
            }
            if let Some(arg) = &r.arg {
                fields.push(("args", obj(vec![("arg", Value::Str(arg.clone().into()))])));
            }
            obj(fields)
        })
        .collect();
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
    .encode_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs() -> Vec<Rec> {
        vec![
            Rec {
                t_ns: 1_000,
                kind: Kind::Begin,
                id: 1,
                parent: 0,
                tid: 0,
                name: "move.export",
                arg: Some("flows=3".into()),
            },
            Rec { t_ns: 2_000, kind: Kind::Event, id: 0, parent: 1, tid: 0, name: "fault.drop", arg: None },
            Rec { t_ns: 5_000, kind: Kind::End, id: 1, parent: 0, tid: 0, name: "move.export", arg: None },
        ]
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let reg = Registry::default();
        reg.counter("c").fetch_add(2, std::sync::atomic::Ordering::Relaxed);
        reg.hist("h").record(42);
        let text = jsonl(&recs(), &reg, 7);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "3 records + 1 summary");
        for line in &lines {
            Value::parse_json(line).expect("every JSONL line is valid JSON");
        }
        let summary = Value::parse_json(lines[3]).unwrap();
        assert_eq!(summary.get("dropped_records").and_then(Value::as_u64), Some(7));
        assert_eq!(
            summary.get("counters").and_then(|c| c.get("c")).and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn jsonl_round_trips_records_and_summary() {
        let reg = Registry::default();
        reg.counter("rt.fenced.dropped").fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        reg.gauge("engine.queue_depth").store(2, std::sync::atomic::Ordering::Relaxed);
        reg.hist("move.export").record(1_500);
        let text = jsonl(&recs(), &reg, 7);
        let (back, summary) = parse_jsonl(&text).expect("re-import parses");
        let want: Vec<OwnedRec> = recs().iter().map(OwnedRec::from).collect();
        assert_eq!(back, want, "record stream survives the round trip unchanged");
        let summary = summary.expect("summary line present");
        assert_eq!(summary.dropped_records, 7);
        assert_eq!(summary.counters, vec![("rt.fenced.dropped".to_string(), 3)]);
        assert_eq!(summary.gauges, vec![("engine.queue_depth".to_string(), 2)]);
        assert_eq!(summary.hists.len(), 1);
        assert_eq!(summary.hists[0].0, "move.export");
        assert_eq!(summary.hists[0].1.count, 1);
    }

    #[test]
    fn jsonl_round_trips_escaped_and_non_ascii_fault_payloads() {
        // Fault events carry free-form reason strings: quotes, backslashes,
        // newlines, control chars, and non-ASCII text all must survive the
        // JSON escape/unescape cycle byte-for-byte.
        let nasty = vec![
            Rec {
                t_ns: 10,
                kind: Kind::Event,
                id: 0,
                parent: 0,
                tid: 1,
                name: "fault.crash_loss",
                arg: Some("reason=\"broken \\ pipe\"\nline2\ttab\u{1}".into()),
            },
            Rec {
                t_ns: 20,
                kind: Kind::Event,
                id: 0,
                parent: 0,
                tid: 1,
                name: "fault.drop",
                arg: Some("ствол упал — 故障注入 — ω≠0 🚨".into()),
            },
        ];
        let text = jsonl(&nasty, &Registry::default(), 0);
        let (back, _) = parse_jsonl(&text).expect("escaped payloads re-import");
        let want: Vec<OwnedRec> = nasty.iter().map(OwnedRec::from).collect();
        assert_eq!(back, want);
    }

    #[test]
    fn parse_jsonl_rejects_garbage_lines() {
        assert!(parse_jsonl("{\"kind\":\"wat\"}").is_err());
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"neither\":1}").is_err());
        // Blank lines are tolerated (trailing newline in dumps).
        let (recs, summary) = parse_jsonl("\n\n").unwrap();
        assert!(recs.is_empty() && summary.is_none());
    }

    #[test]
    fn chrome_trace_round_trips_and_balances_phases() {
        let text = chrome_trace(&recs());
        let v = Value::parse_json(&text).expect("chrome trace is valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
        assert_eq!(events.len(), 3);
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(Value::as_str)).collect();
        assert_eq!(phases, vec!["B", "i", "E"]);
        // ts is microseconds.
        assert_eq!(events[0].get("ts").and_then(Value::as_f64), Some(1.0));
    }
}
