//! Exporters: JSONL (one record per line, grep-friendly) and the Chrome
//! `chrome://tracing` / Perfetto trace-event format.
//!
//! Both are built through `serde_json::Value` so the output is guaranteed
//! to be syntactically valid JSON — the Chrome file in particular must
//! round-trip through a strict parser or the viewer silently shows an
//! empty timeline.

use serde_json::Value;

use crate::metrics::{HistSnapshot, Registry};
use crate::recorder::{Kind, Rec};

fn obj(fields: Vec<(&'static str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn rec_value(r: &Rec) -> Value {
    let mut fields = vec![
        ("t_ns", Value::UInt(r.t_ns)),
        (
            "kind",
            Value::Str(
                match r.kind {
                    Kind::Begin => "begin",
                    Kind::End => "end",
                    Kind::Event => "event",
                }
                .into(),
            ),
        ),
        ("name", Value::Str(r.name.to_string().into())),
        ("id", Value::UInt(r.id)),
        ("parent", Value::UInt(r.parent)),
        ("tid", Value::UInt(r.tid)),
    ];
    if let Some(arg) = &r.arg {
        fields.push(("arg", Value::Str(arg.clone().into())));
    }
    obj(fields)
}

fn hist_value(s: &HistSnapshot) -> Value {
    obj(vec![
        ("count", Value::UInt(s.count)),
        ("sum", Value::UInt(s.sum)),
        ("p50", Value::UInt(s.p50)),
        ("p95", Value::UInt(s.p95)),
        ("p99", Value::UInt(s.p99)),
    ])
}

/// One line per record, oldest first, then one `{"counters":…}` summary
/// line with every counter, gauge, and histogram snapshot.
pub fn jsonl(records: &[Rec], registry: &Registry, dropped: u64) -> String {
    let mut out = String::new();
    for r in records {
        rec_value(r).encode_json_into(&mut out);
        out.push('\n');
    }
    let summary = obj(vec![
        ("dropped_records", Value::UInt(dropped)),
        (
            "counters",
            Value::Object(
                registry.counters().into_iter().map(|(k, v)| (k.into(), Value::UInt(v))).collect(),
            ),
        ),
        (
            "gauges",
            Value::Object(
                registry.gauges().into_iter().map(|(k, v)| (k.into(), Value::UInt(v))).collect(),
            ),
        ),
        (
            "hists",
            Value::Object(
                registry.hists().into_iter().map(|(k, s)| (k.into(), hist_value(&s))).collect(),
            ),
        ),
    ]);
    summary.encode_json_into(&mut out);
    out.push('\n');
    out
}

/// Chrome trace-event JSON (`{"traceEvents": […]}`): load the file via
/// `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are
/// microseconds (the format's unit); span begin/end map to `"B"`/`"E"`
/// phases on the recording thread's track, instants to `"i"`.
pub fn chrome_trace(records: &[Rec]) -> String {
    let events: Vec<Value> = records
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("name", Value::Str(r.name.to_string().into())),
                ("ph", Value::Str(r.kind.phase().to_string().into())),
                ("ts", Value::Float(r.t_ns as f64 / 1_000.0)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(r.tid)),
            ];
            if r.kind == Kind::Event {
                fields.push(("s", Value::Str("t".into())));
            }
            if let Some(arg) = &r.arg {
                fields.push(("args", obj(vec![("arg", Value::Str(arg.clone().into()))])));
            }
            obj(fields)
        })
        .collect();
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
    .encode_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs() -> Vec<Rec> {
        vec![
            Rec {
                t_ns: 1_000,
                kind: Kind::Begin,
                id: 1,
                parent: 0,
                tid: 0,
                name: "move.export",
                arg: Some("flows=3".into()),
            },
            Rec { t_ns: 2_000, kind: Kind::Event, id: 0, parent: 1, tid: 0, name: "fault.drop", arg: None },
            Rec { t_ns: 5_000, kind: Kind::End, id: 1, parent: 0, tid: 0, name: "move.export", arg: None },
        ]
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let reg = Registry::default();
        reg.counter("c").fetch_add(2, std::sync::atomic::Ordering::Relaxed);
        reg.hist("h").record(42);
        let text = jsonl(&recs(), &reg, 7);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "3 records + 1 summary");
        for line in &lines {
            Value::parse_json(line).expect("every JSONL line is valid JSON");
        }
        let summary = Value::parse_json(lines[3]).unwrap();
        assert_eq!(summary.get("dropped_records").and_then(Value::as_u64), Some(7));
        assert_eq!(
            summary.get("counters").and_then(|c| c.get("c")).and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn chrome_trace_round_trips_and_balances_phases() {
        let text = chrome_trace(&recs());
        let v = Value::parse_json(&text).expect("chrome trace is valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
        assert_eq!(events.len(), 3);
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(Value::as_str)).collect();
        assert_eq!(phases, vec!["B", "i", "E"]);
        // ts is microseconds.
        assert_eq!(events[0].get("ts").and_then(Value::as_f64), Some(1.0));
    }
}
