//! Lock-cheap metrics: counters, gauges, and log2-bucket latency
//! histograms with quantile extraction.
//!
//! Hot paths hold an `Arc<AtomicU64>` handed out once by
//! [`Registry::counter`] and pay a single relaxed `fetch_add` per event —
//! the registry's mutex is touched only at registration and export time.
//! Histograms bucket by the value's bit length (64 fixed buckets), so
//! recording is two relaxed atomic adds and quantiles are accurate to
//! within a factor of two — plenty for p50/p95/p99 of phase latencies that
//! span six orders of magnitude.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A fixed 64-bucket log2 histogram. Bucket `i` holds values whose bit
/// length is `i` (bucket 0: the value 0; bucket `i`: `[2^(i-1), 2^i)`).
pub struct Hist {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time read of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Smallest value recorded (exact, not bucketed; 0 when empty).
    pub min: u64,
    /// Largest value recorded (exact, not bucketed; 0 when empty).
    pub max: u64,
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(63)
}

/// Representative value for bucket `i` (geometric midpoint of its range).
fn bucket_mid(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        let lo = 1u64 << (i - 1);
        lo + lo / 2
    }
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Smallest value recorded (exact; 0 when nothing was recorded).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 { 0 } else { m }
    }

    /// Largest value recorded (exact; 0 when nothing was recorded).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of values recorded so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]` (bucket-midpoint estimate).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_mid(i);
            }
        }
        bucket_mid(63)
    }

    /// Reads count/sum/p50/p95/p99 at once.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Named counters, gauges, and histograms. Deterministic iteration order
/// (`BTreeMap`) so exports are byte-stable for a given run.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<Hist>>>,
}

impl Registry {
    /// The counter named `name`, created on first use. Hold the `Arc` and
    /// `fetch_add` on it directly from hot paths.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Arc::new(AtomicU64::new(0));
        map.insert(name.to_string(), c.clone());
        c
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.gauges.lock().unwrap();
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        let g = Arc::new(AtomicU64::new(0));
        map.insert(name.to_string(), g.clone());
        g
    }

    /// The histogram named `name`, created on first use.
    pub fn hist(&self, name: &str) -> Arc<Hist> {
        let mut map = self.hists.lock().unwrap();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Arc::new(Hist::new());
        map.insert(name.to_string(), h.clone());
        h
    }

    /// The histogram named `name` if it exists (no creation).
    pub fn hist_if_present(&self, name: &str) -> Option<Arc<Hist>> {
        self.hists.lock().unwrap().get(name).cloned()
    }

    /// All counters as `(name, value)`, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// All gauges as `(name, value)`, sorted by name.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// All histograms as `(name, snapshot)`, sorted by name.
    pub fn hists(&self) -> Vec<(String, HistSnapshot)> {
        self.hists
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = Hist::new();
        for _ in 0..90 {
            h.record(100); // bucket 7: [64, 128)
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14: [8192, 16384)
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 100 + 10 * 10_000);
        assert_eq!(s.p50, bucket_mid(7));
        assert_eq!(s.p99, bucket_mid(14));
        // Estimates stay within 2x of the true values.
        assert!(s.p50 >= 64 && s.p50 < 128);
        assert!(s.p99 >= 8_192 && s.p99 < 16_384);
    }

    #[test]
    fn empty_hist_quantile_is_zero() {
        assert_eq!(Hist::new().quantile(0.99), 0);
    }

    #[test]
    fn empty_hist_snapshot_does_not_panic() {
        let s = Hist::new().snapshot();
        assert_eq!((s.count, s.sum, s.p50, s.p95, s.p99), (0, 0, 0, 0, 0));
        assert_eq!((s.min, s.max), (0, 0), "empty hist reports 0 extremes");
    }

    #[test]
    fn min_max_track_exact_extremes() {
        let h = Hist::new();
        h.record(100);
        h.record(7);
        h.record(5_000);
        let s = h.snapshot();
        assert_eq!(s.min, 7, "min is exact, not a bucket midpoint");
        assert_eq!(s.max, 5_000, "max is exact, not a bucket midpoint");
    }

    #[test]
    fn single_sample_every_quantile_is_its_bucket() {
        let h = Hist::new();
        h.record(100); // bucket 7: [64, 128)
        for q in [0.0, 0.01, 0.50, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), bucket_mid(7), "q={q}");
        }
        let s = h.snapshot();
        assert!(s.p99 > 0, "a single nonzero sample must not report p99=0");
        assert_eq!(s.p50, s.p99);
    }

    #[test]
    fn top_bucket_saturation_does_not_panic_or_report_zero() {
        let h = Hist::new();
        // Everything lands in the last bucket (and sum wraps are fine:
        // fetch_add is wrapping, quantiles never read `sum`).
        for _ in 0..3 {
            h.record(u64::MAX);
        }
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, bucket_mid(63));
        assert_eq!(s.p99, bucket_mid(63));
        assert!(s.p99 > 0);
        // The estimate for the open-ended top bucket stays finite.
        assert_eq!(bucket_mid(63), (1u64 << 62) + (1u64 << 61));
    }

    #[test]
    fn quantile_q_one_and_beyond_clamp_to_last_sample() {
        let h = Hist::new();
        h.record(5);
        assert_eq!(h.quantile(1.0), h.quantile(0.99));
        // An out-of-range q must still terminate in a bucket, not panic.
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn registry_reuses_handles() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.fetch_add(3, Ordering::Relaxed);
        b.fetch_add(4, Ordering::Relaxed);
        assert_eq!(r.counters(), vec![("x".to_string(), 7)]);
    }
}
