//! Timestamp sources.
//!
//! Telemetry timestamps are raw `u64` nanoseconds, the same representation
//! as `opennf_util::Time`, so one span/record vocabulary covers both
//! runtimes: the threaded runtime reads a monotonic wall clock, the
//! simulator *drives* a manual clock from its virtual time. A manual clock
//! only moves forward (`fetch_max`), so out-of-order `set_ns` calls from
//! same-timestamp deliveries cannot make spans run backwards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Where `now` comes from.
pub enum Clock {
    /// Monotonic wall clock: nanoseconds since the clock was created.
    Wall(Instant),
    /// Externally driven clock (the simulator's virtual time).
    Manual(AtomicU64),
}

impl Clock {
    /// A wall clock anchored at the call instant.
    pub fn wall() -> Self {
        Clock::Wall(Instant::now())
    }

    /// A manual clock starting at 0.
    pub fn manual() -> Self {
        Clock::Manual(AtomicU64::new(0))
    }

    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Wall(epoch) => epoch.elapsed().as_nanos() as u64,
            Clock::Manual(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Advances a manual clock to `ns` (monotone: never moves backwards).
    /// No-op on a wall clock.
    pub fn set_ns(&self, ns: u64) {
        if let Clock::Manual(t) = self {
            t.fetch_max(ns, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_monotone() {
        let c = Clock::manual();
        c.set_ns(100);
        c.set_ns(50);
        assert_eq!(c.now_ns(), 100);
        c.set_ns(200);
        assert_eq!(c.now_ns(), 200);
    }

    #[test]
    fn wall_clock_advances() {
        let c = Clock::wall();
        let a = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(c.now_ns() > a);
    }
}
