//! The flight recorder: a bounded ring of recent span/event records.
//!
//! The ring keeps the *last* `capacity` records — when a soak run fails
//! after minutes of traffic, the interesting records are the ones just
//! before the failure, so old records are evicted, never new ones
//! rejected. Evictions are counted so an exporter can say how much history
//! was lost.

use std::collections::VecDeque;

/// What a record marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// An instantaneous event.
    Event,
}

impl Kind {
    /// Chrome trace-event phase letter.
    pub fn phase(self) -> &'static str {
        match self {
            Kind::Begin => "B",
            Kind::End => "E",
            Kind::Event => "i",
        }
    }
}

/// One flight-recorder record.
#[derive(Debug, Clone)]
pub struct Rec {
    /// Timestamp, nanoseconds on the owning [`crate::Telemetry`]'s clock.
    pub t_ns: u64,
    /// Begin / end / instant.
    pub kind: Kind,
    /// Span id (0 for instant events).
    pub id: u64,
    /// Enclosing span id on the recording thread (0 = root).
    pub parent: u64,
    /// Recording thread's telemetry-local id.
    pub tid: u64,
    /// Span or event name.
    pub name: &'static str,
    /// Optional formatted attributes (`"flow=7 round=2"`).
    pub arg: Option<String>,
}

/// The bounded ring itself.
pub struct Ring {
    buf: VecDeque<Rec>,
    cap: usize,
    dropped: u64,
    /// Keep one in `sample` instantaneous events (1 = keep all). Span
    /// begin/end records are never sampled away — dropping one side of a
    /// span would corrupt every exporter's nesting.
    sample: u64,
    seen_events: u64,
    sampled_out: u64,
}

impl Ring {
    /// A ring holding at most `cap` records.
    pub fn new(cap: usize) -> Self {
        Self::sampled(cap, 1)
    }

    /// A ring that retains only one in `n` instantaneous events (span
    /// begin/end records are always kept). The filter is a deterministic
    /// modulo counter, not a coin flip: the same record stream samples
    /// identically on rerun, and retained events keep their relative
    /// order — sampling thins a sequence, it never shuffles it.
    pub fn sampled(cap: usize, n: u64) -> Self {
        Ring {
            buf: VecDeque::with_capacity(cap.min(1024)),
            cap: cap.max(1),
            dropped: 0,
            sample: n.max(1),
            seen_events: 0,
            sampled_out: 0,
        }
    }

    /// Appends a record, evicting the oldest when full. Instantaneous
    /// events are subject to the sampling filter.
    pub fn push(&mut self, rec: Rec) {
        if rec.kind == Kind::Event && self.sample > 1 {
            let keep = self.seen_events.is_multiple_of(self.sample);
            self.seen_events += 1;
            if !keep {
                self.sampled_out += 1;
                return;
            }
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    /// Records currently held, oldest first.
    pub fn snapshot(&self) -> Vec<Rec> {
        self.buf.iter().cloned().collect()
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events discarded by the sampling filter (distinct from eviction).
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether any records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> Rec {
        Rec { t_ns: t, kind: Kind::Event, id: 0, parent: 0, tid: 0, name: "e", arg: None }
    }

    #[test]
    fn sampling_thins_events_but_preserves_their_order_and_every_span() {
        let mut r = Ring::sampled(1024, 3);
        // Interleave numbered fault events with spans, as a fault soak
        // does: the spans must all survive, the events must thin to one
        // in three without ever reordering.
        for t in 0..30u64 {
            r.push(Rec {
                t_ns: t,
                kind: Kind::Event,
                id: 0,
                parent: 0,
                tid: 0,
                name: "fault.drop",
                arg: Some(t.to_string()),
            });
            if t % 10 == 0 {
                let id = t + 1;
                r.push(Rec { t_ns: t, kind: Kind::Begin, id, parent: 0, tid: 0, name: "s", arg: None });
                r.push(Rec { t_ns: t, kind: Kind::End, id, parent: 0, tid: 0, name: "s", arg: None });
            }
        }
        let snap = r.snapshot();
        assert_eq!(
            snap.iter().filter(|r| r.kind != Kind::Event).count(),
            6,
            "all span begin/end records retained"
        );
        let ts: Vec<u64> =
            snap.iter().filter(|r| r.kind == Kind::Event).map(|r| r.t_ns).collect();
        assert_eq!(ts, vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27], "1-in-3, deterministic");
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "retained events keep their order");
        assert_eq!(r.sampled_out(), 20);
        assert_eq!(r.dropped(), 0, "sampling is not eviction");
    }

    #[test]
    fn ring_keeps_the_newest_records() {
        let mut r = Ring::new(3);
        for t in 0..5 {
            r.push(rec(t));
        }
        let snap = r.snapshot();
        assert_eq!(snap.iter().map(|r| r.t_ns).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(Ring::new(4).is_empty());
    }
}
