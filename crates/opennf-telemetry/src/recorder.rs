//! The flight recorder: a bounded ring of recent span/event records.
//!
//! The ring keeps the *last* `capacity` records — when a soak run fails
//! after minutes of traffic, the interesting records are the ones just
//! before the failure, so old records are evicted, never new ones
//! rejected. Evictions are counted so an exporter can say how much history
//! was lost.

use std::collections::VecDeque;

/// What a record marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// An instantaneous event.
    Event,
}

impl Kind {
    /// Chrome trace-event phase letter.
    pub fn phase(self) -> &'static str {
        match self {
            Kind::Begin => "B",
            Kind::End => "E",
            Kind::Event => "i",
        }
    }
}

/// One flight-recorder record.
#[derive(Debug, Clone)]
pub struct Rec {
    /// Timestamp, nanoseconds on the owning [`crate::Telemetry`]'s clock.
    pub t_ns: u64,
    /// Begin / end / instant.
    pub kind: Kind,
    /// Span id (0 for instant events).
    pub id: u64,
    /// Enclosing span id on the recording thread (0 = root).
    pub parent: u64,
    /// Recording thread's telemetry-local id.
    pub tid: u64,
    /// Span or event name.
    pub name: &'static str,
    /// Optional formatted attributes (`"flow=7 round=2"`).
    pub arg: Option<String>,
}

/// The bounded ring itself.
pub struct Ring {
    buf: VecDeque<Rec>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    /// A ring holding at most `cap` records.
    pub fn new(cap: usize) -> Self {
        Ring { buf: VecDeque::with_capacity(cap.min(1024)), cap: cap.max(1), dropped: 0 }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, rec: Rec) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    /// Records currently held, oldest first.
    pub fn snapshot(&self) -> Vec<Rec> {
        self.buf.iter().cloned().collect()
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether any records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> Rec {
        Rec { t_ns: t, kind: Kind::Event, id: 0, parent: 0, tid: 0, name: "e", arg: None }
    }

    #[test]
    fn ring_keeps_the_newest_records() {
        let mut r = Ring::new(3);
        for t in 0..5 {
            r.push(rec(t));
        }
        let snap = r.snapshot();
        assert_eq!(snap.iter().map(|r| r.t_ns).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(Ring::new(4).is_empty());
    }
}
