//! A deterministic discrete-event simulation kernel.
//!
//! The OpenNF evaluation testbed (switch, servers, controller, NFs) is
//! reproduced as a set of event-driven *nodes* exchanging timestamped
//! messages through a single priority queue of scheduled deliveries. The
//! kernel guarantees:
//!
//! * **Determinism** — events are ordered by `(time, sequence-number)`; the
//!   sequence number is assigned at scheduling time, so simultaneous events
//!   are delivered in the order they were scheduled. All randomness flows
//!   from one seeded PRNG. The same seed always produces the same run.
//! * **Virtual time** — [`Time`] is a `u64` nanosecond count; nothing in a
//!   run depends on the wall clock, so experiments measuring "move
//!   operation total time" report model time, not host speed.
//! * **Race fidelity** — message latency is explicit (every send carries a
//!   delay), so the in-flight-packet / state-transfer / rule-update races
//!   OpenNF is designed around arise exactly as they would in a real
//!   network, but reproducibly.
//!
//! * **Replayable failures** — an optional [`fault::FaultPlan`] injects
//!   message drops/delays/duplicates/reordering, node crashes/restarts,
//!   and stall windows from its own seeded PRNG, so a failing run under
//!   faults reproduces byte-identically from `(seed, plan)`.
//!
//! The message type is a crate-level generic (`Engine<M>`); the network and
//! controller crates instantiate it with their own message enum.
//!
//! The runtime-agnostic pieces — [`Time`]/[`Dur`], [`SimRng`], [`NodeId`],
//! and the fault-plan vocabulary — live in `opennf-util` so the threaded
//! runtime (`opennf-rt`) can consume the *same* seeded [`FaultPlan`]; this
//! crate re-exports them at their historical paths.

pub mod engine;
pub mod metrics;

/// Fault-plan vocabulary (re-exported from `opennf-util::fault`).
pub mod fault {
    pub use opennf_util::fault::*;
}
/// Seeded PRNG (re-exported from `opennf-util::rng`).
pub mod rng {
    pub use opennf_util::rng::*;
}
/// Virtual time (re-exported from `opennf-util::time`).
pub mod time {
    pub use opennf_util::time::*;
}

pub use engine::{Ctx, Engine, Node, NodeId};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultState, LinkRule};
pub use metrics::Counters;
pub use rng::SimRng;
pub use time::{Dur, Time};
