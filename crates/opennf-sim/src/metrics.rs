//! Global named counters for cross-cutting statistics (drops, rule
//! installs, events raised, …). Nodes also keep richer private metrics; the
//! counters exist for quantities that span nodes.

use std::collections::BTreeMap;

/// A map of named monotonic counters. `BTreeMap` keeps iteration order
/// deterministic for report output.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    map: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to `name`.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.map.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Resets every counter to zero (keeps names).
    pub fn reset(&mut self) {
        for v in self.map.values_mut() {
            *v = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_add_get() {
        let mut c = Counters::new();
        assert_eq!(c.get("drops"), 0);
        c.inc("drops");
        c.add("drops", 4);
        assert_eq!(c.get("drops"), 5);
    }

    #[test]
    fn deterministic_iteration_order() {
        let mut c = Counters::new();
        c.inc("zeta");
        c.inc("alpha");
        c.inc("mid");
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let mut c = Counters::new();
        c.add("x", 9);
        c.reset();
        assert_eq!(c.get("x"), 0);
        assert_eq!(c.iter().count(), 1);
    }
}
